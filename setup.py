"""Package metadata for the Lakeroad reproduction.

``pip install -e .`` puts the ``src/``-layout packages on the path (no
``PYTHONPATH=src`` needed) and installs the ``lakeroad`` console command.
"""

from setuptools import find_packages, setup

setup(
    name="lakeroad-repro",
    version="1.0.0",
    description=(
        "Reproduction of 'FPGA Technology Mapping Using Sketch-Guided "
        "Program Synthesis' (ASPLOS 2024) in pure Python"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={
        "repro.vendor": ["models/*.v"],
        "repro.arch": ["descriptions/*.yml"],
    },
    include_package_data=True,
    entry_points={
        "console_scripts": [
            "lakeroad = repro.cli:main",
        ],
    },
    extras_require={
        "test": ["pytest", "pytest-benchmark"],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering :: Electronic Design Automation (EDA)",
    ],
)
