#!/usr/bin/env python3
"""Quickstart: map a behavioral multiply onto an Intel Cyclone 10 LP DSP.

This is the smallest end-to-end use of the library: write a behavioral
Verilog fragment, call ``map_verilog`` with a sketch template and an
architecture description, and get back a structural implementation that
instantiates a single DSP primitive, together with a resource report and a
simulation-based validation verdict.

Run:  python examples/quickstart.py
"""

from repro import map_verilog

DESIGN = """
// A pipelined 8-bit multiply: the kind of fragment a designer separates out
// during partial design mapping (paper section 2).
module mul8(input clk, input [7:0] a, b, output reg [7:0] out);
  always @(posedge clk) begin
    out <= a * b;
  end
endmodule
"""


def main() -> None:
    result = map_verilog(DESIGN, template="dsp", arch="intel-cyclone10lp",
                         timeout_seconds=30)
    print(f"status      : {result.status}")
    print(f"time        : {result.time_seconds:.2f} s")
    print(f"resources   : {result.resources}")
    print(f"validated   : {result.validated}")
    print(f"DSP config  : {dict(sorted(result.hole_values.items()))}")
    print("\nstructural Verilog:\n")
    print(result.verilog)


if __name__ == "__main__":
    main()
