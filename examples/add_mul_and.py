#!/usr/bin/env python3
"""The paper's running example (Figure 1 / Section 2): ``add_mul_and``.

A hardware designer wants ``(a + b) * c & d`` (two pipeline stages) to map
onto a *single* Xilinx UltraScale+ DSP48E2.  State-of-the-art tools fail and
spill logic into LUTs and registers; Lakeroad configures the DSP's
pre-adder, multiplier, logic unit and pipeline registers automatically and
proves the result equivalent.

This example runs both the simulated proprietary baseline and Lakeroad on
the same module and prints the resource comparison the paper's Section 2
narrates (1 DSP vs 1 DSP + LUTs + registers).

Run:  python examples/add_mul_and.py          (takes a few minutes: it runs
                                               real synthesis queries)
      python examples/add_mul_and.py --fast   (8-bit version, quicker)
"""

import argparse

from repro import map_verilog
from repro.baselines import SotaXilinxMapper, YosysLikeMapper
from repro.hdl.behavioral import verilog_to_behavioral

DESIGN_TEMPLATE = """
// add_mul_and.v: computes (a+b)*c&d in two clock cycles.
module add_mul_and(input clk, input [{msb}:0] a, b, c, d,
                   output reg [{msb}:0] out);
  reg [{msb}:0] r;
  always @(posedge clk) begin
    r <= (a+b)*c&d;
    out <= r;
  end
endmodule
"""


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--fast", action="store_true", help="use 8-bit operands")
    parser.add_argument("--timeout", type=float, default=300.0)
    args = parser.parse_args()

    width = 8 if args.fast else 16
    source = DESIGN_TEMPLATE.format(msb=width - 1)
    design = verilog_to_behavioral(source)

    print("=== baselines (pattern-matching DSP inference) ===")
    for mapper in (SotaXilinxMapper(), YosysLikeMapper()):
        result = mapper.map(design, "xilinx-ultrascale-plus")
        verdict = "single DSP" if result.mapped_to_single_dsp else "FAILED (spills to fabric)"
        print(f"{mapper.name:12s}: {verdict:28s} resources={result.resources}")

    print("\n=== Lakeroad (sketch-guided program synthesis) ===")
    result = map_verilog(source, template="dsp", arch="xilinx-ultrascale-plus",
                         timeout_seconds=args.timeout)
    print(f"status={result.status}  time={result.time_seconds:.1f}s  "
          f"validated={result.validated}")
    print(f"resources: {result.resources}")
    print("\nDSP48E2 configuration found by the solver:")
    for name, value in sorted(result.hole_values.items()):
        print(f"  {name:32s} = {value}")
    print("\nstructural Verilog:\n")
    print(result.verilog)


if __name__ == "__main__":
    main()
