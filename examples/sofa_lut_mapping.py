#!/usr/bin/env python3
"""Mapping onto an architecture without DSPs: SOFA's fracturable LUT4s.

SOFA (the open-source FPGA of Figure 5) implements only the LUT primitive
interface, so DSP-shaped fragments cannot map — but bitwise fragments can,
using the ``bitwise`` sketch template: one frac_lut4 per output bit, with
each LUT's 16-bit sram memory solved by the synthesis engine.

This example maps a small mixed boolean function onto SOFA, prints the
solved LUT memories and the structural Verilog, and cross-checks the result
against the behavioral design by exhaustive simulation.

Run:  python examples/sofa_lut_mapping.py
"""

from repro.core.interp import interpret
from repro.hdl.behavioral import verilog_to_behavioral
from repro.lakeroad import map_design

DESIGN = """
// A per-bit boolean mix: out = (a & b) | (~a & c) -- a bitwise multiplexer.
module bitmux(input [3:0] a, b, c, output [3:0] out);
  assign out = (a & b) | (~a & c);
endmodule
"""


def main() -> None:
    design = verilog_to_behavioral(DESIGN)
    result = map_design(design, template="bitwise", arch="sofa", timeout_seconds=60)
    print(f"status    : {result.status} ({result.time_seconds:.2f}s)")
    print(f"resources : {result.resources}")
    print("solved LUT memories:")
    for name, value in sorted(result.hole_values.items()):
        print(f"  {name:24s} = {value:#06x}")

    print("\nexhaustive cross-check against the behavioral design...")
    mismatches = 0
    for a in range(16):
        for b in range(16):
            for c in range(0, 16, 5):
                streams = {"a": [a], "b": [b], "c": [c]}
                if interpret(result.program, streams, 0) != interpret(design.program, streams, 0):
                    mismatches += 1
    print(f"mismatches: {mismatches} (expected 0)")

    print("\nstructural Verilog (frac_lut4 instances):\n")
    print(result.verilog)


if __name__ == "__main__":
    main()
