#!/usr/bin/env python3
"""Partial design mapping across architectures (paper sections 2 and 5).

A designer has several small fragments separated out of a larger design and
wants each one mapped onto a single DSP of the target FPGA.  This example
walks a handful of representative microbenchmark fragments — the same
families the paper enumerates — across the three DSP-bearing architectures
and prints, for each, what Lakeroad and the baselines do with it:
mapped to one DSP, proven unmappable (UNSAT), or spilled onto the fabric.

Run:  python examples/partial_design_mapping.py            (a few minutes)
      python examples/partial_design_mapping.py --quick    (Intel+Lattice only)
"""

import argparse

from repro.baselines import YosysLikeMapper, sota_for
from repro.hdl.behavioral import verilog_to_behavioral
from repro.lakeroad import map_design
from repro.workloads import sample_workloads

TIMEOUTS = {"xilinx-ultrascale-plus": 120.0, "lattice-ecp5": 30.0, "intel-cyclone10lp": 15.0}


def run_architecture(architecture: str, count: int) -> None:
    print(f"\n=== {architecture} ===")
    yosys = YosysLikeMapper()
    sota = sota_for(architecture)
    for benchmark in sample_workloads(architecture, count, max_width=8):
        design = verilog_to_behavioral(benchmark.verilog)
        lakeroad = map_design(design, arch=architecture, validate=False,
                              timeout_seconds=TIMEOUTS[architecture])
        sota_result = sota.map(design, architecture, is_signed=benchmark.signed)
        yosys_result = yosys.map(design, architecture, is_signed=benchmark.signed)

        def verdict(mapped: bool) -> str:
            return "1 DSP" if mapped else "fabric"

        print(f"{benchmark.name:28s} lakeroad={lakeroad.status:8s} "
              f"({lakeroad.time_seconds:5.1f}s)  "
              f"sota={verdict(sota_result.mapped_to_single_dsp):6s}  "
              f"yosys={verdict(yosys_result.mapped_to_single_dsp):6s}")


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true",
                        help="skip the (slow) Xilinx fragment")
    parser.add_argument("--count", type=int, default=4,
                        help="fragments per architecture (default 4)")
    args = parser.parse_args()

    run_architecture("intel-cyclone10lp", args.count)
    run_architecture("lattice-ecp5", args.count)
    if not args.quick:
        run_architecture("xilinx-ultrascale-plus", max(2, args.count // 2))


if __name__ == "__main__":
    main()
