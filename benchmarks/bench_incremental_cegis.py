"""Incremental vs from-scratch CEGIS on multi-iteration instances.

The incremental synthesis core keeps one CDCL context alive across a whole
CEGIS run: hole variables map to stable CNF literals, each counterexample
appends only its own obligations' clauses, and learned clauses survive from
iteration to iteration.  From-scratch mode re-substitutes, re-bit-blasts
and cold-starts the solver every round — so the more iterations a run
needs, the more work incrementality saves.

This benchmark uses threshold/interval synthesis instances whose CEGIS runs
take many iterations by construction (every counterexample tightens a
bound), with random probing disabled so the candidate step actually
exercises the solver.  Both modes must return identical statuses and hole
values — the wall-clock of the candidate phase is the only thing allowed
to differ.
"""

import pytest

from repro.bv import bv, bvvar, bvand, bvult
from repro.smt.cegis import Obligation, synthesize
from repro.smt.solver import SmtSolver

#: Minimum candidate-phase speedup the incremental mode must show on the
#: multi-iteration (>= 4 rounds) instances, incremental vs from-scratch.
SPEEDUP_FLOOR = 1.5

WIDTH = 12


def _instances():
    x = bvvar("x", WIDTH)
    k = bvvar("k", WIDTH)
    m = bvvar("m", WIDTH)
    return {
        "threshold": ([Obligation(bvult(x, bv(2900, WIDTH)), bvult(x, k))],
                      {"k": WIDTH}),
        "interval": ([Obligation(
            bvand(bvult(x, bv(2900, WIDTH)), bvult(bv(700, WIDTH), x)),
            bvand(bvult(x, k), bvult(m, x)))],
            {"k": WIDTH, "m": WIDTH}),
    }


def _run(mode_incremental: bool):
    outcomes = {}
    for name, (obligations, holes) in _instances().items():
        # A fresh verification-side solver per run: the two modes must see
        # identical probing RNG streams for a trajectory-level comparison.
        outcomes[name] = synthesize(
            obligations, holes, incremental=mode_incremental,
            solver=SmtSolver(seed=0),
            random_probes=0, initial_random_examples=0, max_iterations=256)
    return outcomes


@pytest.mark.benchmark(group="incremental-cegis")
def test_incremental_candidate_step_speedup(benchmark):
    scratch = _run(False)

    warm = benchmark.pedantic(_run, args=(True,), iterations=1, rounds=1)

    total_scratch = 0.0
    total_warm = 0.0
    for name in scratch:
        cold, inc = scratch[name], warm[name]
        # Identity first: speed means nothing if the answers drift.
        assert cold.status == inc.status == "sat", name
        assert cold.hole_values == inc.hole_values, name
        assert cold.iterations == inc.iterations >= 4, \
            f"{name} must be genuinely multi-iteration"
        assert inc.incremental and not cold.incremental
        total_scratch += cold.candidate_time_seconds
        total_warm += inc.candidate_time_seconds

    speedup = total_scratch / total_warm if total_warm else float("inf")
    print(f"\ncandidate-step wall time: from-scratch {total_scratch:.3f}s, "
          f"incremental {total_warm:.3f}s ({speedup:.2f}x)")
    for name in scratch:
        print(f"  {name}: {scratch[name].iterations} iterations, "
              f"{warm[name].clauses_retained} learned clauses retained, "
              f"{scratch[name].candidate_time_seconds:.3f}s -> "
              f"{warm[name].candidate_time_seconds:.3f}s")
    assert speedup >= SPEEDUP_FLOOR, (
        f"incremental candidate step only {speedup:.2f}x faster "
        f"(expected >= {SPEEDUP_FLOOR}x)")
