"""Figure 6 (bottom): mapping time per tool (median / min / max).

Regenerates the timing table.  Absolute numbers differ from the paper's
(industrial solvers on a 64-core server vs a pure-Python stack), but the
shape holds: baseline pattern matchers are fast and flat, Lakeroad's
synthesis times are larger and highly variable.
"""

import dataclasses

import pytest

from repro.harness.experiments import figure6_timing, render_timing_table
from repro.harness.runner import run_baselines, run_lakeroad


@pytest.mark.benchmark(group="figure6-timing")
def test_figure6_timing_lattice(benchmark, experiment_config, lattice_benchmarks):
    # Timing must measure cold synthesis, not hits on a warm session cache.
    config = dataclasses.replace(experiment_config, use_cache=False)

    def run():
        records = run_lakeroad(lattice_benchmarks, config)
        records += run_baselines(lattice_benchmarks)
        return figure6_timing({"lattice-ecp5": records})

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print("\n" + render_timing_table(rows))
    by_tool = {row["tool"]: row for row in rows}
    # Lakeroad's max/min spread is wider than the baselines' (long tail).
    assert by_tool["lakeroad"]["max"] >= by_tool["yosys"]["max"]


@pytest.mark.benchmark(group="figure6-timing")
def test_figure6_timing_intel(benchmark, experiment_config, intel_benchmarks):
    config = dataclasses.replace(experiment_config, use_cache=False)

    def run():
        records = run_lakeroad(intel_benchmarks, config)
        records += run_baselines(intel_benchmarks)
        return figure6_timing({"intel-cyclone10lp": records})

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print("\n" + render_timing_table(rows))
    assert {row["tool"] for row in rows} == {"lakeroad", "sota", "yosys"}
