"""§5.1 resource reduction: LEs / registers saved by Lakeroad vs baselines.

The paper reports average savings of several LEs and registers per
microbenchmark (multiplied across a large design by module reuse).  This
benchmark regenerates the per-baseline averages on the sampled workloads.
"""

import pytest

from repro.harness.experiments import resource_reduction
from repro.harness.runner import run_baselines, run_lakeroad


@pytest.mark.benchmark(group="resource-reduction")
def test_resource_reduction_lattice(benchmark, experiment_config, lattice_benchmarks):
    def run():
        records = run_lakeroad(lattice_benchmarks, experiment_config)
        records += run_baselines(lattice_benchmarks)
        return resource_reduction(records)

    summary = benchmark.pedantic(run, iterations=1, rounds=1)
    print("\nresource reduction vs baselines:")
    for key, data in sorted(summary.items()):
        print(f"  {key:28s} LEs saved={data['avg_les_saved']:.1f} "
              f"registers saved={data['avg_registers_saved']:.1f} "
              f"(n={data['benchmarks']})")
    assert summary, "expected at least one baseline comparison"
    # Whenever Lakeroad succeeds it uses a single DSP and no fabric, so the
    # savings against any baseline that spilled to LUTs must be non-negative.
    for data in summary.values():
        assert data["avg_les_saved"] >= 0
