"""Figure 7: histogram of Lakeroad synthesis runtimes (terminating runs).

The paper's observation is that most synthesis queries terminate quickly
with a long tail of slower queries; this benchmark regenerates the histogram
data for the sampled workloads and checks the same skew.
"""

import pytest

from repro.harness.experiments import figure7_histogram
from repro.harness.runner import run_lakeroad


@pytest.mark.benchmark(group="figure7")
def test_figure7_runtime_histogram(benchmark, experiment_config,
                                   lattice_benchmarks, intel_benchmarks):
    def run():
        records = run_lakeroad(list(lattice_benchmarks) + list(intel_benchmarks),
                               experiment_config)
        return figure7_histogram(records, bins=10), records

    histogram, records = benchmark.pedantic(run, iterations=1, rounds=1)
    print("\nbin edges:", [round(edge, 2) for edge in histogram["bin_edges"]])
    print("counts   :", histogram["counts"])
    print("terminating:", histogram["terminating"], "timeouts:", histogram["timeouts"])
    assert histogram["terminating"] > 0
    # Every terminating run is accounted for in exactly one bin, and the
    # distribution is right-skewed (median below the midpoint of the range),
    # which is the paper's "most queries terminate quickly, long thin tail"
    # observation.  On the small default sample we only check the weak form:
    # the median terminating time is no larger than the mean.
    assert sum(histogram["counts"]) == histogram["terminating"]
    times = sorted(r.time_seconds for r in records
                   if r.tool == "lakeroad" and r.outcome in ("success", "unsat"))
    median = times[len(times) // 2]
    mean = sum(times) / len(times)
    assert median <= mean * 1.05
