"""Figure 7: histogram of Lakeroad synthesis runtimes (terminating runs).

The paper's observation is that most synthesis queries terminate quickly
with a long tail of slower queries; this benchmark regenerates the histogram
data for the sampled workloads and checks the same skew.
"""

import dataclasses
import os

import pytest

from repro.harness.experiments import figure7_histogram
from repro.harness.runner import run_lakeroad

FULL_SCALE = os.environ.get("LAKEROAD_BENCH_FULL", "0") == "1"


@pytest.mark.benchmark(group="figure7")
def test_figure7_runtime_histogram(benchmark, experiment_config,
                                   lattice_benchmarks, intel_benchmarks):
    # Runtime distributions must come from cold synthesis, not cache hits.
    config = dataclasses.replace(experiment_config, use_cache=False)

    def run():
        records = run_lakeroad(list(lattice_benchmarks) + list(intel_benchmarks),
                               config)
        return figure7_histogram(records, bins=10), records

    histogram, records = benchmark.pedantic(run, iterations=1, rounds=1)
    print("\nbin edges:", [round(edge, 2) for edge in histogram["bin_edges"]])
    print("counts   :", histogram["counts"])
    print("terminating:", histogram["terminating"], "timeouts:", histogram["timeouts"])
    assert histogram["terminating"] > 0
    # Every terminating run is accounted for in exactly one bin, and every
    # timeout is accounted for outside the bins.
    assert sum(histogram["counts"]) == histogram["terminating"]
    lakeroad_records = [r for r in records if r.tool == "lakeroad"]
    assert histogram["timeouts"] == \
        sum(1 for r in lakeroad_records if r.outcome == "timeout")
    assert histogram["terminating"] + histogram["timeouts"] == len(lakeroad_records)
    times = sorted(r.time_seconds for r in records
                   if r.tool == "lakeroad" and r.outcome in ("success", "unsat"))
    if FULL_SCALE:
        # The paper's right-skew ("most queries terminate quickly, long
        # thin tail") emerges on the full enumeration with wide bitwidths;
        # the stratified laptop sample is too small and uniform for it.
        median = times[len(times) // 2]
        mean = sum(times) / len(times)
        assert median <= mean * 1.05
