"""Table 1: FPGA primitives imported automatically from vendor Verilog models.

Regenerates the table (primitive, model SLoC) and times the semantics
extraction pipeline itself (parse → elaborate → btor2-like transition
system → ℒlr program) for every shipped primitive.
"""

import pytest

from repro.harness.experiments import render_table1, table1_primitives
from repro.vendor.library import KNOWN_PRIMITIVES, PrimitiveLibrary


@pytest.mark.benchmark(group="table1")
def test_table1_import_all_primitives(benchmark):
    def run():
        library = PrimitiveLibrary()  # fresh cache: measures real extraction
        return library.table1_rows()

    rows = benchmark(run)
    print("\n" + render_table1(table1_primitives()))
    assert {row["primitive"] for row in rows} == set(KNOWN_PRIMITIVES)
    dsp = next(row for row in rows if row["primitive"] == "DSP48E2")
    lut = next(row for row in rows if row["primitive"] == "LUT2")
    # Shape check mirroring the paper: the DSP model dwarfs the small LUTs.
    assert dsp["verilog_sloc"] > 5 * lut["verilog_sloc"]
    assert dsp["registers"] > 0


@pytest.mark.benchmark(group="table1")
def test_table1_dsp48e2_extraction_time(benchmark):
    from repro.hdl.extract import extract_semantics
    from repro.vendor.library import models_directory

    source = (models_directory() / "DSP48E2.v").read_text()
    program, system = benchmark(extract_semantics, source, "DSP48E2")
    assert len(system.states) == 9
    assert program.node_count() > 50
