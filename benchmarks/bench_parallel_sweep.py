"""Sharded-sweep scaling: wall-clock at workers ∈ {1, 2, 4}, cold vs warm.

The evaluation sweep is embarrassingly parallel, so wall-clock should fall
as workers are added (modulo per-query variance and process start-up), and
a warm persistent cache should collapse the sweep to read time regardless
of worker count.  Laptop scale uses the sampled workloads; set
``LAKEROAD_BENCH_FULL=1`` for the complete enumeration.
"""

import pytest

from repro.engine.parallel import run_sweep
from repro.harness.runner import ExperimentConfig


@pytest.fixture
def sweep_benchmarks(intel_benchmarks, lattice_benchmarks):
    return list(intel_benchmarks) + list(lattice_benchmarks)


def _config(experiment_config, cache_dir=None):
    return ExperimentConfig(timeout_seconds=dict(experiment_config.timeout_seconds),
                            validate=False, cache_dir=cache_dir)


@pytest.mark.benchmark(group="parallel-sweep")
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_cold_sweep_scaling(benchmark, experiment_config, sweep_benchmarks, workers):
    """Cold sweep (no persistent cache): scaling with worker count."""
    benchmarks = sweep_benchmarks

    def run():
        # No cache_dir and a fresh per-round session spec: every round pays
        # full synthesis cost, so rounds measure compute scaling.
        return run_sweep(benchmarks, _config(experiment_config), workers=workers)

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    assert len(result.records) == len(benchmarks)
    assert result.workers == min(workers, len(benchmarks))
    print(f"\nworkers={workers}: outcomes {result.outcome_counts()}, "
          f"portfolio wins {result.portfolio_wins}")


@pytest.mark.benchmark(group="parallel-sweep")
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_warm_disk_cache_sweep(benchmark, experiment_config, sweep_benchmarks,
                               tmp_path, workers):
    """Second sweep over a persistent cache: should be nearly free."""
    benchmarks = sweep_benchmarks
    cache_dir = str(tmp_path / f"cache-w{workers}")
    config = _config(experiment_config, cache_dir=cache_dir)
    cold = run_sweep(benchmarks, config, workers=workers)

    def run():
        return run_sweep(benchmarks, config, workers=workers)

    warm = benchmark.pedantic(run, iterations=1, rounds=1)
    assert [r.outcome for r in warm.records] == [r.outcome for r in cold.records]
    # Timeouts are never persisted, so only terminating runs must hit.
    terminating = sum(1 for r in cold.records if r.outcome != "timeout")
    assert warm.record_cache_hits >= terminating
    print(f"\nworkers={workers}: warm hit rate {warm.hit_rate:.0%} "
          f"({warm.record_cache_hits}/{len(warm.records)})")
