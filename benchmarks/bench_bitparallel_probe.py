"""Bit-parallel probing: packed vs scalar throughput, and cross-mode identity.

The packed evaluator (``repro.bv.bitsim``) answers "does any of these 64
random assignments satisfy the formula?" with word-parallel kernels over
bit-transposed lanes instead of 64 scalar ``evaluate`` walks.  Two things
must hold for it to be shippable:

* it must actually be fast — the probe phase is pure overhead when the
  formula is unsatisfiable under all probes, so the engine only earns its
  keep with a large constant-factor win on the miters tier-1 synthesis
  really probes;
* it must be invisible — probing draws from the same seeded RNG stream as
  the historical scalar loop and rewinds it on a hit, so every CEGIS
  trajectory (statuses, hole values, iteration counts) is identical in all
  four ``incremental`` x ``incremental_verify`` modes, with probing on or
  off.

This benchmark asserts both: a >= ``SPEEDUP_FLOOR`` packed-over-scalar
throughput ratio on real tier-1 equivalence miters (identity of every lane
checked first), and byte-identical end-to-end mapping outcomes across all
four modes at the default probe budget.
"""

import random

import pytest

from repro.arch import load_architecture
from repro.bv import bvand, bveq
from repro.bv.bitsim import PROBE_LANES, PackedEvaluator, unpack_lane
from repro.bv.eval import evaluate, var_widths
from repro.core.equivalence import output_pairs
from repro.core.sketch_gen import DesignInterface, generate_sketch
from repro.engine.session import MappingSession
from repro.harness.bench import probe_throughput
from repro.hdl.behavioral import verilog_to_behavioral
from repro.vendor.library import PrimitiveLibrary
from repro.workloads import sample_workloads

#: Minimum packed-over-scalar throughput ratio on tier-1 miters.  The
#: measured headroom is ~11x on the obligation miters and ~14x on the
#: representative DSP formula; 8x is the acceptance floor from the
#: bit-parallel engine's design goal, left slack for noisy CI runners.
SPEEDUP_FLOOR = 8.0

#: Random assignments evaluated per miter on each side (a multiple of
#: PROBE_LANES so the packed side runs only full batches).
ASSIGNMENTS = 4096

ARCH = "intel-cyclone10lp"
DESIGN_COUNT = 4


def _tier1_miters():
    """Real equivalence miters: sketch-vs-design obligations for tier-1
    workloads, exactly the formulas the probe layer sees during mapping."""
    library = PrimitiveLibrary()
    miters = []
    for benchmark in sample_workloads(ARCH, DESIGN_COUNT, seed=0, max_width=8):
        design = verilog_to_behavioral(benchmark.verilog)
        arch = load_architecture(benchmark.architecture)
        interface = DesignInterface(input_widths=dict(design.input_widths),
                                    output_width=design.output_width)
        sketch = generate_sketch("dsp", arch, interface, library)
        pairs = output_pairs(sketch.program, design.program,
                             design.pipeline_depth, 1)
        equalities = [bveq(d, s) for _, s, d in pairs]
        formula = equalities[0] if len(equalities) == 1 else bvand(*equalities)
        miters.append((benchmark.name, formula))
    return miters


@pytest.mark.benchmark(group="bitparallel-probe")
def test_packed_probe_throughput_on_tier1_miters(benchmark):
    import time

    miters = _tier1_miters()
    workload = []
    for name, formula in miters:
        widths = sorted(var_widths(formula).items())
        rng = random.Random(0)
        batch = [{n: rng.getrandbits(w) for n, w in widths}
                 for _ in range(ASSIGNMENTS)]
        workload.append((name, formula, batch))

    scalar_results = {}
    scalar_seconds = 0.0
    for name, formula, batch in workload:
        start = time.perf_counter()
        scalar_results[name] = [evaluate(formula, a) for a in batch]
        scalar_seconds += time.perf_counter() - start

    evaluators = {name: PackedEvaluator(formula)
                  for name, formula, _ in workload}

    def packed_pass():
        results = {}
        for name, _, batch in workload:
            evaluator = evaluators[name]
            words_per_batch = []
            for base in range(0, ASSIGNMENTS, PROBE_LANES):
                words_per_batch.append(
                    evaluator.evaluate_batch(batch[base:base + PROBE_LANES]))
            results[name] = words_per_batch
        return results

    start = time.perf_counter()
    packed_results = packed_pass()
    packed_seconds = time.perf_counter() - start
    benchmark.pedantic(packed_pass, iterations=1, rounds=1)

    # Identity first: speed means nothing if any lane disagrees with the
    # scalar evaluator.
    for name, _, _ in workload:
        expected = scalar_results[name]
        for batch_index, words in enumerate(packed_results[name]):
            for lane in range(PROBE_LANES):
                got = unpack_lane(words, lane)
                assert got == expected[batch_index * PROBE_LANES + lane], (
                    f"{name}: lane {lane} of batch {batch_index} "
                    f"disagrees with scalar evaluate")

    total = len(workload) * ASSIGNMENTS
    speedup = scalar_seconds / packed_seconds if packed_seconds else float("inf")
    print(f"\nprobe throughput over {len(workload)} tier-1 miters "
          f"({total} assignments each side):")
    print(f"  scalar {total / scalar_seconds:,.0f}/s, "
          f"packed {total / packed_seconds:,.0f}/s ({speedup:.1f}x)")
    assert speedup >= SPEEDUP_FLOOR, (
        f"packed probing only {speedup:.1f}x faster than scalar on tier-1 "
        f"miters (expected >= {SPEEDUP_FLOOR}x)")

    # The representative-formula number `lakeroad bench` snapshots must
    # clear the same floor.
    snapshot = probe_throughput(ASSIGNMENTS)
    print(f"  representative DSP miter: {snapshot['speedup']:.1f}x")
    assert snapshot["speedup"] >= SPEEDUP_FLOOR, (
        f"representative-miter probing only {snapshot['speedup']:.1f}x "
        f"(expected >= {SPEEDUP_FLOOR}x)")


def _map_all(incremental: bool, incremental_verify: bool, random_probes: int):
    outcomes = {}
    with MappingSession(enable_cache=False, incremental=incremental,
                        incremental_verify=incremental_verify,
                        random_probes=random_probes) as session:
        for benchmark in sample_workloads(ARCH, DESIGN_COUNT, seed=0,
                                          max_width=8):
            design = verilog_to_behavioral(benchmark.verilog)
            result = session.map_design(design, template="dsp",
                                        arch=benchmark.architecture)
            synthesis = result.synthesis
            outcomes[benchmark.name] = {
                "status": result.status,
                "hole_values": dict(synthesis.hole_values) if synthesis else {},
                "iterations": synthesis.cegis_iterations if synthesis else 0,
                "probe_lanes": synthesis.probe_lanes_evaluated if synthesis else 0,
            }
    return outcomes


@pytest.mark.benchmark(group="bitparallel-probe")
def test_cegis_outcomes_identical_across_modes(benchmark):
    """End-to-end mapping with packed probing enabled must be trajectory-
    identical in all four incremental x incremental_verify modes, and
    probing must not change which designs solve."""
    baseline = _map_all(False, False, random_probes=32)
    assert any(o["status"] == "success" for o in baseline.values()), (
        "mode-identity check is vacuous: no tier-1 design solved")
    assert any(o["probe_lanes"] > 0 for o in baseline.values()), (
        "mode-identity check is vacuous: packed probing never ran")

    modes = [(False, True), (True, False), (True, True)]
    results = [
        benchmark.pedantic(_map_all, args=(inc, inc_verify, 32),
                           iterations=1, rounds=1)
        if (inc, inc_verify) == modes[-1]
        else _map_all(inc, inc_verify, 32)
        for inc, inc_verify in modes
    ]
    for (inc, inc_verify), outcomes in zip(modes, results):
        for name, expected in baseline.items():
            got = outcomes[name]
            assert got["status"] == expected["status"], (
                f"{name}: status diverged in incremental={inc} "
                f"incremental_verify={inc_verify}")
            assert got["hole_values"] == expected["hole_values"], (
                f"{name}: hole values diverged in incremental={inc} "
                f"incremental_verify={inc_verify}")
            assert got["iterations"] == expected["iterations"], (
                f"{name}: iteration count diverged in incremental={inc} "
                f"incremental_verify={inc_verify}")

    # Probing is an accelerator, not an oracle: disabling it may change the
    # CEGIS trajectory (different counterexample order) but never the verdict.
    unprobed = _map_all(False, False, random_probes=0)
    for name, expected in baseline.items():
        assert unprobed[name]["status"] == expected["status"], (
            f"{name}: outcome changed when probing was disabled")
        assert unprobed[name]["probe_lanes"] == 0, (
            f"{name}: probes ran despite random_probes=0")

    statuses = sorted(o["status"] for o in baseline.values())
    print(f"\noutcomes identical across all four modes "
          f"(probes on and off): {statuses}")
