"""Propagation throughput: the flat-arena CDCL core vs the legacy baseline.

The arena rewrite keeps the solver's observable behaviour bit-for-bit
identical to the retired dict-based implementation — same decisions, same
conflicts, same learned clauses, same models — so the only thing allowed
to change is how fast the propagation loop runs.  This benchmark holds it
to both halves of that contract on the repository's hardest tier-1-shaped
instance: mapping ``((a + b) * c) & d`` at 16 bits onto the
xilinx-ultrascale-plus DSP template, an unsat-heavy CEGIS run of several
hundred thousand propagations.

Measured claims:

* **identity** — the arena and legacy engines report the same mapping
  status, the same hole values and literally the same propagation count
  (the trajectory-identity contract, checked end to end through the whole
  CEGIS stack rather than on a bare CNF);
* **throughput** — the arena core propagates at >= ``RATIO_FLOOR`` times
  the legacy rate on this instance (locally ~1.6-1.8x; the floor leaves
  headroom for CI noise), and clears an absolute propagations-per-second
  floor so a uniformly slow build cannot hide behind a preserved ratio.

The legacy engine is selected the same way the differential fuzz suite
does it: ``repro.smt.solver`` instantiates every solver through its module
global, so rebinding ``repro.smt.solver.CDCLSolver`` swaps the engine under
the entire SMT/CEGIS stack.  Telemetry comes from the synthesis outcome
(``propagations`` / ``solver_solve_seconds``), i.e. the same plumbing
``lakeroad map --stats`` reports, so the benchmark also exercises that
path end to end.
"""

import pytest

import repro.smt.solver as smt_solver
from repro.engine.session import MappingSession
from repro.lakeroad import map_verilog
from repro.sat.legacy import LegacyCDCLSolver

#: The hard DSP instance: a multiply-add-mask cone at 16 bits.  Unsat for
#: the DSP template's hole space, which is the conflict-heavy case where
#: propagation dominates.
VERILOG = """
module add_mul_and(input [15:0] a, input [15:0] b, input [15:0] c,
                   input [15:0] d, output [15:0] out);
  assign out = ((a + b) * c) & d;
endmodule
"""

#: Arena propagations/second must be at least this multiple of legacy's.
#: Locally the ratio sits at 1.6-1.8x; 1.3x is the regression floor, not
#: the target, leaving margin for noisy shared CI runners.
RATIO_FLOOR = 1.3

#: Absolute arena throughput floor (props/s of solver time).  Local runs
#: measure >200k/s; 50k/s catches an order-of-magnitude collapse without
#: flaking on slow runners.
ABSOLUTE_FLOOR = 50_000.0


def _map_dsp():
    """One cold mapping run; a fresh session defeats the result cache."""
    result = map_verilog(VERILOG, template="dsp",
                         arch="xilinx-ultrascale-plus",
                         session=MappingSession())
    synthesis = result.synthesis
    assert synthesis is not None, "mapping produced no synthesis outcome"
    assert synthesis.propagations > 0, "propagation telemetry did not flow"
    assert synthesis.solver_solve_seconds > 0
    return result


def test_arena_matches_legacy_and_clears_the_throughput_floor(monkeypatch):
    arena = _map_dsp()
    with monkeypatch.context() as patch:
        patch.setattr(smt_solver, "CDCLSolver", LegacyCDCLSolver)
        legacy = _map_dsp()

    # Identity: same outcome, same holes, same propagation count.
    assert arena.status == legacy.status
    assert arena.hole_values == legacy.hole_values
    assert arena.synthesis.propagations == legacy.synthesis.propagations, (
        "the arena solver diverged from the legacy trajectory: "
        f"{arena.synthesis.propagations} vs {legacy.synthesis.propagations} "
        "propagations")

    arena_pps = (arena.synthesis.propagations
                 / arena.synthesis.solver_solve_seconds)
    legacy_pps = (legacy.synthesis.propagations
                  / legacy.synthesis.solver_solve_seconds)
    ratio = arena_pps / legacy_pps
    print(f"\narena:  {arena.synthesis.propagations} propagations in "
          f"{arena.synthesis.solver_solve_seconds:.2f}s ({arena_pps:,.0f}/s)")
    print(f"legacy: {legacy.synthesis.propagations} propagations in "
          f"{legacy.synthesis.solver_solve_seconds:.2f}s ({legacy_pps:,.0f}/s)")
    print(f"throughput ratio: {ratio:.2f}x")

    assert arena_pps >= ABSOLUTE_FLOOR, (
        f"arena propagation throughput {arena_pps:,.0f}/s is below the "
        f"{ABSOLUTE_FLOOR:,.0f}/s absolute floor")
    assert ratio >= RATIO_FLOOR, (
        f"arena is only {ratio:.2f}x legacy throughput "
        f"(floor {RATIO_FLOOR}x)")


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v", "-s"]))
