"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's evaluation artifacts (see
DESIGN.md's experiment index).  The default configuration is laptop-scale:
stratified workload subsamples, small bitwidths and short per-query
timeouts.  Set the environment variable ``LAKEROAD_BENCH_FULL=1`` to run the
complete 1320/396/66 enumeration with the paper's timeouts (hours of
runtime, as in the original artifact).
"""

import os

import pytest

from repro.harness.runner import ExperimentConfig
from repro.workloads import enumerate_workloads, sample_workloads

FULL_SCALE = os.environ.get("LAKEROAD_BENCH_FULL", "0") == "1"

#: Laptop-scale sample sizes per architecture.
SAMPLE_SIZES = {
    "xilinx-ultrascale-plus": 3,
    "lattice-ecp5": 8,
    "intel-cyclone10lp": 6,
}


@pytest.fixture(scope="session")
def experiment_config() -> ExperimentConfig:
    if FULL_SCALE:
        return ExperimentConfig(timeout_seconds={
            "xilinx-ultrascale-plus": 120.0,
            "lattice-ecp5": 40.0,
            "intel-cyclone10lp": 20.0,
        })
    return ExperimentConfig(timeout_seconds={
        "xilinx-ultrascale-plus": 60.0,
        "lattice-ecp5": 20.0,
        "intel-cyclone10lp": 10.0,
    })


def benchmarks_for(architecture: str):
    """The workload set a benchmark runs for one architecture."""
    if FULL_SCALE:
        return enumerate_workloads(architecture)
    return sample_workloads(architecture, SAMPLE_SIZES[architecture], max_width=8)


@pytest.fixture(scope="session")
def xilinx_benchmarks():
    return benchmarks_for("xilinx-ultrascale-plus")


@pytest.fixture(scope="session")
def lattice_benchmarks():
    return benchmarks_for("lattice-ecp5")


@pytest.fixture(scope="session")
def intel_benchmarks():
    return benchmarks_for("intel-cyclone10lp")
