"""§5.1 solver-portfolio statistics: which decision strategy answers first.

The paper reports how often each SMT solver in the portfolio finished first
(Bitwuzla 671, STP 519, Yices2 464, cvc5 64).  Our portfolio members are the
word-level normaliser, random simulation, and the CDCL/DPLL SAT engines;
this benchmark runs the sampled workloads and reports the win counts per
strategy for both CEGIS phases.
"""

from collections import Counter

import pytest

from repro.engine.session import MappingSession
from repro.harness.runner import run_lakeroad
from repro.hdl.behavioral import verilog_to_behavioral
from repro.lakeroad import map_design


@pytest.mark.benchmark(group="portfolio")
def test_portfolio_strategy_wins(benchmark, experiment_config,
                                 intel_benchmarks, lattice_benchmarks):
    # A private uncached session: strategy-win statistics must come from
    # solver runs, not from hits on the default session's synthesis cache
    # warmed by earlier benchmarks.
    session = MappingSession(enable_cache=False)

    def run():
        candidate_wins, verify_wins = Counter(), Counter()
        for bench in list(intel_benchmarks) + list(lattice_benchmarks):
            design = verilog_to_behavioral(bench.verilog)
            result = map_design(design, arch=bench.architecture,
                                timeout_seconds=experiment_config.timeout_for(
                                    bench.architecture),
                                validate=False, session=session)
            if result.synthesis is not None:
                candidate_wins[result.synthesis.candidate_strategy] += 1
                verify_wins[result.synthesis.verify_strategy] += 1
        return candidate_wins, verify_wins

    candidate_wins, verify_wins = benchmark.pedantic(run, iterations=1, rounds=1)
    print("\ncandidate-phase strategy wins:", dict(candidate_wins))
    print("verification-phase strategy wins:", dict(verify_wins))
    assert sum(candidate_wins.values()) > 0
    # The cheap strategies (normalisation / simulation / structural checks)
    # should win a substantial share, mirroring the paper's observation that
    # the fastest portfolio member varies by query.
    assert len(candidate_wins) >= 1 and len(verify_wins) >= 1
