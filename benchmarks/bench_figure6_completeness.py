"""Figure 6 (top): completeness of technology mapping per tool per architecture.

Regenerates the bar chart's underlying numbers: for each architecture, the
fraction of microbenchmarks each tool maps to a single DSP, Lakeroad's
success/UNSAT/timeout split, and the Lakeroad-vs-SOTA / Lakeroad-vs-Yosys
ratios printed next to the paper's reported 2.1×/44× (Xilinx), 3.6×/6×
(Lattice) and 3×/∞ (Intel).
"""

import pytest

from repro.harness.experiments import figure6_completeness, render_completeness_table


@pytest.mark.benchmark(group="figure6-completeness")
def test_figure6_completeness_lattice(benchmark, experiment_config, lattice_benchmarks):
    def run():
        return figure6_completeness({"lattice-ecp5": lattice_benchmarks}, experiment_config)

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    summary = results["lattice-ecp5"]
    print("\n" + render_completeness_table(results))
    lakeroad = summary["tools"]["lakeroad"]["mapped"]
    yosys = summary["tools"]["yosys"]["mapped"]
    sota = summary["tools"]["sota"]["mapped"]
    # Shape check: Lakeroad maps at least as many designs as either baseline.
    assert lakeroad >= sota >= 0
    assert lakeroad >= yosys


@pytest.mark.benchmark(group="figure6-completeness")
def test_figure6_completeness_intel(benchmark, experiment_config, intel_benchmarks):
    def run():
        return figure6_completeness({"intel-cyclone10lp": intel_benchmarks}, experiment_config)

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    summary = results["intel-cyclone10lp"]
    print("\n" + render_completeness_table(results))
    # Paper: Lakeroad maps all Intel designs; Yosys maps none.
    assert summary["tools"]["lakeroad"]["mapped"] == summary["total"]
    assert summary["tools"]["yosys"]["mapped"] == 0


@pytest.mark.benchmark(group="figure6-completeness")
def test_figure6_completeness_xilinx(benchmark, experiment_config, xilinx_benchmarks):
    def run():
        return figure6_completeness({"xilinx-ultrascale-plus": xilinx_benchmarks},
                                    experiment_config)

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    summary = results["xilinx-ultrascale-plus"]
    print("\n" + render_completeness_table(results))
    lakeroad = summary["tools"]["lakeroad"]
    # Lakeroad either maps a design, proves it unmappable, or times out —
    # it never silently produces a multi-DSP fallback.
    assert lakeroad["mapped"] + lakeroad["unsat"] + lakeroad["timeout"] == summary["total"]
