"""Service-mode throughput: warm worker pool vs per-request cold starts.

``lakeroad serve`` amortizes interpreter start-up, architecture loading and
sketch compilation across requests, and its front door coalesces duplicate
in-flight queries and answers repeats from the cache without touching a
worker.  These benchmarks measure that amortization: a pipelined burst
against a warm pool must beat one-process-per-request by at least the 5x
floor the CI smoke job gates on (in practice it is orders of magnitude).
"""

import time

import pytest

from repro.engine.parallel import SessionSpec, run_sweep
from repro.engine.service import MapRequest, ServerThread, ServiceClient, SolverService
from repro.harness.bench import bench_serve
from repro.harness.runner import ExperimentConfig


@pytest.mark.benchmark(group="serve")
def test_warm_pool_vs_cold_process(benchmark):
    """The headline number: requests/sec served warm vs cold subprocesses."""

    def run():
        return bench_serve(architectures=["intel-cyclone10lp"], count=4,
                           requests=32, workers=2, cold_requests=2)

    section = benchmark.pedantic(run, iterations=1, rounds=1)
    warm = section["serve_warm"]
    print(f"\ncold process: {section['cold_process']['requests_per_second']:.2f} req/s, "
          f"warm serve: {warm['requests_per_second']:.1f} req/s "
          f"({section['speedup_vs_cold']:.0f}x), "
          f"p50 {warm['p50_latency_seconds'] * 1e3:.1f} ms, "
          f"p95 {warm['p95_latency_seconds'] * 1e3:.1f} ms")
    assert warm["failed"] == 0
    assert section["warm_hit_rate"] >= 0.5
    assert section["speedup_vs_cold"] >= 5.0


@pytest.mark.benchmark(group="serve")
def test_duplicate_burst_coalesces_to_unique_solves(benchmark, intel_benchmarks):
    """A burst with many duplicates costs only the unique solves."""
    config = ExperimentConfig()
    requests = [MapRequest.from_benchmark(b, config)
                for b in intel_benchmarks] * 8

    def run():
        with SolverService(SessionSpec(), workers=2) as service:
            futures = [service.submit(r) for r in requests]
            for future in futures:
                future.result(timeout=600)
            return service.stats()

    stats = benchmark.pedantic(run, iterations=1, rounds=1)
    unique = len({(r.verilog, r.arch, r.template) for r in requests})
    print(f"\n{stats['requests']} requests -> {stats['dispatched']} dispatched "
          f"({stats['coalesced']} coalesced, warm rate {stats['warm_hit_rate']:.0%})")
    assert stats["dispatched"] <= unique
    assert stats["warm_hit_rate"] >= 0.75


@pytest.mark.benchmark(group="serve")
def test_socket_roundtrip_latency_warm(benchmark, tmp_path, intel_benchmarks):
    """Per-request latency through the full socket stack once warm, and
    record equality against the serial sweep the service replaces."""
    benchmarks = list(intel_benchmarks)[:4]
    config = ExperimentConfig()
    serial = run_sweep(benchmarks, config, workers=1).records
    socket_path = tmp_path / "bench.sock"
    with SolverService(SessionSpec(), workers=2) as service:
        with ServerThread(service, socket_path):
            with ServiceClient(socket_path) as client:
                warmup = [client.map_verilog(
                    b.verilog, arch=b.architecture, benchmark=b.name,
                    form=b.form.name, width=b.width, stages=b.stages,
                    signed=b.signed) for b in benchmarks]

                def run():
                    started = time.perf_counter()
                    responses = [client.map_verilog(
                        b.verilog, arch=b.architecture, benchmark=b.name,
                        form=b.form.name, width=b.width, stages=b.stages,
                        signed=b.signed) for b in benchmarks]
                    elapsed = time.perf_counter() - started
                    return responses, elapsed

                responses, elapsed = benchmark.pedantic(
                    run, iterations=1, rounds=1)

    assert all(r["ok"] for r in warmup + responses)

    def comparable(record_dict):
        data = dict(record_dict)
        data.pop("time_seconds")
        data.pop("cache_hit")
        return data

    serial_side = [comparable(r.to_dict()) for r in serial]
    served_side = [comparable(r["record"]) for r in responses]
    assert serial_side == served_side
    print(f"\nwarm socket round-trip: "
          f"{elapsed / len(benchmarks) * 1e3:.2f} ms/request "
          f"({len(benchmarks)} sequential requests)")
