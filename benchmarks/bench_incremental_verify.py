"""Incremental vs fresh verification on multi-iteration CEGIS instances.

The incremental verifier keeps one assumption-gated miter session alive
across a whole CEGIS run: the sketch cone and spec miters are bit-blasted
once (hole variables left free), each candidate binds its hole values as
assumptions over the stable hole literals, and the CDCL solver's learned
clauses and branching activity survive from iteration to iteration.  The
fresh (portfolio) path re-substitutes, re-bit-blasts and cold-starts the
race on every verification query — so the more iterations a run needs and
the heavier the shared cone, the more incrementality saves.

These instances put a polynomial cone (shared multiplier network) inside an
interval check, so every verification query drags the full cone through the
SAT layer; verify-side random probing is disabled so the comparison
measures the SAT layer rather than the shared probing fast path.  Both
modes must return identical statuses, hole values and iteration counts —
the wall-clock of the verification phase is the only thing allowed to
differ.
"""

import pytest

from repro.bv import bv, bvvar, bvadd, bvand, bvmul, bvult
from repro.smt.cegis import Obligation, synthesize
from repro.smt.solver import SmtSolver

#: Minimum verification-phase speedup the incremental verifier must show on
#: the multi-iteration (>= 4 rounds) instances, incremental vs fresh.
SPEEDUP_FLOOR = 1.5


def _interval_instance(width, lo, hi, polynomial):
    x = bvvar("x", width)
    k, m = bvvar("k", width), bvvar("m", width)
    square = bvmul(x, x)
    f = bvadd(bvmul(square, x), square) if polynomial else square
    spec = bvand(bvult(f, bv(hi, width)), bvult(bv(lo, width), f))
    sketch = bvand(bvult(f, k), bvult(m, f))
    return [Obligation(spec, sketch)], {"k": width, "m": width}


def _instances():
    return {
        "square-interval": _interval_instance(10, 80, 600, polynomial=False),
        "poly-interval": _interval_instance(13, 700, 2900, polynomial=True),
    }


def _run(incremental_verify: bool):
    outcomes = {}
    for name, (obligations, holes) in _instances().items():
        # A fresh verification-side solver per run (probing disabled): the
        # two modes must see identical fast-path behavior so the SAT layer
        # is the only difference under measurement.
        outcomes[name] = synthesize(
            obligations, holes, incremental_verify=incremental_verify,
            solver=SmtSolver(seed=0, random_probes=0),
            random_probes=0, initial_random_examples=0, max_iterations=256)
    return outcomes


@pytest.mark.benchmark(group="incremental-verify")
def test_incremental_verify_step_speedup(benchmark):
    fresh = _run(False)

    warm = benchmark.pedantic(_run, args=(True,), iterations=1, rounds=1)

    total_fresh = 0.0
    total_warm = 0.0
    for name in fresh:
        cold, inc = fresh[name], warm[name]
        # Identity first: speed means nothing if the answers drift.
        assert cold.status == inc.status == "sat", name
        assert cold.hole_values == inc.hole_values, name
        assert cold.iterations == inc.iterations >= 4, \
            f"{name} must be genuinely multi-iteration"
        assert inc.incremental_verify and not cold.incremental_verify
        assert inc.cores_pruned >= 1, \
            f"{name} produced no pruning cores — the failure-core path is idle"
        total_fresh += cold.verify_time_seconds
        total_warm += inc.verify_time_seconds

    speedup = total_fresh / total_warm if total_warm else float("inf")
    print(f"\nverify-step wall time: fresh {total_fresh:.3f}s, "
          f"incremental {total_warm:.3f}s ({speedup:.2f}x)")
    for name in fresh:
        print(f"  {name}: {fresh[name].iterations} iterations, "
              f"{warm[name].verify_clauses_retained} learned clauses retained, "
              f"{warm[name].cores_pruned} pruning cores, "
              f"{fresh[name].verify_time_seconds:.3f}s -> "
              f"{warm[name].verify_time_seconds:.3f}s")
    assert speedup >= SPEEDUP_FLOOR, (
        f"incremental verify step only {speedup:.2f}x faster "
        f"(expected >= {SPEEDUP_FLOOR}x)")
