"""§5.2 extensibility: architecture-description size vs baseline mapper code.

The paper's argument: adding an architecture to Lakeroad takes a 20–240 line
YAML description, while pattern-matching flows need thousands of lines of
special-case code.  This benchmark regenerates the description-size table
(ours next to the paper's) and times loading + sketch specialisation for
every architecture, which is the whole per-architecture cost in this system.
"""

import pytest

from repro.arch import available_architectures, load_architecture
from repro.core.sketch_gen import DesignInterface, generate_sketch
from repro.harness.experiments import extensibility
from repro.vendor.library import PrimitiveLibrary


@pytest.mark.benchmark(group="extensibility")
def test_architecture_description_sizes(benchmark):
    rows = benchmark(extensibility)
    print("\narchitecture description sizes (ours vs paper):")
    for row in rows:
        print(f"  {row['architecture']:26s} {row['description_sloc']:4d} SLoC "
              f"(paper: {row['paper_description_sloc']})")
    by_name = {row["architecture"]: row for row in rows}
    # SOFA is the smallest description, as in the paper.
    assert by_name["sofa"]["description_sloc"] == min(r["description_sloc"] for r in rows)


@pytest.mark.benchmark(group="extensibility")
@pytest.mark.parametrize("arch_name", ["xilinx-ultrascale-plus", "lattice-ecp5",
                                        "intel-cyclone10lp", "sofa"])
def test_sketch_specialisation_cost(benchmark, arch_name):
    library = PrimitiveLibrary()
    arch = load_architecture(arch_name)
    template = "dsp" if arch.implements("DSP") else "bitwise"
    design = DesignInterface({"a": 8, "b": 8}, 8)

    sketch = benchmark(generate_sketch, template, arch, design, library)
    assert sketch.hole_count() > 0
