"""Clause-database reduction on a long multi-design warm-solver sweep.

The persistent candidate/verify sessions carry one CDCL solver across a
whole CEGIS run, and a sweep session lives through many designs — without
learned-clause management the watch lists grow monotonically with every
design the solver survives, propagation slows, and memory is unbounded.
This benchmark replays that lifecycle directly on one incremental
:class:`~repro.sat.solver.CDCLSolver`: a sequence of planted (satisfiable
by construction) phase-transition 3-SAT "designs" over disjoint variable
ranges is appended with ``add_clause`` and interrogated with warm
assumption solves, with LBD reduction disabled versus enabled.

Measured claims:

* **identity** — every query answers the same status with and without
  reduction (learned clauses are entailed; deletion is invisible);
* **bounded memory** — the learned-database peak stays within ~2× of the
  post-reduce floor, while the unreduced database grows without bound
  (the reduced peak must come in well under the unreduced one);
* **no slowdown** — reduced wall time stays within a small factor of the
  unreduced run (it is typically faster: shorter watch lists mean cheaper
  propagation), with per-run propagation rates printed for inspection.
"""

import random
import time

import pytest

from repro.sat.solver import CDCLSolver

#: Sweep shape: DESIGNS planted 3-SAT instances of NUM_VARS variables at
#: clause ratio 4.3, QUERIES warm assumption solves each.
NUM_VARS = 80
NUM_CLAUSES = int(4.3 * NUM_VARS)
DESIGNS = 28
QUERIES = 5

#: Reduction knobs under test (the solver defaults are more patient; the
#: benchmark reduces often enough to observe many cycles in one run).
REDUCE_INTERVAL = 200
MAX_LBD_KEEP = 3

#: The reduced run may use at most this fraction of the unreduced peak.
PEAK_RATIO_CEILING = 0.6

#: Reduced wall time must stay within this factor of the unreduced run
#: (generous against CI timing noise; the typical ratio is <= 1.0).
SLOWDOWN_CEILING = 1.5


def _planted_design(rng, offset):
    """A satisfiable-by-construction 3-SAT block over a fresh var range.

    Satisfiability matters: the designs share one solver, so a single
    unsat block would poison the database root-unsat for every later
    design.  Each clause is patched to agree with a hidden assignment.
    """
    truth = {v: rng.random() < 0.5 for v in range(1, NUM_VARS + 1)}
    clauses = []
    for _ in range(NUM_CLAUSES):
        chosen = rng.sample(range(1, NUM_VARS + 1), 3)
        literals = [v if rng.random() < 0.5 else -v for v in chosen]
        if not any((lit > 0) == truth[abs(lit)] for lit in literals):
            fix = rng.randrange(3)
            literals[fix] = chosen[fix] if truth[chosen[fix]] else -chosen[fix]
        clauses.append([lit + offset if lit > 0 else lit - offset
                       for lit in literals])
    return clauses


def _run_sweep(reduce_interval):
    rng = random.Random(5)
    solver = CDCLSolver(reduce_interval=reduce_interval,
                        max_lbd_keep=MAX_LBD_KEEP)
    statuses = []
    propagations = 0
    start = time.monotonic()
    for design in range(DESIGNS):
        offset = design * NUM_VARS
        for clause in _planted_design(rng, offset):
            solver.add_clause(clause)
        for _ in range(QUERIES):
            assumptions = [rng.choice((1, -1)) * (rng.randint(1, NUM_VARS) + offset)
                           for _ in range(4)]
            result = solver.solve(assumptions)
            statuses.append(result.status)
            propagations += result.propagations
    elapsed = time.monotonic() - start
    return {
        "statuses": statuses,
        "elapsed": elapsed,
        "propagations": propagations,
        "learned": solver.learned_count,
        "alive": solver.learned_alive,
        "peak": solver.db_size_peak,
        "floor": solver.db_size_floor,
        "deleted": solver.clauses_deleted,
        "reductions": solver.reductions,
    }


@pytest.mark.benchmark(group="clause-reduction")
def test_clause_reduction_bounds_db_without_slowdown(benchmark):
    unreduced = _run_sweep(0)

    reduced = benchmark.pedantic(_run_sweep, args=(REDUCE_INTERVAL,),
                                 iterations=1, rounds=1)

    # Identity first: deletion must be answer-invisible on every query.
    assert reduced["statuses"] == unreduced["statuses"], \
        "clause-DB reduction changed a query status"
    assert "unsat" in reduced["statuses"] and "sat" in reduced["statuses"], \
        "the sweep must exercise both outcomes"

    # Reduction genuinely ran and the database is bounded: the peak stays
    # within ~2x of the post-reduce floor (plus one interval of growth),
    # while the unreduced database just accumulates everything.
    assert reduced["reductions"] >= 5
    assert reduced["deleted"] > 0
    assert reduced["peak"] <= 2 * max(reduced["floor"], REDUCE_INTERVAL), (
        f"learned-DB peak {reduced['peak']} exceeds 2x the post-reduce "
        f"floor {reduced['floor']}")
    assert reduced["peak"] <= PEAK_RATIO_CEILING * unreduced["peak"], (
        f"reduced peak {reduced['peak']} is not meaningfully below the "
        f"unbounded peak {unreduced['peak']}")
    assert unreduced["deleted"] == 0 and unreduced["alive"] <= unreduced["peak"]

    # Propagation must not get slower per unit time (shorter watch lists).
    assert reduced["elapsed"] <= SLOWDOWN_CEILING * unreduced["elapsed"], (
        f"reduction slowed the sweep: {reduced['elapsed']:.2f}s vs "
        f"{unreduced['elapsed']:.2f}s unreduced")

    for label, run in (("unreduced", unreduced), ("reduced", reduced)):
        rate = run["propagations"] / run["elapsed"] if run["elapsed"] else 0.0
        print(f"\n{label}: {run['elapsed']:.2f}s, "
              f"{run['learned']} learned / {run['alive']} alive, "
              f"peak {run['peak']}, floor {run['floor']}, "
              f"{run['deleted']} deleted over {run['reductions']} reductions, "
              f"{rate:,.0f} props/s")
