"""Compilation of ℒstruct programs to structural Verilog (Section 2.2, step 3).

The translation is a purely one-to-one syntactic mapping — no optimisation
happens here, "reducing the likelihood that bugs could be inserted".  Each
node becomes either a wire with an ``assign`` (constants and wire-level
plumbing) or a vendor-module instantiation (Prim nodes).  The Prim node's
semantics program is *not* emitted; only its metadata is used, exactly as
the paper specifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.lang import (
    BVNode,
    OpNode,
    PrimNode,
    Program,
    VarNode,
)
from repro.core.sublang import is_structural

__all__ = ["LoweredDesign", "lower_to_verilog", "ResourceCount"]


@dataclass
class ResourceCount:
    """FPGA resource usage of a lowered design (used by the evaluation)."""

    dsps: int = 0
    luts: int = 0
    carries: int = 0
    registers: int = 0
    muxes: int = 0
    other: int = 0

    @property
    def logic_elements(self) -> int:
        """LEs as defined in §5.1: LUTs, muxes, or carry chains."""
        return self.luts + self.muxes + self.carries

    def total_primitives(self) -> int:
        return self.dsps + self.luts + self.carries + self.muxes + self.other

    def __add__(self, other: "ResourceCount") -> "ResourceCount":
        return ResourceCount(
            dsps=self.dsps + other.dsps,
            luts=self.luts + other.luts,
            carries=self.carries + other.carries,
            registers=self.registers + other.registers,
            muxes=self.muxes + other.muxes,
            other=self.other + other.other,
        )


@dataclass
class LoweredDesign:
    """The result of lowering: Verilog text plus a resource report."""

    module_name: str
    verilog: str
    resources: ResourceCount
    instances: List[str] = field(default_factory=list)


_DSP_MODULES = {"DSP48E2", "ALU54A", "MULT18X18C", "lattice_ecp5_dsp",
                "cyclone10lp_mac_mult", "DSP"}
_LUT_MODULES = {"LUT1", "LUT2", "LUT3", "LUT4", "LUT5", "LUT6", "frac_lut4", "LUT"}
_CARRY_MODULES = {"CARRY8", "CCU2C", "CARRY"}


def _classify_primitive(module_name: str) -> str:
    if module_name in _DSP_MODULES:
        return "dsp"
    if module_name in _LUT_MODULES:
        return "lut"
    if module_name in _CARRY_MODULES:
        return "carry"
    if module_name.upper().startswith("MUX"):
        return "mux"
    return "other"


def _verilog_const(value: int, width: int) -> str:
    return f"{width}'h{value:x}"


def lower_to_verilog(program: Program, module_name: str = "lakeroad_impl",
                     output_name: str = "out") -> LoweredDesign:
    """Lower a hole-free ℒstruct program to a structural Verilog module."""
    if not is_structural(program):
        raise ValueError("only ℒstruct programs can be lowered to structural Verilog")

    wires: Dict[int, str] = {}
    assigns: List[str] = []
    instances: List[str] = []
    resources = ResourceCount()
    instance_names: List[str] = []
    needs_clock = False

    inputs: List[Tuple[str, int]] = sorted(
        (node.name, node.width)
        for node in program.nodes.values() if isinstance(node, VarNode)
    )

    def wire_name(node_id: int) -> str:
        return wires[node_id]

    counter = 0

    def fresh(prefix: str) -> str:
        nonlocal counter
        counter += 1
        return f"{prefix}_{counter}"

    # Emit every node in dependency order (Kahn-style, combinational only:
    # ℒstruct has no registers so the node graph restricted to inputs() is a
    # DAG).
    remaining = dict(program.nodes)
    emitted: set = set()
    declarations: List[str] = []

    progress = True
    while remaining and progress:
        progress = False
        for node_id in list(remaining):
            node = remaining[node_id]
            if any(dep not in emitted for dep in node.inputs()):
                continue
            progress = True
            del remaining[node_id]
            emitted.add(node_id)

            if isinstance(node, VarNode):
                wires[node_id] = node.name
                continue

            name = fresh("w")
            wires[node_id] = name
            declarations.append(f"  wire [{node.width - 1}:0] {name};")

            if isinstance(node, BVNode):
                assigns.append(f"  assign {name} = {_verilog_const(node.value, node.width)};")
            elif isinstance(node, OpNode):
                assigns.append(_emit_wire_op(node, name, wires))
            elif isinstance(node, PrimNode):
                text, kind, has_clock, instance_name = _emit_prim(node, name, wires, fresh, program)
                instances.append(text)
                instance_names.append(instance_name)
                needs_clock = needs_clock or has_clock
                if kind == "dsp":
                    resources.dsps += 1
                elif kind == "lut":
                    resources.luts += 1
                elif kind == "carry":
                    resources.carries += 1
                elif kind == "mux":
                    resources.muxes += 1
                else:
                    resources.other += 1
            else:
                raise TypeError(f"unexpected node in ℒstruct program: {type(node).__name__}")

    if remaining:
        raise ValueError("could not order nodes for emission (cyclic structural program?)")

    root_width = program[program.root].width
    port_decls = []
    if needs_clock:
        port_decls.append("  input clk")
    port_decls += [f"  input [{width - 1}:0] {name}" for name, width in inputs]
    port_decls.append(f"  output [{root_width - 1}:0] {output_name}")

    lines = [f"module {module_name} ("]
    lines.append(",\n".join(port_decls))
    lines.append(");")
    lines.extend(declarations)
    lines.extend(assigns)
    lines.extend(instances)
    lines.append(f"  assign {output_name} = {wire_name(program.root)};")
    lines.append("endmodule")

    return LoweredDesign(module_name=module_name, verilog="\n".join(lines) + "\n",
                         resources=resources, instances=instance_names)


def _emit_wire_op(node: OpNode, name: str, wires: Dict[int, str]) -> str:
    operands = [wires[i] for i in node.operands]
    if node.op == "concat":
        return f"  assign {name} = {{{', '.join(operands)}}};"
    if node.op == "extract":
        hi, lo = node.params
        return f"  assign {name} = {operands[0]}[{hi}:{lo}];"
    if node.op == "zero_extend":
        return f"  assign {name} = {{{node.params[0]}'h0, {operands[0]}}};"
    if node.op == "sign_extend":
        extra = node.params[0]
        src = operands[0]
        return (f"  assign {name} = {{{{{extra}{{{src}[{node.width - extra - 1}]}}}}, {src}}};")
    raise ValueError(f"operator {node.op!r} is not allowed in ℒstruct")


def _emit_prim(node: PrimNode, out_wire: str, wires: Dict[int, str], fresh,
               program: Program) -> Tuple[str, str, bool, str]:
    metadata = node.metadata
    if metadata is None:
        raise ValueError("Prim node has no compilation metadata")
    bindings = node.binding_map()

    parameters: List[str] = []
    ports: List[str] = []
    for semantic_name, parent_id in sorted(bindings.items()):
        port = metadata.port_name(semantic_name)
        wire = wires[parent_id]
        if semantic_name in metadata.parameter_ports:
            # Parameters must be literal constants in the instantiation; the
            # synthesis result guarantees the bound node is a constant.
            bound = program[parent_id]
            literal = _verilog_const(bound.value, bound.width) if isinstance(bound, BVNode) else wire
            parameters.append(f"    .{port}({literal})")
        else:
            ports.append(f"    .{port}({wire})")
    if metadata.clock_port:
        ports.insert(0, f"    .{metadata.clock_port}(clk)")

    output_width = metadata.output_width or node.width
    if output_width > node.width:
        full = fresh("po")
        prelude = f"  wire [{output_width - 1}:0] {full};\n"
        ports.append(f"    .{metadata.output_port}({full})")
        epilogue = f"\n  assign {out_wire} = {full}[{node.width - 1}:0];"
    else:
        prelude = ""
        ports.append(f"    .{metadata.output_port}({out_wire})")
        epilogue = ""

    instance_name = fresh(metadata.module_name)
    text = prelude + f"  {metadata.module_name} "
    if parameters:
        text += "#(\n" + ",\n".join(parameters) + "\n  ) "
    text += f"{instance_name} (\n" + ",\n".join(ports) + "\n  );" + epilogue
    kind = _classify_primitive(metadata.module_name)
    return text, kind, bool(metadata.clock_port), instance_name
