"""Interpretation of ℒlr programs (Figure 4 of the paper).

Two interpreters share the same recursion structure:

* :class:`ConcreteInterpreter` evaluates a program on integer input streams
  (``Env = Var ⇀ Time → BV``) — this is the reference semantics used by the
  simulator-based validation and by the test suite.
* :class:`SymbolicInterpreter` evaluates a program to a word-level
  :class:`~repro.bv.ast.BVExpr`, with each input variable at each timestep
  becoming a fresh solver variable and each hole becoming a (time-invariant)
  solver variable.  This is what turns the synthesis query of Section 3.3
  into the quantifier-free obligations handed to CEGIS.

Both interpreters are primitive recursive in ``(t, w(node))`` exactly as in
the paper's Lemma 3.1 — the recursion on registers decreases ``t`` and all
other recursion follows the acyclicity witness.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.bv import (
    bv,
    bvvar,
)
from repro.bv import builder as bvb
from repro.bv.ast import BVExpr
from repro.bv.ops import apply_op, truncate
from repro.core.lang import (
    BVNode,
    HoleNode,
    Node,
    OpNode,
    PrimNode,
    Program,
    RegNode,
    VarNode,
)

__all__ = [
    "Stream",
    "ConcreteInterpreter",
    "SymbolicInterpreter",
    "interpret",
    "symbolic_output",
    "hole_variable_name",
    "input_variable_name",
]

#: A stream is a function from time to an integer value, or a sequence
#: indexed by time (as in "streams are built up from multiple invocations").
Stream = Union[Callable[[int], int], Sequence[int]]


def _stream_value(stream: Stream, t: int) -> int:
    if callable(stream):
        return stream(t)
    return stream[t]


def input_variable_name(name: str, t: int) -> str:
    """The solver variable standing for input ``name`` at timestep ``t``."""
    return f"{name}@{t}"


def hole_variable_name(name: str) -> str:
    """The solver variable standing for hole ``name`` (time-invariant)."""
    return f"hole!{name}"


# --------------------------------------------------------------------------- #
# Concrete interpretation
# --------------------------------------------------------------------------- #
class ConcreteInterpreter:
    """Evaluate a program on concrete integer input streams."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self._cache: Dict[Tuple[int, int, int], int] = {}
        self._next_context = 0

    def run(self, env: Mapping[str, Stream], t: int) -> int:
        """``Interp p e t p.root`` (Figure 4)."""
        return self._interp(self.program, dict(env), t, self.program.root, context=0)

    # ------------------------------------------------------------------ #
    def _interp(self, prog: Program, env: Dict[str, Stream], t: int,
                node_id: int, context: int) -> int:
        key = (context, node_id, t)
        if key in self._cache:
            return self._cache[key]
        node = prog[node_id]
        value = self._interp_node(prog, env, t, node, context)
        self._cache[key] = value
        return value

    def _interp_node(self, prog: Program, env: Dict[str, Stream], t: int,
                     node: Node, context: int) -> int:
        if isinstance(node, BVNode):
            return node.value
        if isinstance(node, VarNode):
            if node.name not in env:
                raise KeyError(f"no stream bound for input {node.name!r}")
            return truncate(_stream_value(env[node.name], t), node.width)
        if isinstance(node, RegNode):
            if t == 0:
                return truncate(node.init, node.width)
            return truncate(self._interp(prog, env, t - 1, node.data, context), node.width)
        if isinstance(node, OpNode):
            return self._interp_op(prog, env, t, node, context)
        if isinstance(node, PrimNode):
            # Build the fresh environment e' = λ x, t'. Interp p e t' (p[bs x]).
            bindings = node.binding_map()

            def make_stream(parent_id: int) -> Callable[[int], int]:
                return lambda t_prime: self._interp(prog, env, t_prime, parent_id, context)

            inner_env = {name: make_stream(parent_id) for name, parent_id in bindings.items()}
            self._next_context += 1
            inner_context = self._next_context
            return self._interp(node.semantics, inner_env, t, node.semantics.root,
                                inner_context)
        if isinstance(node, HoleNode):
            raise ValueError(f"cannot interpret hole {node.name!r}; fill the sketch first")
        raise TypeError(f"unknown node type {type(node).__name__}")

    def _interp_op(self, prog: Program, env: Dict[str, Stream], t: int,
                   node: OpNode, context: int) -> int:
        arg_values = [self._interp(prog, env, t, i, context) for i in node.operands]
        arg_widths = [prog[i].width for i in node.operands]
        if node.op == "zero_extend":
            return arg_values[0]
        if node.op == "sign_extend":
            from repro.bv.ops import to_signed, from_signed
            return from_signed(to_signed(arg_values[0], arg_widths[0]), node.width)
        return apply_op(node.op, node.width, arg_values, arg_widths, node.params)


# --------------------------------------------------------------------------- #
# Symbolic interpretation
# --------------------------------------------------------------------------- #
class SymbolicInterpreter:
    """Evaluate a program to a solver bitvector expression.

    Input variables become per-timestep solver variables; holes become
    time-invariant solver variables named via :func:`hole_variable_name`.
    An optional ``input_exprs`` map lets callers pin inputs to arbitrary
    expressions instead (used when comparing two programs over the *same*
    symbolic inputs).
    """

    def __init__(self, program: Program,
                 input_exprs: Optional[Mapping[Tuple[str, int], BVExpr]] = None) -> None:
        self.program = program
        self.input_exprs = dict(input_exprs) if input_exprs else {}
        self._cache: Dict[Tuple[int, int, int], BVExpr] = {}
        self._next_context = 0

    def run(self, t: int) -> BVExpr:
        """Symbolic value of the program's root at time ``t``."""
        env = {}  # the top-level environment reads primary inputs directly
        return self._interp(self.program, env, t, self.program.root, context=0)

    # ------------------------------------------------------------------ #
    def _input(self, name: str, width: int, t: int) -> BVExpr:
        pinned = self.input_exprs.get((name, t))
        if pinned is not None:
            if pinned.width != width:
                raise ValueError(
                    f"pinned input {name!r}@{t} has width {pinned.width}, expected {width}")
            return pinned
        return bvvar(input_variable_name(name, t), width)

    def _interp(self, prog: Program, env: Dict[str, Callable[[int], BVExpr]], t: int,
                node_id: int, context: int) -> BVExpr:
        key = (context, node_id, t)
        if key in self._cache:
            return self._cache[key]
        node = prog[node_id]
        value = self._interp_node(prog, env, t, node, context)
        if value.width != node.width:
            raise ValueError(
                f"internal width error at node {node_id}: got {value.width}, "
                f"expected {node.width}")
        self._cache[key] = value
        return value

    def _interp_node(self, prog: Program, env: Dict[str, Callable[[int], BVExpr]],
                     t: int, node: Node, context: int) -> BVExpr:
        if isinstance(node, BVNode):
            return bv(node.value, node.width)
        if isinstance(node, VarNode):
            if node.name in env:
                return env[node.name](t)
            return self._input(node.name, node.width, t)
        if isinstance(node, HoleNode):
            return bvvar(hole_variable_name(node.name), node.width)
        if isinstance(node, RegNode):
            if t == 0:
                return bv(node.init, node.width)
            return self._interp(prog, env, t - 1, node.data, context)
        if isinstance(node, OpNode):
            return self._interp_op(prog, env, t, node, context)
        if isinstance(node, PrimNode):
            bindings = node.binding_map()

            def make_stream(parent_id: int) -> Callable[[int], BVExpr]:
                return lambda t_prime: self._interp(prog, env, t_prime, parent_id, context)

            inner_env = {name: make_stream(parent_id) for name, parent_id in bindings.items()}
            self._next_context += 1
            inner_context = self._next_context
            return self._interp(node.semantics, inner_env, t, node.semantics.root,
                                inner_context)
        raise TypeError(f"unknown node type {type(node).__name__}")

    def _interp_op(self, prog: Program, env, t: int, node: OpNode, context: int) -> BVExpr:
        args = [self._interp(prog, env, t, i, context) for i in node.operands]
        op = node.op
        if op == "extract":
            hi, lo = node.params
            return bvb.bvextract(hi, lo, args[0])
        if op == "zero_extend":
            return bvb.zero_extend(args[0], node.width - args[0].width)
        if op == "sign_extend":
            return bvb.sign_extend(args[0], node.width - args[0].width)
        if op == "concat":
            return bvb.bvconcat(*args)
        if op == "ite":
            return bvb.bvite(*args)
        constructors = {
            "add": bvb.bvadd, "sub": bvb.bvsub, "mul": bvb.bvmul, "neg": bvb.bvneg,
            "not": bvb.bvnot, "and": bvb.bvand, "or": bvb.bvor, "xor": bvb.bvxor,
            "xnor": bvb.bvxnor, "shl": bvb.bvshl, "lshr": bvb.bvlshr, "ashr": bvb.bvashr,
            "eq": bvb.bveq, "ne": bvb.bvne,
            "ult": bvb.bvult, "ule": bvb.bvule, "ugt": bvb.bvugt, "uge": bvb.bvuge,
            "slt": bvb.bvslt, "sle": bvb.bvsle, "sgt": bvb.bvsgt, "sge": bvb.bvsge,
            "redand": bvb.bvredand, "redor": bvb.bvredor,
        }
        if op not in constructors:
            raise ValueError(f"operator {op!r} has no symbolic interpretation")
        result = constructors[op](*args)
        # Arithmetic/bitwise results keep their operand width, which matches
        # the node width by construction; predicates are 1-bit.
        return result


# --------------------------------------------------------------------------- #
# Convenience wrappers
# --------------------------------------------------------------------------- #
def interpret(program: Program, env: Mapping[str, Stream], t: int) -> int:
    """Evaluate ``program`` on input streams ``env`` at time ``t``."""
    return ConcreteInterpreter(program).run(env, t)


def symbolic_output(program: Program, t: int,
                    input_exprs: Optional[Mapping[Tuple[str, int], BVExpr]] = None) -> BVExpr:
    """The program's root value at time ``t`` as a solver expression."""
    return SymbolicInterpreter(program, input_exprs).run(t)
