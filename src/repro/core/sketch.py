"""Sketches: ℒsketch programs plus their hole domains (Section 3.1).

A sketch Ψ is formalised as a pair (ψ, h) where ψ is a program with holes
and h maps each hole to the finite set of hole-free structural nodes that
may fill it.  In this implementation — as in the Rosette implementation the
paper describes — h is represented implicitly: every hole ranges over the
constant bitvectors of its width, optionally restricted by solver
constraints contributed by the architecture description.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.bv.ast import BVExpr
from repro.core.lang import (
    BVNode,
    HoleNode,
    Node,
    PrimNode,
    Program,
    ProgramBuilder,
)

__all__ = ["Sketch", "fill_holes", "clone_program"]


@dataclass
class Sketch:
    """A sketch: the ℒsketch program plus hole metadata.

    Attributes:
        program: the ℒsketch program ψ.
        hole_widths: hole name -> width (the implicit domain ``h``: every
            constant of that width, subject to ``hole_constraints``).
        hole_constraints: 1-bit solver expressions over hole variables (see
            :func:`repro.core.interp.hole_variable_name`) contributed by the
            architecture description to rule out invalid configurations.
        description: human-readable provenance (template and architecture).
    """

    program: Program
    hole_widths: Dict[str, int] = field(default_factory=dict)
    hole_constraints: List[BVExpr] = field(default_factory=list)
    description: str = ""

    def __post_init__(self) -> None:
        discovered = {name: hole.width for name, hole in self.program.holes().items()}
        for name, width in discovered.items():
            declared = self.hole_widths.get(name)
            if declared is not None and declared != width:
                raise ValueError(f"hole {name!r} declared width {declared}, found {width}")
            self.hole_widths[name] = width

    @property
    def hole_names(self) -> List[str]:
        return sorted(self.hole_widths)

    def hole_count(self) -> int:
        return len(self.hole_widths)

    def configuration_space_bits(self) -> int:
        """Total number of free hole bits (log2 of the raw search space)."""
        return sum(self.hole_widths.values())


def _replace_holes_in(program: Program, values: Mapping[str, int]) -> Program:
    replacements: Dict[int, Node] = {}
    for node_id, node in program.nodes.items():
        if isinstance(node, HoleNode) and node.name in values:
            replacements[node_id] = BVNode(values[node.name], node.width)
        elif isinstance(node, PrimNode):
            new_semantics = _replace_holes_in(node.semantics, values)
            if new_semantics.nodes != node.semantics.nodes:
                replacements[node_id] = PrimNode(node.bindings, new_semantics,
                                                 node.width, node.metadata)
    if not replacements:
        return program
    return program.with_nodes(replacements)


def fill_holes(sketch: Sketch, hole_values: Mapping[str, int]) -> Program:
    """Ψ[■x1 ↦ n1, ...]: replace every hole with a constant node.

    Raises if a hole is left unfilled — the result must be a complete
    ℒstruct program.
    """
    missing = set(sketch.hole_widths) - set(hole_values)
    if missing:
        raise ValueError(f"holes left unfilled: {sorted(missing)}")
    return _replace_holes_in(sketch.program, hole_values)


def clone_program(program: Program, builder: Optional[ProgramBuilder] = None,
                  rename_holes: Optional[Mapping[str, str]] = None) -> Tuple[Program, Dict[int, int]]:
    """Deep-copy a program with fresh node ids (and optionally renamed holes).

    Sketch generation instantiates the same primitive-interface semantics
    several times within one sketch; cloning keeps the W2 condition (all ids
    unique and distinct) intact.  Returns the clone and the old-id -> new-id
    map for the top-level program.
    """
    builder = builder if builder is not None else ProgramBuilder()
    rename_holes = dict(rename_holes or {})
    id_map: Dict[int, int] = {}

    def clone_into(prog: Program, target: ProgramBuilder) -> Tuple[int, Dict[int, int]]:
        local_map: Dict[int, int] = {}
        # Topologically order nodes so inputs are cloned before users; a
        # simple iterative worklist over dependencies suffices because
        # programs are finite and acyclic through combinational paths, and
        # register back-edges refer to ids we may not have cloned yet -- so
        # we clone in two passes: first allocate ids, then fix references.
        for node_id in prog.nodes:
            local_map[node_id] = next(ProgramBuilder._counter)
        new_nodes: Dict[int, Node] = {}
        for node_id, node in prog.nodes.items():
            new_nodes[local_map[node_id]] = _clone_node(node, local_map)
        new_prog = Program(local_map[prog.root], new_nodes)
        return local_map[prog.root], local_map, new_prog

    def _clone_node(node: Node, local_map: Dict[int, int]) -> Node:
        from repro.core.lang import BVNode, OpNode, RegNode, VarNode

        if isinstance(node, (BVNode, VarNode)):
            return node
        if isinstance(node, HoleNode):
            new_name = rename_holes.get(node.name, node.name)
            return HoleNode(new_name, node.width)
        if isinstance(node, OpNode):
            return OpNode(node.op, tuple(local_map[i] for i in node.operands),
                          node.width, node.params)
        if isinstance(node, RegNode):
            return RegNode(local_map[node.data], node.init, node.width)
        if isinstance(node, PrimNode):
            _, _, new_semantics = clone_into(node.semantics, builder)
            new_bindings = tuple((name, local_map[i]) for name, i in node.bindings)
            return PrimNode(new_bindings, new_semantics, node.width, node.metadata)
        raise TypeError(f"cannot clone node type {type(node).__name__}")

    _, top_map, new_program = clone_into(program, builder)
    id_map.update(top_map)
    return new_program, id_map
