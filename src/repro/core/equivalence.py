"""Program equivalence for ℒlr (Section 3.3 and Section 3.5).

``p ≡_t d`` holds when the two programs have the same free variables and
produce the same root value at time ``t`` under every environment.  The
bounded-model-checking extension of §3.5 conjoins the equality over the
window ``t .. t + c``.

Equivalence is decided by symbolically interpreting both programs over the
*same* per-timestep input variables and handing the miter to
:mod:`repro.smt.equivalence`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.bv import bvvar
from repro.bv.ast import BVExpr
from repro.core.interp import SymbolicInterpreter, input_variable_name
from repro.core.lang import Program
from repro.smt.equivalence import EquivalenceResult, check_equivalence
from repro.smt.solver import SmtSolver

__all__ = ["ProgramEquivalenceResult", "program_equivalent", "output_pairs"]


@dataclass
class ProgramEquivalenceResult:
    """Result of a program equivalence query over one or more timesteps."""

    status: str  # "equivalent", "different", "unknown"
    failing_time: Optional[int] = None
    counterexample: Optional[Dict[str, int]] = None
    time_seconds: float = 0.0

    @property
    def is_equivalent(self) -> bool:
        return self.status == "equivalent"


def output_pairs(candidate: Program, design: Program, start_time: int,
                 cycles: int = 0) -> List[Tuple[int, BVExpr, BVExpr]]:
    """Symbolic outputs of both programs at each checked timestep.

    Returns tuples ``(t, candidate_output, design_output)`` for
    ``t = start_time .. start_time + cycles``, with both programs reading the
    same per-timestep input variables.
    """
    if candidate.free_vars() != design.free_vars():
        raise ValueError(
            f"programs have different free variables: {sorted(candidate.free_vars())} "
            f"vs {sorted(design.free_vars())}")
    pairs: List[Tuple[int, BVExpr, BVExpr]] = []
    candidate_interp = SymbolicInterpreter(candidate)
    design_interp = SymbolicInterpreter(design)
    for t in range(start_time, start_time + cycles + 1):
        pairs.append((t, candidate_interp.run(t), design_interp.run(t)))
    return pairs


def program_equivalent(candidate: Program, design: Program, at_time: int,
                       cycles: int = 0, deadline: Optional[float] = None,
                       solver: Optional[SmtSolver] = None) -> ProgramEquivalenceResult:
    """Decide ``candidate ≡_t design`` (and, with ``cycles`` > 0, ``f*_lr``'s
    window ``t .. t + cycles``)."""
    start = time.monotonic()
    for t, candidate_out, design_out in output_pairs(candidate, design, at_time, cycles):
        result: EquivalenceResult = check_equivalence(candidate_out, design_out,
                                                      deadline=deadline, solver=solver)
        if result.is_equivalent:
            continue
        elapsed = time.monotonic() - start
        if result.is_unknown:
            return ProgramEquivalenceResult("unknown", failing_time=t, time_seconds=elapsed)
        counterexample = result.counterexample.as_dict() if result.counterexample else {}
        return ProgramEquivalenceResult("different", failing_time=t,
                                        counterexample=counterexample, time_seconds=elapsed)
    return ProgramEquivalenceResult("equivalent", time_seconds=time.monotonic() - start)
