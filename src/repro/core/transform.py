"""Program-level simplification of filled sketches.

A sketch may contain wire-selection logic — multiplexers choosing which
design input drives a primitive port, or whether a port is zero- or
sign-extended — whose selectors are holes.  Once synthesis fills the holes
with constants, that logic is constant-foldable: this pass folds it away so
the final program is a plain ℒstruct program (primitives plus wiring), which
is what compilation to structural Verilog requires.

The pass is purely local constant folding plus dead-node elimination; it
performs no optimisation of the design itself, preserving the paper's
"one-to-one syntactic mapping" property for everything that reaches Verilog.
"""

from __future__ import annotations

from typing import Dict

from repro.bv.ops import apply_op, from_signed, to_signed
from repro.core.lang import (
    BVNode,
    HoleNode,
    Node,
    OpNode,
    PrimNode,
    Program,
    RegNode,
    VarNode,
)

__all__ = ["fold_constants", "prune_unreachable", "simplify_structural"]


def _evaluate_op(node: OpNode, operands) -> int:
    values = [op.value for op in operands]
    widths = [op.width for op in operands]
    if node.op == "zero_extend":
        return values[0]
    if node.op == "sign_extend":
        return from_signed(to_signed(values[0], widths[0]), node.width)
    return apply_op(node.op, node.width, values, widths, node.params)


def fold_constants(program: Program) -> Program:
    """Fold operator nodes whose operands are constants; collapse constant
    muxes to the selected branch."""
    # alias maps a node id to the id that should be used in its place.
    alias: Dict[int, int] = {}
    new_nodes: Dict[int, Node] = {}

    def resolve(node_id: int) -> int:
        while node_id in alias:
            node_id = alias[node_id]
        return node_id

    changed = True
    nodes = dict(program.nodes)
    while changed:
        changed = False
        for node_id in list(nodes):
            node = nodes[node_id]
            if not isinstance(node, OpNode):
                continue
            operand_ids = [resolve(i) for i in node.operands]
            operands = [nodes[i] for i in operand_ids]
            if operand_ids != list(node.operands):
                nodes[node_id] = OpNode(node.op, tuple(operand_ids), node.width, node.params)
                node = nodes[node_id]
                changed = True
            if node.op == "ite" and isinstance(operands[0], BVNode):
                chosen = operand_ids[1] if operands[0].value else operand_ids[2]
                alias[node_id] = chosen
                del nodes[node_id]
                changed = True
                continue
            if all(isinstance(op, BVNode) for op in operands) and node.op != "concat":
                value = _evaluate_op(node, operands)
                nodes[node_id] = BVNode(value, node.width)
                changed = True

    # Rewrite remaining references through the alias map.
    def remap(node: Node) -> Node:
        if isinstance(node, OpNode):
            return OpNode(node.op, tuple(resolve(i) for i in node.operands),
                          node.width, node.params)
        if isinstance(node, RegNode):
            return RegNode(resolve(node.data), node.init, node.width)
        if isinstance(node, PrimNode):
            new_bindings = tuple((name, resolve(i)) for name, i in node.bindings)
            return PrimNode(new_bindings, node.semantics, node.width, node.metadata)
        return node

    for node_id, node in nodes.items():
        new_nodes[node_id] = remap(node)
    root = resolve(program.root)
    return Program(root, new_nodes)


def prune_unreachable(program: Program, keep_vars: bool = True) -> Program:
    """Remove nodes not reachable from the root.

    With ``keep_vars`` (the default) input Var nodes survive even when
    unreferenced so the program's free-variable set — its port list — stays
    stable across simplification.
    """
    reachable = set()
    stack = [program.root]
    while stack:
        node_id = stack.pop()
        if node_id in reachable:
            continue
        reachable.add(node_id)
        stack.extend(program[node_id].inputs())
    kept = {node_id: node for node_id, node in program.nodes.items()
            if node_id in reachable or (keep_vars and isinstance(node, VarNode))}
    return Program(program.root, kept)


def simplify_structural(program: Program) -> Program:
    """Constant-fold and prune a filled sketch down to plain ℒstruct."""
    return prune_unreachable(fold_constants(program))
