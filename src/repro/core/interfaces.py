"""Primitive interfaces (Section 4.1).

A primitive interface is an architecture-independent abstraction of a class
of FPGA primitives: ``LUT`` (n-input lookup table), ``CARRY`` (w-wide carry
chain), ``MUX`` (n-input multiplexer) and ``DSP`` (a DSP slice with up to
four data inputs and a clock).  Sketch templates are written against these
interfaces; architecture descriptions say how each interface is implemented
by a concrete vendor primitive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["PrimitiveInterface", "DSP_INTERFACE", "LUT_INTERFACE", "CARRY_INTERFACE",
           "MUX_INTERFACE", "INTERFACES", "interface_by_name"]


@dataclass(frozen=True)
class PrimitiveInterface:
    """An abstract primitive.

    Attributes:
        name: interface name (``DSP``, ``LUT``, ``CARRY``, ``MUX``).
        data_inputs: ordered names of the interface's data input ports.
        output: name of the interface output port.
        parameters: names of size parameters an implementation must supply
            (e.g. ``num_inputs`` for LUTs, port widths for DSPs).
        has_clock: whether implementations may be sequential.
    """

    name: str
    data_inputs: Tuple[str, ...]
    output: str = "O"
    parameters: Tuple[str, ...] = ()
    has_clock: bool = False

    def describe(self) -> str:
        ports = ", ".join(self.data_inputs)
        return f"{self.name}({ports}) -> {self.output}"


#: DSPs on all platforms generally have two to four data inputs and a clock.
DSP_INTERFACE = PrimitiveInterface(
    name="DSP",
    data_inputs=("A", "B", "C", "D"),
    output="O",
    parameters=("out_width", "a_width", "b_width", "c_width", "d_width"),
    has_clock=True,
)

LUT_INTERFACE = PrimitiveInterface(
    name="LUT",
    data_inputs=("I0", "I1", "I2", "I3", "I4", "I5"),
    output="O",
    parameters=("num_inputs",),
)

CARRY_INTERFACE = PrimitiveInterface(
    name="CARRY",
    data_inputs=("S", "DI", "CI"),
    output="O",
    parameters=("width",),
)

MUX_INTERFACE = PrimitiveInterface(
    name="MUX",
    data_inputs=("I0", "I1", "S"),
    output="O",
    parameters=("num_inputs",),
)

INTERFACES: Dict[str, PrimitiveInterface] = {
    interface.name: interface
    for interface in (DSP_INTERFACE, LUT_INTERFACE, CARRY_INTERFACE, MUX_INTERFACE)
}


def interface_by_name(name: str) -> PrimitiveInterface:
    if name not in INTERFACES:
        raise KeyError(f"unknown primitive interface {name!r}; known: {sorted(INTERFACES)}")
    return INTERFACES[name]
