"""Base class shared by the sketch templates."""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import only used for type checking
    from repro.core.sketch_gen import SketchContext

__all__ = ["SketchTemplate"]


class SketchTemplate:
    """An architecture-independent sketch template.

    Subclasses define ``name`` and implement :meth:`build`, which constructs
    the sketch program against primitive interfaces using the context API
    and returns the root node id.
    """

    #: Template name used on the command line (``--template dsp``).
    name: str = ""
    #: Primitive interfaces the template requires from the architecture.
    required_interfaces: tuple = ()

    def build(self, context: "SketchContext") -> int:
        raise NotImplementedError

    def describe(self) -> str:
        interfaces = ", ".join(self.required_interfaces) or "none"
        return f"{self.name}: requires interfaces [{interfaces}]"
