"""The ``comparison`` sketch template: LUT/carry-based arithmetic comparison.

Comparisons (equality, less-than) are implemented the way fabric logic
implements them: a subtraction through the carry chain whose final carry-out
or a LUT-reduction of per-bit equality gives the 1-bit result.  This
reproduction implements the LUT-reduction form, which works on every
architecture that implements the LUT interface (including SOFA).
"""

from __future__ import annotations

from repro.core.templates.base import SketchTemplate
from repro.core.templates.bitwise import lut_inputs_for_bit

__all__ = ["ComparisonTemplate"]


class ComparisonTemplate(SketchTemplate):
    name = "comparison"
    required_interfaces = ("LUT",)

    def build(self, context) -> int:
        lut_impl = context.implementation("LUT")
        num_inputs = int(lut_impl.interface_params.get("num_inputs", 4))
        operand_width = max(context.design.input_widths.values())

        # Stage 1: one LUT per bit position produces a per-bit verdict.
        verdict_bits = []
        for bit in range(operand_width):
            interface_inputs = lut_inputs_for_bit(context, bit, num_inputs)
            verdict_bits.append(context.instantiate("LUT", interface_inputs))

        # Stage 2: reduce the per-bit verdicts with a tree of LUTs whose
        # memories are also holes, ending in a single bit.
        current = verdict_bits
        while len(current) > 1:
            next_level = []
            for start in range(0, len(current), num_inputs):
                group = current[start:start + num_inputs]
                interface_inputs = {}
                for index in range(num_inputs):
                    interface_inputs[f"I{index}"] = (group[index] if index < len(group)
                                                     else context.const(0, 1))
                next_level.append(context.instantiate("LUT", interface_inputs))
            current = next_level

        result = current[0]
        out_width = context.design.output_width
        if out_width == 1:
            return result
        padding = context.const(0, out_width - 1)
        return context.concat([padding, result])
