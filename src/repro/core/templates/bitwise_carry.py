"""The ``bitwise-with-carry`` sketch template: LUTs feeding a carry chain.

Implements designs such as addition and subtraction: one LUT per bit
computes the carry chain's propagate signal, a second set of holes feeds the
generate input, and a CARRY interface instance combines them.  Falls back
to implementing the carry out of LUTs (per §4.2's interface conversions) is
not provided; architectures without a CARRY implementation raise.
"""

from __future__ import annotations

from repro.core.templates.base import SketchTemplate
from repro.core.templates.bitwise import lut_inputs_for_bit

__all__ = ["BitwiseWithCarryTemplate"]


class BitwiseWithCarryTemplate(SketchTemplate):
    name = "bitwise-with-carry"
    required_interfaces = ("LUT", "CARRY")

    def build(self, context) -> int:
        lut_impl = context.implementation("LUT")
        carry_impl = context.implementation("CARRY")
        num_inputs = int(lut_impl.interface_params.get("num_inputs", 4))
        carry_width = int(carry_impl.interface_params.get("width", 8))
        out_width = context.design.output_width
        if out_width > carry_width:
            from repro.core.sketch_gen import SketchGenerationError

            raise SketchGenerationError(
                f"bitwise-with-carry currently supports designs up to the carry "
                f"chain width ({carry_width} bits); got {out_width}")

        # Propagate bits come from per-bit LUTs (their memories are holes).
        propagate_bits = []
        generate_bits = []
        for bit in range(carry_width):
            if bit < out_width:
                interface_inputs = lut_inputs_for_bit(context, bit, num_inputs)
                propagate_bits.append(context.instantiate("LUT", interface_inputs))
                generate_bits.append(context.instantiate("LUT", interface_inputs))
            else:
                propagate_bits.append(context.const(0, 1))
                generate_bits.append(context.const(0, 1))

        s_bus = context.concat(list(reversed(propagate_bits)))
        di_bus = context.concat(list(reversed(generate_bits)))
        carry_in = context.hole("carry_in", 1)
        carry_out = context.instantiate("CARRY", {"S": s_bus, "DI": di_bus, "CI": carry_in})
        return context.extract(carry_out, out_width - 1, 0)
