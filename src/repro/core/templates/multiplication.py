"""The ``multiplication`` sketch template: LUT-based multiplication.

For architectures without a DSP (SOFA) or for small operands, multiplication
can be implemented purely in LUTs: every output bit is a boolean function of
all input bits, so one LUT per output bit suffices as long as the total
number of input bits fits within the architecture's LUT size.  Wider designs
would need the carry-chain array-multiplier decomposition, which is out of
scope for this template (and for the paper's evaluation, which maps
multiplications onto DSPs).
"""

from __future__ import annotations

from repro.core.templates.base import SketchTemplate

__all__ = ["MultiplicationTemplate"]


class MultiplicationTemplate(SketchTemplate):
    name = "multiplication"
    required_interfaces = ("LUT",)

    def build(self, context) -> int:
        lut_impl = context.implementation("LUT")
        num_inputs = int(lut_impl.interface_params.get("num_inputs", 4))
        total_input_bits = sum(context.design.input_widths.values())
        if total_input_bits > num_inputs:
            from repro.core.sketch_gen import SketchGenerationError

            raise SketchGenerationError(
                f"multiplication template needs every input bit to fit in one LUT "
                f"(LUT{num_inputs}, design has {total_input_bits} input bits); use the "
                f"dsp template for wider multiplications")

        # Flatten every bit of every design input into the LUT input list.
        flat_bits = []
        for name in context.input_names():
            source = context.input(name)
            for bit in range(context.design.input_widths[name]):
                flat_bits.append(context.extract(source, bit, bit))
        while len(flat_bits) < num_inputs:
            flat_bits.append(context.const(0, 1))

        out_width = context.design.output_width
        output_bits = []
        for _ in range(out_width):
            interface_inputs = {f"I{index}": flat_bits[index] for index in range(num_inputs)}
            output_bits.append(context.instantiate("LUT", interface_inputs))
        return context.concat(list(reversed(output_bits)))
