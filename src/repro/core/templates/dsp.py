"""The ``dsp`` sketch template: a single DSP interface instance.

This is the template the paper's evaluation exercises: it instantiates one
DSP, lets synthesis decide which design input drives which DSP data port
(via selection holes) and whether each port is zero- or sign-extended, and
leaves every configuration port of the underlying primitive as a hole.  The
output is the low slice of the DSP result at the design's output width.
"""

from __future__ import annotations

from repro.core.templates.base import SketchTemplate

__all__ = ["DspTemplate"]


class DspTemplate(SketchTemplate):
    name = "dsp"
    required_interfaces = ("DSP",)

    def build(self, context) -> int:
        implementation = context.implementation("DSP")
        interface_inputs = {}
        for binding in implementation.ports:
            for interface_input in _interface_inputs(binding.value):
                if interface_input in interface_inputs:
                    continue
                selected = context.select_input(interface_input)
                interface_inputs[interface_input] = context.extend_to(
                    selected, binding.width, interface_input)
        dsp_output = context.instantiate("DSP", interface_inputs)
        out_width = context.design.output_width
        return context.extract(dsp_output, out_width - 1, 0)


def _interface_inputs(value: str) -> list:
    text = str(value).strip()
    if text.startswith("(bv"):
        return []
    if text.startswith("(concat"):
        return text.strip("()").split()[1:]
    return [text]
