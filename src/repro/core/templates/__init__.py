"""Architecture-independent sketch templates (Section 4.3).

Lakeroad ships five templates: ``dsp``, ``bitwise``, ``bitwise-with-carry``,
``comparison`` and ``multiplication``.  Each template is a small object with
a ``build(context)`` method that constructs a sketch against primitive
interfaces through the :class:`repro.core.sketch_gen.SketchContext` API; the
same template therefore works on every architecture whose description
implements the interfaces it uses.
"""

from repro.core.templates.base import SketchTemplate
from repro.core.templates.bitwise import BitwiseTemplate
from repro.core.templates.bitwise_carry import BitwiseWithCarryTemplate
from repro.core.templates.comparison import ComparisonTemplate
from repro.core.templates.dsp import DspTemplate
from repro.core.templates.multiplication import MultiplicationTemplate

__all__ = [
    "SketchTemplate",
    "DspTemplate",
    "BitwiseTemplate",
    "BitwiseWithCarryTemplate",
    "ComparisonTemplate",
    "MultiplicationTemplate",
    "TEMPLATES",
    "template_by_name",
    "available_templates",
]

TEMPLATES = {
    template.name: template
    for template in (
        DspTemplate(),
        BitwiseTemplate(),
        BitwiseWithCarryTemplate(),
        ComparisonTemplate(),
        MultiplicationTemplate(),
    )
}


def available_templates() -> list:
    """Names of the shipped sketch templates."""
    return sorted(TEMPLATES)


def template_by_name(name: str) -> SketchTemplate:
    if name not in TEMPLATES:
        raise KeyError(f"unknown sketch template {name!r}; available: {available_templates()}")
    return TEMPLATES[name]
