"""The ``bitwise`` sketch template: one LUT per output bit.

Implements any per-bit (bitwise) function of the design inputs — AND, OR,
XOR, arbitrary boolean mixes — by instantiating one LUT interface instance
per output bit.  Bit ``i`` of every design input feeds the LUT's inputs and
the LUT memory is a hole, so the solver picks the function.
"""

from __future__ import annotations

from repro.core.templates.base import SketchTemplate

__all__ = ["BitwiseTemplate", "lut_inputs_for_bit"]


def lut_inputs_for_bit(context, bit: int, num_inputs: int) -> dict:
    """Interface inputs for one LUT: bit ``bit`` of each design input,
    padded with constant zeros up to ``num_inputs``."""
    interface_inputs = {}
    index = 0
    for name in context.input_names():
        if index >= num_inputs:
            break
        width = context.design.input_widths[name]
        source = context.input(name)
        if bit < width:
            interface_inputs[f"I{index}"] = context.extract(source, bit, bit)
        else:
            interface_inputs[f"I{index}"] = context.const(0, 1)
        index += 1
    while index < num_inputs:
        interface_inputs[f"I{index}"] = context.const(0, 1)
        index += 1
    return interface_inputs


class BitwiseTemplate(SketchTemplate):
    name = "bitwise"
    required_interfaces = ("LUT",)

    def build(self, context) -> int:
        implementation = context.implementation("LUT")
        num_inputs = int(implementation.interface_params.get("num_inputs", 4))
        if len(context.input_names()) > num_inputs:
            raise_inputs = len(context.input_names())
            from repro.core.sketch_gen import SketchGenerationError

            raise SketchGenerationError(
                f"bitwise template needs a LUT with at least {raise_inputs} inputs; "
                f"{context.arch.name} provides LUT{num_inputs}")
        out_width = context.design.output_width
        bits = []
        for bit in range(out_width):
            interface_inputs = lut_inputs_for_bit(context, bit, num_inputs)
            bits.append(context.instantiate("LUT", interface_inputs))
        # concat expects the most-significant part first.
        return context.concat(list(reversed(bits)))
