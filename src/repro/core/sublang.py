"""The ℒbeh, ℒstruct and ℒsketch sublanguages of ℒlr (Section 3.2.1).

* ℒbeh    -- behavioral fragment: no Prim nodes and no holes.  Used for
  writing specifications.
* ℒstruct -- structural fragment: no Reg nodes, no OP nodes and no holes,
  *except* that the semantics program carried by each Prim node must be
  behavioral (it specifies the primitive's meaning to the solver and is not
  emitted to HDL).
* ℒsketch -- ℒstruct plus holes.
"""

from __future__ import annotations

from repro.core.lang import (
    BVNode,
    HoleNode,
    OpNode,
    PrimNode,
    Program,
    RegNode,
    VarNode,
)

__all__ = ["is_behavioral", "is_structural", "is_sketch", "classify"]

#: Wire-level plumbing allowed in structural programs (hooking design inputs
#: up to primitive ports requires concat/extract/extension, which carry no
#: logic and lower to plain wiring in Verilog).
_STRUCTURAL_WIRE_OPS = frozenset({"concat", "extract", "zero_extend", "sign_extend"})


def is_behavioral(program: Program) -> bool:
    """ℒbeh membership: no Prim nodes, no holes (recursively trivial)."""
    return all(not isinstance(node, (PrimNode, HoleNode)) for node in program.nodes.values())


def _structural_nodes_ok(program: Program, allow_holes: bool) -> bool:
    for node in program.nodes.values():
        if isinstance(node, (BVNode, VarNode)):
            continue
        if isinstance(node, HoleNode):
            if not allow_holes:
                return False
            continue
        if isinstance(node, RegNode):
            return False
        if isinstance(node, OpNode):
            if node.op in _STRUCTURAL_WIRE_OPS:
                continue
            # Sketches may additionally contain hole-controlled selection
            # logic (the implicit ``h`` map of §3.1: each such mux chooses
            # which structural node fills the hole).  That logic must fold
            # away once holes are filled, so it is allowed only when holes
            # are allowed.
            if allow_holes and node.op in ("ite", "eq"):
                continue
            return False
        if isinstance(node, PrimNode):
            # The Prim's semantics must come from ℒbeh.
            if not is_behavioral(node.semantics):
                return False
            continue
        return False
    return True


def is_structural(program: Program) -> bool:
    """ℒstruct membership (hole-free)."""
    return _structural_nodes_ok(program, allow_holes=False)


def is_sketch(program: Program) -> bool:
    """ℒsketch membership (ℒstruct plus holes)."""
    return _structural_nodes_ok(program, allow_holes=True)


def classify(program: Program) -> str:
    """Return the most specific fragment name: 'behavioral', 'structural',
    'sketch', or 'lr' for the full language."""
    if is_behavioral(program):
        return "behavioral"
    if is_structural(program):
        return "structural"
    if is_sketch(program):
        return "sketch"
    return "lr"
