"""The Lakeroad synthesis functions ``f_lr`` and ``f*_lr`` (Sections 3.1, 3.5).

``f_lr(Ψ, d, t)`` asks for hole values making the sketch Ψ equivalent to the
behavioral design ``d`` at clock cycle ``t``; ``f*_lr(Ψ, d, t, c)`` extends
the guarantee to the window ``t .. t + c`` (bounded model checking,
implemented — exactly as in §4.5 — by making ``c + 1`` equality assertions).

Both are partial functions: the result distinguishes

* ``sat``     -- synthesis succeeded; the filled, well-formed ℒstruct
  program is returned together with the solved hole values,
* ``unsat``   -- the sketch cannot implement the design (no completion
  exists), which the evaluation reports as the UNSAT outcome,
* ``unknown`` -- the per-query time budget expired (the paper's timeout).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.equivalence import output_pairs
from repro.core.interp import hole_variable_name
from repro.core.lang import Program
from repro.core.sketch import Sketch, fill_holes
from repro.core.sublang import is_behavioral, is_structural, is_sketch
from repro.core.transform import simplify_structural
from repro.core.wellformed import check_well_formed
from repro.engine.budget import Budget
from repro.smt.cegis import CegisResult, Obligation, synthesize
from repro.smt.solver import SmtSolver

__all__ = ["SynthesisOutcome", "f_lr", "f_lr_star"]


@dataclass
class SynthesisOutcome:
    """The result of a call to ``f_lr`` / ``f*_lr``."""

    status: str  # "sat", "unsat", "unknown"
    program: Optional[Program] = None
    hole_values: Dict[str, int] = field(default_factory=dict)
    cegis_iterations: int = 0
    time_seconds: float = 0.0
    candidate_strategy: str = "none"
    verify_strategy: str = "none"
    #: Whether the candidate step ran on one persistent solver session.
    incremental: bool = False
    #: Why a run degraded to ``unknown`` (empty for clean outcomes).
    diagnostic: str = ""
    #: Whether verification ran on one persistent assumption-gated miter
    #: session (core-driven candidate pruning enabled).
    incremental_verify: bool = False
    #: Incremental-session statistics (all zero in from-scratch mode).
    solver_restarts: int = 0
    candidate_conflicts: int = 0
    candidate_time_seconds: float = 0.0
    verify_time_seconds: float = 0.0
    clauses_retained: int = 0
    verify_clauses_retained: int = 0
    cores_pruned: int = 0
    #: Clause-DB reduction telemetry from the persistent sessions: learned
    #: clauses deleted, and the learned-database high-water mark.
    clauses_deleted: int = 0
    db_size_peak: int = 0
    #: Propagation telemetry from the run's warm solver sessions: trail
    #: literals propagated, watcher entries examined, and wall seconds
    #: spent inside ``CDCLSolver.solve``.
    propagations: int = 0
    watcher_visits: int = 0
    solver_solve_seconds: float = 0.0
    #: Bit-parallel probing telemetry (see :mod:`repro.bv.bitsim`): packed
    #: random-probe assignments evaluated, probe batches that hit, and
    #: verification counterexamples the packed pre-filter found without
    #: blasting.
    probe_lanes_evaluated: int = 0
    probe_hits: int = 0
    prefilter_cex_found: int = 0

    @property
    def succeeded(self) -> bool:
        return self.status == "sat"

    @property
    def timed_out(self) -> bool:
        return self.status == "unknown"


def _build_obligations(sketch: Sketch, design: Program, at_time: int,
                       cycles: int) -> List[Obligation]:
    pairs = output_pairs(sketch.program, design, at_time, cycles)
    return [Obligation(spec=design_out, sketch=sketch_out)
            for _, sketch_out, design_out in pairs]


def f_lr_star(sketch: Sketch, design: Program, at_time: int, cycles: int = 0,
              timeout_seconds: Optional[float] = None,
              solver: Optional[SmtSolver] = None,
              check_inputs: bool = True,
              budget: Optional[Budget] = None,
              incremental: bool = False,
              incremental_verify: bool = False,
              random_probes: int = 32) -> SynthesisOutcome:
    """Synthesize a ``t``-cycle implementation of ``design`` guided by ``sketch``,
    equivalent over the window ``at_time .. at_time + cycles``.

    The time budget can be given either as a started :class:`Budget` (the
    mapping session's, so sketch-generation time already counts against it)
    or as a plain ``timeout_seconds`` convenience.  ``incremental`` selects
    the persistent-solver CEGIS candidate mode (clause reuse across
    iterations); ``incremental_verify`` selects the persistent
    assumption-gated miter session for the verification step (the sketch
    cone is blasted once and verification-failure cores prune the
    candidate space).  The outcome's statuses and hole values are the same
    under every mode combination.
    """
    start = time.monotonic()
    if budget is None:
        budget = Budget(timeout_seconds=timeout_seconds)
    budget.start()

    if check_inputs:
        if not is_behavioral(design):
            raise ValueError("the design must be a behavioral (ℒbeh) program")
        if not is_sketch(sketch.program):
            raise ValueError("the sketch program must be in ℒsketch")
        check_well_formed(design)
        check_well_formed(sketch.program)
    if cycles < 0:
        raise ValueError("cycles must be non-negative")

    obligations = _build_obligations(sketch, design, at_time, cycles)
    hole_widths = {hole_variable_name(name): width
                   for name, width in sketch.hole_widths.items()}

    cegis: CegisResult = synthesize(
        obligations,
        hole_widths=hole_widths,
        hole_constraints=list(sketch.hole_constraints),
        budget=budget,
        solver=solver,
        incremental=incremental,
        incremental_verify=incremental_verify,
        random_probes=random_probes,
    )

    outcome = SynthesisOutcome(
        status=cegis.status,
        cegis_iterations=cegis.iterations,
        time_seconds=time.monotonic() - start,
        candidate_strategy=cegis.candidate_strategy,
        verify_strategy=cegis.verify_strategy,
        incremental=cegis.incremental,
        incremental_verify=cegis.incremental_verify,
        diagnostic=cegis.diagnostic,
        solver_restarts=cegis.solver_restarts,
        candidate_conflicts=cegis.candidate_conflicts,
        candidate_time_seconds=cegis.candidate_time_seconds,
        verify_time_seconds=cegis.verify_time_seconds,
        clauses_retained=cegis.clauses_retained,
        verify_clauses_retained=cegis.verify_clauses_retained,
        cores_pruned=cegis.cores_pruned,
        clauses_deleted=cegis.clauses_deleted,
        db_size_peak=cegis.db_size_peak,
        propagations=cegis.propagations,
        watcher_visits=cegis.watcher_visits,
        solver_solve_seconds=cegis.solver_solve_seconds,
        probe_lanes_evaluated=cegis.probe_lanes_evaluated,
        probe_hits=cegis.probe_hits,
        prefilter_cex_found=cegis.prefilter_cex_found,
    )
    if not cegis.succeeded:
        return outcome

    hole_values = {name: cegis.hole_values[hole_variable_name(name)]
                   for name in sketch.hole_widths}
    program = simplify_structural(fill_holes(sketch, hole_values))
    # The returned program must be a well-formed completion of the sketch
    # (this is the correctness statement of §3.4).
    check_well_formed(program)
    if not is_structural(program):
        raise RuntimeError("synthesis produced a non-structural program (internal error)")
    outcome.program = program
    outcome.hole_values = hole_values
    return outcome


def f_lr(sketch: Sketch, design: Program, at_time: int,
         timeout_seconds: Optional[float] = None,
         solver: Optional[SmtSolver] = None,
         budget: Optional[Budget] = None) -> SynthesisOutcome:
    """``f_lr(Ψ, d, t)``: single-timestep synthesis (Section 3.1)."""
    return f_lr_star(sketch, design, at_time, cycles=0,
                     timeout_seconds=timeout_seconds, solver=solver, budget=budget)
