"""ℒlr: the Lakeroad intermediate language (Figure 3 of the paper).

A program is a root node id plus a graph of nodes, each referred to by id.
Node kinds:

* ``BV b``        -- a constant bitvector,
* ``Var x``       -- an input variable,
* ``OP op ids*``  -- a combinational operator over other nodes,
* ``Reg id binit``-- a register (stateful, positive-edge),
* ``Prim bs p``   -- an architecture-specific primitive whose semantics are
  given by the sub-program ``p``; ``bs`` binds ``p``'s free variables to
  node ids of the enclosing program,
* ``Hole x``      -- a syntactic hole (sketches only).

Prim nodes additionally carry metadata (the vendor module name and port /
parameter mapping) used when compiling to structural Verilog; per the paper
the metadata plays no role in the semantics.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Node",
    "BVNode",
    "VarNode",
    "OpNode",
    "RegNode",
    "PrimNode",
    "HoleNode",
    "PrimMetadata",
    "Program",
    "ProgramBuilder",
    "WIRE_OPS",
    "BV_OPS",
]

#: Wire-level operators (OP_w in Figure 3): pure plumbing.
WIRE_OPS = frozenset({"concat", "extract", "zero_extend", "sign_extend"})

#: Bitvector operators (OP_bv in Figure 3).
BV_OPS = frozenset({
    "add", "sub", "mul", "neg", "not", "and", "or", "xor", "xnor",
    "shl", "lshr", "ashr", "ite", "eq", "ne",
    "ult", "ule", "ugt", "uge", "slt", "sle", "sgt", "sge",
    "redand", "redor",
})


class Node:
    """Base class for ℒlr nodes."""

    width: int

    def inputs(self) -> Tuple[int, ...]:
        """The node ids this node reads (the ``inputs`` function of §3.2.1)."""
        return ()


@dataclass(frozen=True)
class BVNode(Node):
    """``BV b`` -- a constant bitvector."""

    value: int
    width: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", self.value & ((1 << self.width) - 1))


@dataclass(frozen=True)
class VarNode(Node):
    """``Var x`` -- an input variable (a free variable of the program)."""

    name: str
    width: int


@dataclass(frozen=True)
class OpNode(Node):
    """``OP op ids*`` -- a combinational operator."""

    op: str
    operands: Tuple[int, ...]
    width: int
    #: extra integer parameters, e.g. ``(hi, lo)`` for extract or the number
    #: of bits for the extension operators.
    params: Tuple[int, ...] = ()

    def inputs(self) -> Tuple[int, ...]:
        return self.operands


@dataclass(frozen=True)
class RegNode(Node):
    """``Reg id binit`` -- a positive-edge register with an initial value."""

    data: int
    init: int
    width: int

    def inputs(self) -> Tuple[int, ...]:
        return (self.data,)


@dataclass(frozen=True)
class PrimMetadata:
    """Compilation metadata carried by a Prim node (not semantically relevant).

    Attributes:
        module_name: the vendor module to instantiate (e.g. ``DSP48E2``).
        architecture: the architecture the primitive belongs to.
        port_map: semantic input variable name -> vendor port name.
        parameter_ports: semantic input variable names that correspond to
            vendor *parameters* (emitted in the ``#( ... )`` list).
        output_port: vendor output port name.
        output_width: declared width of the vendor output port (the
            semantics program's root may be narrower; emission pads).
        clock_port: name of the vendor clock port, or "" for a purely
            combinational primitive; emission wires it to the top-level
            ``clk`` input.
    """

    module_name: str
    architecture: str = ""
    port_map: Tuple[Tuple[str, str], ...] = ()
    parameter_ports: Tuple[str, ...] = ()
    output_port: str = "O"
    output_width: int = 0
    clock_port: str = ""

    def port_name(self, semantic_name: str) -> str:
        for sem, port in self.port_map:
            if sem == semantic_name:
                return port
        return semantic_name


@dataclass(frozen=True)
class PrimNode(Node):
    """``Prim bs p`` -- an architecture-specific primitive.

    ``bindings`` maps the free variable names of the semantics program
    ``semantics`` to node ids of the enclosing program.
    """

    bindings: Tuple[Tuple[str, int], ...]
    semantics: "Program"
    width: int
    metadata: Optional[PrimMetadata] = None

    def binding_map(self) -> Dict[str, int]:
        return dict(self.bindings)

    def inputs(self) -> Tuple[int, ...]:
        return tuple(node_id for _, node_id in self.bindings)


@dataclass(frozen=True)
class HoleNode(Node):
    """``■x`` -- a hole to be filled by synthesis (sketches only)."""

    name: str
    width: int


class Program:
    """An ℒlr program: a root id plus an id → node graph."""

    def __init__(self, root: int, nodes: Mapping[int, Node]) -> None:
        self.root = root
        self.nodes: Dict[int, Node] = dict(nodes)

    # -- notation from §3.2.1 ------------------------------------------------ #
    @property
    def ids(self) -> FrozenSet[int]:
        """``p.ids`` -- the ids of this program's own nodes."""
        return frozenset(self.nodes.keys())

    def __getitem__(self, node_id: int) -> Node:
        """``p[id]`` -- the node with the given id."""
        return self.nodes[node_id]

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.nodes

    def all_ids(self) -> FrozenSet[int]:
        """``p.all_ids`` -- ids of this program and (recursively) its subprograms."""
        collected = set(self.nodes.keys())
        for node in self.nodes.values():
            if isinstance(node, PrimNode):
                collected |= node.semantics.all_ids()
        return frozenset(collected)

    def free_vars(self) -> FrozenSet[str]:
        """``p.fv`` -- names of this program's Var nodes (not of subprograms)."""
        return frozenset(node.name for node in self.nodes.values()
                         if isinstance(node, VarNode))

    def var_widths(self) -> Dict[str, int]:
        """Free variable name -> width."""
        widths: Dict[str, int] = {}
        for node in self.nodes.values():
            if isinstance(node, VarNode):
                widths[node.name] = node.width
        return widths

    def holes(self) -> Dict[str, HoleNode]:
        """All hole nodes in this program and its subprograms, by name."""
        found: Dict[str, HoleNode] = {}
        for node in self.nodes.values():
            if isinstance(node, HoleNode):
                found[node.name] = node
            elif isinstance(node, PrimNode):
                found.update(node.semantics.holes())
        return found

    def subprograms(self) -> List["Program"]:
        return [node.semantics for node in self.nodes.values()
                if isinstance(node, PrimNode)]

    def prim_nodes(self) -> List[PrimNode]:
        return [node for node in self.nodes.values() if isinstance(node, PrimNode)]

    def node_count(self) -> int:
        """Total node count including subprograms (a proxy for program size)."""
        total = len(self.nodes)
        for sub in self.subprograms():
            total += sub.node_count()
        return total

    # -- functional update --------------------------------------------------- #
    def with_nodes(self, replacements: Mapping[int, Node]) -> "Program":
        """A copy of this program with some nodes replaced."""
        new_nodes = dict(self.nodes)
        new_nodes.update(replacements)
        return Program(self.root, new_nodes)

    def __repr__(self) -> str:
        return f"Program(root={self.root}, nodes={len(self.nodes)})"


class ProgramBuilder:
    """Convenience builder that allocates globally unique node ids.

    Unique ids across all programs built by the same builder satisfy the
    paper's W2 condition (ids of a program and its subprograms are disjoint)
    by construction.
    """

    _counter = itertools.count(1)

    def __init__(self) -> None:
        self.nodes: Dict[int, Node] = {}

    # -- node constructors ---------------------------------------------------- #
    def _add(self, node: Node) -> int:
        node_id = next(ProgramBuilder._counter)
        self.nodes[node_id] = node
        return node_id

    def const(self, value: int, width: int) -> int:
        return self._add(BVNode(value, width))

    def var(self, name: str, width: int) -> int:
        return self._add(VarNode(name, width))

    def op(self, op: str, operands: Sequence[int], width: int,
           params: Sequence[int] = ()) -> int:
        if op not in BV_OPS and op not in WIRE_OPS:
            raise ValueError(f"unknown ℒlr operator {op!r}")
        return self._add(OpNode(op, tuple(operands), width, tuple(params)))

    def reg(self, data: int, init: int, width: int) -> int:
        return self._add(RegNode(data, init, width))

    def prim(self, bindings: Mapping[str, int], semantics: Program, width: int,
             metadata: Optional[PrimMetadata] = None) -> int:
        return self._add(PrimNode(tuple(sorted(bindings.items())), semantics,
                                  width, metadata))

    def hole(self, name: str, width: int) -> int:
        return self._add(HoleNode(name, width))

    # -- finishing ------------------------------------------------------------ #
    def build(self, root: int) -> Program:
        if root not in self.nodes:
            raise ValueError(f"root id {root} is not a node of this builder")
        return Program(root, dict(self.nodes))
