"""Well-formedness of ℒlr programs (conditions W1–W6 of Section 3.2.1).

``check_well_formed`` either returns a witness of acyclicity (the strictly
monotone function ``w`` of Property 1) or raises :class:`WellFormednessError`
describing the violated condition.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.core.lang import HoleNode, Node, OpNode, PrimNode, Program, RegNode, VarNode

__all__ = ["WellFormednessError", "check_well_formed", "is_well_formed", "acyclicity_witness"]


class WellFormednessError(ValueError):
    """Raised when a program violates one of the W1–W6 conditions."""

    def __init__(self, condition: str, message: str) -> None:
        super().__init__(f"{condition}: {message}")
        self.condition = condition


def _check_unique_ids(program: Program, seen: Set[int]) -> None:
    """W2: all ids of the program and its subprograms are unique and distinct."""
    overlap = program.ids & seen
    if overlap:
        raise WellFormednessError("W2", f"duplicated node ids: {sorted(overlap)}")
    seen |= program.ids
    for sub in program.subprograms():
        _check_unique_ids(sub, seen)


def _check_structure(program: Program) -> None:
    """W1, W3, W4 (recursively), W5."""
    if program.root not in program.ids:
        raise WellFormednessError("W1", f"root {program.root} is not a node of the program")
    for node_id, node in program.nodes.items():
        for input_id in node.inputs():
            if input_id not in program.ids:
                raise WellFormednessError(
                    "W3", f"node {node_id} reads id {input_id} which is not in the program")
        if isinstance(node, PrimNode):
            bound = set(node.binding_map().keys())
            free = set(node.semantics.free_vars())
            if bound != free:
                raise WellFormednessError(
                    "W5",
                    f"Prim node {node_id} binds {sorted(bound)} but its semantics "
                    f"has free variables {sorted(free)}")
            _check_structure(node.semantics)  # W4


def acyclicity_witness(program: Program) -> Dict[int, int]:
    """Compute the monotone witness ``w`` of Property 1, or raise (W6).

    The witness assigns 0 to registers and to each other node a value
    strictly greater than its combinational inputs; Prim nodes sit strictly
    above their semantics' root, and a subprogram's Var nodes sit strictly
    above the parent node they are bound to.
    """
    weights: Dict[int, int] = {}
    in_progress: Set[int] = set()

    # Map: node id -> (program containing it, binding context for Var lookups)
    # The binding context maps a subprogram's Var name to the parent node id.
    containers: Dict[int, Program] = {}
    var_bindings: Dict[int, Dict[str, int]] = {}

    def register(prog: Program, bindings: Dict[str, int]) -> None:
        for node_id, node in prog.nodes.items():
            containers[node_id] = prog
            var_bindings[node_id] = bindings
            if isinstance(node, PrimNode):
                register(node.semantics, {name: parent_id
                                          for name, parent_id in node.binding_map().items()})

    register(program, {})

    def weight(node_id: int) -> int:
        if node_id in weights:
            return weights[node_id]
        if node_id in in_progress:
            raise WellFormednessError("W6", f"combinational loop through node {node_id}")
        in_progress.add(node_id)
        prog = containers[node_id]
        node = prog[node_id]
        if isinstance(node, RegNode):
            value = 0
        elif isinstance(node, PrimNode):
            value = weight(node.semantics.root) + 1
        elif isinstance(node, VarNode):
            bindings = var_bindings[node_id]
            if node.name in bindings:
                value = weight(bindings[node.name]) + 1
            else:
                value = 0
        elif isinstance(node, (OpNode,)):
            value = max((weight(i) for i in node.inputs()), default=0) + 1
        else:  # BVNode, HoleNode
            value = 0
        in_progress.discard(node_id)
        weights[node_id] = value
        return value

    for node_id in containers:
        weight(node_id)
    return weights


def check_well_formed(program: Program) -> Dict[int, int]:
    """Check W1–W6; returns the acyclicity witness on success."""
    _check_unique_ids(program, set())
    _check_structure(program)
    return acyclicity_witness(program)


def is_well_formed(program: Program) -> bool:
    """Boolean convenience wrapper around :func:`check_well_formed`."""
    try:
        check_well_formed(program)
        return True
    except WellFormednessError:
        return False
