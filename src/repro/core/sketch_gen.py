"""Sketch generation: template × architecture description → sketch (§4.3).

A sketch template is architecture-independent: it builds a sketch program
against *primitive interfaces* (DSP, LUT, CARRY, MUX) through the
:class:`SketchContext` API.  This module specialises interface instances
into concrete vendor primitives using the architecture description — wiring
the interface's data inputs to vendor ports, turning ``internal_data``
entries into holes, and attaching the vendor model's extracted semantics to
the resulting Prim node.

If the architecture does not implement a requested interface directly, the
context attempts the interface conversions §4.2 describes (a mux from LUTs,
a smaller LUT from a larger LUT) and raises otherwise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.arch.loader import ArchDescription, InterfaceImplementation
from repro.core.interfaces import interface_by_name
from repro.core.lang import PrimMetadata, Program, ProgramBuilder
from repro.core.sketch import Sketch, clone_program
from repro.vendor.library import PrimitiveLibrary

__all__ = ["SketchContext", "SketchGenerationError", "generate_sketch"]


class SketchGenerationError(ValueError):
    """Raised when a template cannot be specialised for an architecture."""


@dataclass
class DesignInterface:
    """What the sketch must look like from the outside: the design's inputs
    and output width (its free variables and root width)."""

    input_widths: Dict[str, int]
    output_width: int

    def ordered_inputs(self) -> List[Tuple[str, int]]:
        return sorted(self.input_widths.items())


class SketchContext:
    """Builder facade handed to sketch templates."""

    def __init__(self, arch: ArchDescription, design: DesignInterface,
                 library: Optional[PrimitiveLibrary] = None) -> None:
        self.arch = arch
        self.design = design
        self.library = library if library is not None else PrimitiveLibrary()
        self.builder = ProgramBuilder()
        self._hole_counter = 0
        self._input_ids: Dict[str, int] = {}
        for name, width in design.ordered_inputs():
            self._input_ids[name] = self.builder.var(name, width)

    # ------------------------------------------------------------------ #
    # Basic node construction
    # ------------------------------------------------------------------ #
    def input(self, name: str) -> int:
        return self._input_ids[name]

    def input_names(self) -> List[str]:
        return [name for name, _ in self.design.ordered_inputs()]

    def const(self, value: int, width: int) -> int:
        return self.builder.const(value, width)

    def op(self, op: str, operands: Sequence[int], width: int,
           params: Sequence[int] = ()) -> int:
        return self.builder.op(op, operands, width, params)

    def extract(self, node: int, hi: int, lo: int) -> int:
        return self.builder.op("extract", [node], hi - lo + 1, params=(hi, lo))

    def concat(self, nodes: Sequence[int]) -> int:
        width = sum(self.width_of(n) for n in nodes)
        return self.builder.op("concat", list(nodes), width)

    def width_of(self, node: int) -> int:
        return self.builder.nodes[node].width

    def hole(self, prefix: str, width: int) -> int:
        self._hole_counter += 1
        return self.builder.hole(f"{prefix}_{self._hole_counter}", width)

    # ------------------------------------------------------------------ #
    # Architecture-independent helpers used by templates
    # ------------------------------------------------------------------ #
    def select_input(self, port_label: str) -> int:
        """A hole-controlled selection among all design inputs.

        The synthesis engine decides which design input feeds which primitive
        data port, so the template does not need to know (for example) that
        the DSP48E2's pre-adder operates on its D and A ports.
        """
        inputs = self.design.ordered_inputs()
        width = max(width for _, width in inputs)
        candidates: List[int] = []
        for name, input_width in inputs:
            node = self.input(name)
            if input_width < width:
                node = self.op("zero_extend", [node], width, params=(width - input_width,))
            candidates.append(node)
        # Also allow a constant zero so unused ports can be parked.
        candidates.append(self.const(0, width))
        select_bits = max(1, math.ceil(math.log2(len(candidates))))
        selector = self.hole(f"{port_label}_sel", select_bits)
        result = candidates[-1]
        for index in range(len(candidates) - 2, -1, -1):
            condition = self.op("eq", [selector, self.const(index, select_bits)], 1)
            result = self.op("ite", [condition, candidates[index], result], width)
        return result

    def extend_to(self, node: int, target_width: int, port_label: str) -> int:
        """Extend a node to a primitive port width; a 1-bit hole chooses
        between zero- and sign-extension (covering unsigned and signed
        designs with one sketch)."""
        width = self.width_of(node)
        if width == target_width:
            return node
        if width > target_width:
            return self.extract(node, target_width - 1, 0)
        extra = target_width - width
        zero_ext = self.op("zero_extend", [node], target_width, params=(extra,))
        sign_ext = self.op("sign_extend", [node], target_width, params=(extra,))
        choose_signed = self.hole(f"{port_label}_signext", 1)
        return self.op("ite", [choose_signed, sign_ext, zero_ext], target_width)

    # ------------------------------------------------------------------ #
    # Interface instantiation
    # ------------------------------------------------------------------ #
    def implementation(self, interface_name: str) -> InterfaceImplementation:
        impl = self.arch.implementation(interface_name)
        if impl is None:
            raise SketchGenerationError(
                f"architecture {self.arch.name!r} does not implement the "
                f"{interface_name} primitive interface")
        return impl

    def instantiate(self, interface_name: str,
                    interface_inputs: Mapping[str, int]) -> int:
        """Instantiate a primitive interface; returns the output node id.

        ``interface_inputs`` maps the interface's data-input names to node
        ids.  Internal data (configuration) becomes fresh holes.
        """
        interface_by_name(interface_name)
        impl = self.implementation(interface_name)
        model = self.library.load(impl.module)
        semantics, _ = clone_program(model.semantics)
        semantic_inputs = set(semantics.var_widths())

        bindings: Dict[str, int] = {}
        parameter_ports: List[str] = []
        port_map: List[Tuple[str, str]] = []

        # Vendor data ports driven by interface inputs / constants / concats.
        for binding in impl.ports:
            node = self._resolve_port_value(binding.value, binding.width,
                                            interface_inputs, binding.port)
            if binding.port in semantic_inputs:
                bindings[binding.port] = node
                port_map.append((binding.port, binding.port))

        # Internal data entries become holes (and vendor parameters).
        for name, width in impl.internal_data.items():
            if name not in semantic_inputs:
                continue
            hole = self.hole(f"{impl.module}_{name}", width)
            bindings[name] = hole
            parameter_ports.append(name)
            port_map.append((name, name))

        missing = semantic_inputs - set(bindings)
        for name in sorted(missing):
            width = semantics.var_widths()[name]
            bindings[name] = self.const(0, width)
            port_map.append((name, name))

        metadata = PrimMetadata(
            module_name=impl.module,
            architecture=self.arch.name,
            port_map=tuple(port_map),
            parameter_ports=tuple(parameter_ports),
            output_port=impl.output_port,
            output_width=semantics[semantics.root].width,
            clock_port=impl.clock,
        )
        output_width = semantics[semantics.root].width
        return self.builder.prim(bindings, semantics, output_width, metadata)

    def _resolve_port_value(self, value: str, width: int,
                            interface_inputs: Mapping[str, int], port: str) -> int:
        text = str(value).strip()
        if text.startswith("(bv"):
            _, raw_value, raw_width = text.strip("()").split()
            return self.const(int(raw_value), int(raw_width))
        if text.startswith("(concat"):
            names = text.strip("()").split()[1:]
            parts = []
            for name in names:
                if name not in interface_inputs:
                    raise SketchGenerationError(
                        f"interface input {name!r} (needed by port {port}) was not provided")
                parts.append(interface_inputs[name])
            return self.concat(parts)
        if text not in interface_inputs:
            raise SketchGenerationError(
                f"interface input {text!r} (needed by port {port}) was not provided")
        node = interface_inputs[text]
        node_width = self.width_of(node)
        if node_width < width:
            node = self.op("zero_extend", [node], width, params=(width - node_width,))
        elif node_width > width:
            node = self.extract(node, width - 1, 0)
        return node

    # ------------------------------------------------------------------ #
    def finish(self, root: int, description: str) -> Sketch:
        program = self.builder.build(root)
        return Sketch(program, description=description)


def generate_sketch(template_name: str, arch: ArchDescription,
                    design: DesignInterface,
                    library: Optional[PrimitiveLibrary] = None) -> Sketch:
    """Specialise a named sketch template for an architecture and design."""
    from repro.core.templates import template_by_name

    template = template_by_name(template_name)
    context = SketchContext(arch, design, library)
    root = template.build(context)
    return context.finish(root, description=f"{template_name}@{arch.name}")
