"""The Lakeroad core: ℒlr, sketches, templates and the synthesis engine.

Layout (mirroring Sections 3 and 4 of the paper):

* :mod:`repro.core.lang`        -- ℒlr syntax (Figure 3).
* :mod:`repro.core.wellformed`  -- the W1–W6 well-formedness conditions.
* :mod:`repro.core.interp`      -- the stream interpreter (Figure 4) plus a
  symbolic variant that produces solver bitvector expressions.
* :mod:`repro.core.sublang`     -- ℒbeh / ℒstruct / ℒsketch membership.
* :mod:`repro.core.equivalence` -- program equivalence ≡_t and its bounded
  multi-cycle extension.
* :mod:`repro.core.interfaces`  -- primitive interfaces (LUT, carry, mux, DSP).
* :mod:`repro.core.templates`   -- the architecture-independent sketch
  templates (dsp, bitwise, bitwise-with-carry, comparison, multiplication).
* :mod:`repro.core.sketch_gen`  -- template × architecture description →
  sketch, including interface lowering.
* :mod:`repro.core.synthesis`   -- ``f_lr`` and ``f*_lr`` (Section 3.1/3.5).
* :mod:`repro.core.lower`       -- ℒstruct → structural Verilog.
"""

from repro.core.lang import Node, Program, ProgramBuilder
from repro.core.synthesis import SynthesisOutcome, f_lr, f_lr_star

__all__ = [
    "Node",
    "Program",
    "ProgramBuilder",
    "SynthesisOutcome",
    "f_lr",
    "f_lr_star",
]
