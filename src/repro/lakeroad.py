"""The user-facing Lakeroad API (the ``lakeroad`` command of Section 2.2).

The typical call mirrors the paper's command line::

    $ lakeroad --template dsp --arch-desc xilinx-ultrascale-plus add_mul_and.v

which here is::

    result = map_verilog(open("add_mul_and.v").read(), template="dsp",
                         arch="xilinx-ultrascale-plus")

The three-step process of §2.2 is visible in the implementation: sketch
generation (template × architecture description), program synthesis
(``f*_lr`` backed by CEGIS), and compilation to structural Verilog.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.arch import ArchDescription, load_architecture
from repro.core.interp import interpret
from repro.core.lang import Program
from repro.core.lower import LoweredDesign, ResourceCount, lower_to_verilog
from repro.core.sketch_gen import DesignInterface, SketchGenerationError, generate_sketch
from repro.core.synthesis import SynthesisOutcome, f_lr_star
from repro.hdl.behavioral import BehavioralDesign, verilog_to_behavioral
from repro.vendor.library import PrimitiveLibrary

__all__ = ["LakeroadResult", "map_design", "map_verilog"]

#: Per-architecture synthesis timeouts used by the paper's evaluation
#: (seconds): Xilinx 120, Lattice 40, Intel 20.
DEFAULT_TIMEOUTS = {
    "xilinx-ultrascale-plus": 120.0,
    "lattice-ecp5": 40.0,
    "intel-cyclone10lp": 20.0,
    "sofa": 40.0,
}

_SHARED_LIBRARY = PrimitiveLibrary()


@dataclass
class LakeroadResult:
    """Outcome of one Lakeroad mapping attempt.

    ``status`` is one of ``"success"`` (a structural implementation was
    produced), ``"unsat"`` (the sketch provably cannot implement the
    design), or ``"timeout"``.
    """

    status: str
    design_name: str
    architecture: str
    template: str
    time_seconds: float
    program: Optional[Program] = None
    verilog: Optional[str] = None
    resources: Optional[ResourceCount] = None
    hole_values: Dict[str, int] = field(default_factory=dict)
    synthesis: Optional[SynthesisOutcome] = None
    validated: Optional[bool] = None

    @property
    def succeeded(self) -> bool:
        return self.status == "success"


def _resolve_arch(arch) -> ArchDescription:
    if isinstance(arch, ArchDescription):
        return arch
    return load_architecture(str(arch))


def _validate_by_simulation(candidate: Program, design: BehavioralDesign,
                            at_time: int, cycles: int, seed: int = 0,
                            trials: int = 16) -> bool:
    """Cross-check a synthesized program against the design on random stimulus.

    This mirrors the paper's Verilator validation step: although the output
    is correct by construction, we simulate both programs on random input
    streams and compare the outputs over the checked window.
    """
    rng = random.Random(seed)
    horizon = at_time + cycles + 1
    for _ in range(trials):
        streams = {
            name: [rng.getrandbits(width) for _ in range(horizon)]
            for name, width in design.input_widths.items()
        }
        for t in range(at_time, at_time + cycles + 1):
            if interpret(candidate, streams, t) != interpret(design.program, streams, t):
                return False
    return True


def map_design(design: BehavioralDesign, template: str = "dsp",
               arch="xilinx-ultrascale-plus",
               timeout_seconds: Optional[float] = None,
               extra_cycles: int = 1,
               validate: bool = True,
               library: Optional[PrimitiveLibrary] = None) -> LakeroadResult:
    """Map an imported behavioral design onto the target architecture."""
    start = time.monotonic()
    architecture = _resolve_arch(arch)
    if timeout_seconds is None:
        timeout_seconds = DEFAULT_TIMEOUTS.get(architecture.name, 60.0)
    library = library if library is not None else _SHARED_LIBRARY

    interface = DesignInterface(input_widths=dict(design.input_widths),
                                output_width=design.output_width)
    try:
        sketch = generate_sketch(template, architecture, interface, library)
    except SketchGenerationError:
        return LakeroadResult(
            status="unsat", design_name=design.name, architecture=architecture.name,
            template=template, time_seconds=time.monotonic() - start)

    at_time = design.pipeline_depth
    outcome = f_lr_star(sketch, design.program, at_time=at_time, cycles=extra_cycles,
                        timeout_seconds=timeout_seconds)

    if outcome.status == "unknown":
        status = "timeout"
    elif outcome.status == "unsat":
        status = "unsat"
    else:
        status = "success"

    result = LakeroadResult(
        status=status,
        design_name=design.name,
        architecture=architecture.name,
        template=template,
        time_seconds=time.monotonic() - start,
        hole_values=outcome.hole_values,
        synthesis=outcome,
    )
    if outcome.program is not None:
        result.program = outcome.program
        lowered: LoweredDesign = lower_to_verilog(outcome.program, f"{design.name}_impl")
        result.verilog = lowered.verilog
        result.resources = lowered.resources
        if validate:
            result.validated = _validate_by_simulation(outcome.program, design,
                                                       at_time, extra_cycles)
    result.time_seconds = time.monotonic() - start
    return result


def map_verilog(source: str, template: str = "dsp",
                arch="xilinx-ultrascale-plus",
                module_name: Optional[str] = None,
                timeout_seconds: Optional[float] = None,
                extra_cycles: int = 1,
                validate: bool = True) -> LakeroadResult:
    """Map a behavioral Verilog module (the §2.2 entry point)."""
    design = verilog_to_behavioral(source, module_name)
    return map_design(design, template=template, arch=arch,
                      timeout_seconds=timeout_seconds, extra_cycles=extra_cycles,
                      validate=validate)
