"""The user-facing Lakeroad API (the ``lakeroad`` command of Section 2.2).

The typical call mirrors the paper's command line::

    $ lakeroad --template dsp --arch-desc xilinx-ultrascale-plus add_mul_and.v

which here is::

    result = map_verilog(open("add_mul_and.v").read(), template="dsp",
                         arch="xilinx-ultrascale-plus")

Since the engine refactor the whole map-one-design lifecycle lives in
:class:`repro.engine.MappingSession` (sketch generation → CEGIS-backed
synthesis → compilation, with one budget model, a racing solver portfolio
and a memoizing synthesis cache).  This module keeps the historical
functional API as thin wrappers over the process-wide default session; for
explicit control over the library, portfolio or cache, construct a
:class:`~repro.engine.session.MappingSession` directly.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.budget import Budget
from repro.engine.session import (
    LakeroadResult,
    MappingSession,
    default_session,
)
from repro.hdl.behavioral import BehavioralDesign, verilog_to_behavioral
from repro.vendor.library import PrimitiveLibrary

__all__ = ["LakeroadResult", "map_design", "map_verilog"]


def _session_for(library: Optional[PrimitiveLibrary],
                 session: Optional[MappingSession]) -> MappingSession:
    if session is not None:
        return session
    if library is not None:
        # An explicit library gets its own isolated session (and cache).
        return MappingSession(library=library)
    return default_session()


def map_design(design: BehavioralDesign, template: str = "dsp",
               arch="xilinx-ultrascale-plus",
               timeout_seconds: Optional[float] = None,
               extra_cycles: int = 1,
               validate: bool = True,
               library: Optional[PrimitiveLibrary] = None,
               session: Optional[MappingSession] = None,
               budget: Optional[Budget] = None) -> LakeroadResult:
    """Map an imported behavioral design onto the target architecture."""
    return _session_for(library, session).map_design(
        design, template=template, arch=arch, timeout_seconds=timeout_seconds,
        budget=budget, extra_cycles=extra_cycles, validate=validate)


def map_verilog(source: str, template: str = "dsp",
                arch="xilinx-ultrascale-plus",
                module_name: Optional[str] = None,
                timeout_seconds: Optional[float] = None,
                extra_cycles: int = 1,
                validate: bool = True,
                session: Optional[MappingSession] = None,
                budget: Optional[Budget] = None) -> LakeroadResult:
    """Map a behavioral Verilog module (the §2.2 entry point)."""
    design = verilog_to_behavioral(source, module_name)
    return map_design(design, template=template, arch=arch,
                      timeout_seconds=timeout_seconds, extra_cycles=extra_cycles,
                      validate=validate, session=session, budget=budget)
