"""Loading architecture descriptions from their YAML files."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.arch import yamllite
from repro.core.interfaces import interface_by_name

__all__ = ["PortBinding", "InterfaceImplementation", "ArchDescription",
           "available_architectures", "load_architecture", "descriptions_directory"]


def descriptions_directory() -> Path:
    return Path(__file__).resolve().parent / "descriptions"


@dataclass(frozen=True)
class PortBinding:
    """How one vendor-module port is driven.

    ``value`` is one of:
      * an interface data-input name (``A``, ``I0``, ...),
      * ``(concat X Y ...)`` — a concatenation of interface inputs,
      * ``(bv <value> <width>)`` — a constant.
    """

    port: str
    width: int
    value: str


@dataclass
class InterfaceImplementation:
    """One ``implementations:`` entry of an architecture description."""

    interface: str
    interface_params: Dict[str, int]
    module: str
    ports: List[PortBinding]
    internal_data: Dict[str, int]
    output_port: str
    clock: str = ""

    def data_port_for(self, interface_input: str) -> Optional[PortBinding]:
        """The vendor port directly driven by the given interface input."""
        for binding in self.ports:
            if binding.value == interface_input:
                return binding
        return None

    def interface_inputs_used(self) -> List[str]:
        names: List[str] = []
        for binding in self.ports:
            for token in _interface_inputs_of_value(binding.value):
                if token not in names:
                    names.append(token)
        return names


def _interface_inputs_of_value(value: str) -> List[str]:
    text = str(value).strip()
    if text.startswith("(bv"):
        return []
    if text.startswith("(concat"):
        return [tok for tok in text.strip("()").split()[1:]]
    return [text]


@dataclass
class ArchDescription:
    """A loaded architecture description."""

    name: str
    family: str
    implementations: List[InterfaceImplementation]
    source_path: Optional[Path] = None
    source_lines: int = 0

    def implementation(self, interface_name: str) -> Optional[InterfaceImplementation]:
        for impl in self.implementations:
            if impl.interface == interface_name:
                return impl
        return None

    def implements(self, interface_name: str) -> bool:
        return self.implementation(interface_name) is not None

    def lut_size(self) -> Optional[int]:
        impl = self.implementation("LUT")
        if impl is None:
            return None
        return impl.interface_params.get("num_inputs")


_ALIASES = {
    "xilinx": "xilinx-ultrascale-plus",
    "xilinx-ultrascale-plus": "xilinx-ultrascale-plus",
    "ultrascale-plus": "xilinx-ultrascale-plus",
    "lattice": "lattice-ecp5",
    "lattice-ecp5": "lattice-ecp5",
    "ecp5": "lattice-ecp5",
    "intel": "intel-cyclone10lp",
    "intel-cyclone10lp": "intel-cyclone10lp",
    "cyclone10lp": "intel-cyclone10lp",
    "sofa": "sofa",
}


def available_architectures() -> List[str]:
    """Canonical names of the shipped architecture descriptions."""
    return sorted(p.stem for p in descriptions_directory().glob("*.yml"))


def _count_sloc(text: str) -> int:
    count = 0
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if line and not line.startswith("#"):
            count += 1
    return count


def load_architecture(name_or_path: str) -> ArchDescription:
    """Load an architecture description by name, alias, or file path."""
    path = Path(name_or_path)
    if not path.exists():
        canonical = _ALIASES.get(name_or_path.lower().removesuffix(".yml"))
        if canonical is None:
            raise KeyError(
                f"unknown architecture {name_or_path!r}; available: {available_architectures()}")
        path = descriptions_directory() / f"{canonical}.yml"
    text = path.read_text()
    data = yamllite.loads(text)
    if not isinstance(data, dict):
        raise ValueError(f"architecture description {path} is not a mapping")

    implementations: List[InterfaceImplementation] = []
    for entry in data.get("implementations", []) or []:
        interface_info = entry.get("interface", {})
        interface_name = interface_info.get("name")
        interface_by_name(interface_name)  # validates the interface exists
        params = {key: value for key, value in interface_info.items() if key != "name"}
        ports = [PortBinding(p["name"], int(p.get("width", 1)), str(p["value"]))
                 for p in entry.get("ports", []) or []]
        internal = {key: int(width) for key, width in (entry.get("internal_data") or {}).items()}
        outputs = entry.get("outputs", {}) or {}
        output_port = outputs.get("O") or next(iter(outputs.values()), "O")
        implementations.append(InterfaceImplementation(
            interface=interface_name,
            interface_params=params,
            module=entry.get("module", ""),
            ports=ports,
            internal_data=internal,
            output_port=output_port,
            clock=entry.get("clock", "") or "",
        ))

    return ArchDescription(
        name=data.get("name", path.stem),
        family=data.get("family", data.get("name", path.stem)),
        implementations=implementations,
        source_path=path,
        source_lines=_count_sloc(text),
    )
