"""Architecture descriptions (Section 4.2) and their loader.

An architecture description is a short YAML file listing, for each primitive
interface the architecture implements, the vendor module to instantiate, how
the interface's inputs map onto the module's ports, and which ports are
``internal_data`` — architecture-specific configuration that becomes
solver-visible holes.  Descriptions for Xilinx UltraScale+, Lattice ECP5,
Intel Cyclone 10 LP and SOFA are shipped in ``descriptions/``.
"""

from repro.arch.loader import (
    ArchDescription,
    InterfaceImplementation,
    available_architectures,
    load_architecture,
)

__all__ = [
    "ArchDescription",
    "InterfaceImplementation",
    "available_architectures",
    "load_architecture",
]
