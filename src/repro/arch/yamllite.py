"""A minimal YAML-subset parser for architecture descriptions.

PyYAML is not available in the reproduction environment, so this module
implements the subset the architecture descriptions need: nested mappings
and lists by indentation, inline ``{key: value, ...}`` mappings and
``[a, b]`` lists, integers, booleans, and plain / quoted strings.  It is
deliberately small but fully tested; it is *not* a general YAML parser.
"""

from __future__ import annotations

from typing import Any, List, Tuple

__all__ = ["YamlError", "loads"]


class YamlError(ValueError):
    """Raised on malformed input."""


def _parse_scalar(text: str) -> Any:
    text = text.strip()
    if not text:
        return None
    if text.startswith("{"):
        return _parse_inline_map(text)
    if text.startswith("["):
        return _parse_inline_list(text)
    if (text.startswith('"') and text.endswith('"')) or \
            (text.startswith("'") and text.endswith("'")):
        return text[1:-1]
    lowered = text.lower()
    if lowered in ("true", "yes"):
        return True
    if lowered in ("false", "no"):
        return False
    if lowered in ("null", "~"):
        return None
    try:
        if text.startswith("0x") or text.startswith("0X"):
            return int(text, 16)
        if text.startswith("0b") or text.startswith("0B"):
            return int(text, 2)
        return int(text)
    except ValueError:
        pass
    return text


def _split_inline(body: str) -> List[str]:
    """Split an inline collection body on top-level commas."""
    parts: List[str] = []
    depth = 0
    current = []
    for char in body:
        if char in "[{":
            depth += 1
        elif char in "]}":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if current and "".join(current).strip():
        parts.append("".join(current))
    return parts


def _parse_inline_map(text: str) -> dict:
    if not (text.startswith("{") and text.endswith("}")):
        raise YamlError(f"malformed inline mapping: {text!r}")
    body = text[1:-1].strip()
    result = {}
    if not body:
        return result
    for part in _split_inline(body):
        if ":" not in part:
            raise YamlError(f"malformed inline mapping entry: {part!r}")
        key, _, value = part.partition(":")
        result[key.strip()] = _parse_scalar(value)
    return result


def _parse_inline_list(text: str) -> list:
    if not (text.startswith("[") and text.endswith("]")):
        raise YamlError(f"malformed inline list: {text!r}")
    body = text[1:-1].strip()
    if not body:
        return []
    return [_parse_scalar(part) for part in _split_inline(body)]


def _strip_comment(line: str) -> str:
    result = []
    in_single = in_double = False
    for char in line:
        if char == "'" and not in_double:
            in_single = not in_single
        elif char == '"' and not in_single:
            in_double = not in_double
        elif char == "#" and not in_single and not in_double:
            break
        result.append(char)
    return "".join(result)


def _logical_lines(text: str) -> List[Tuple[int, str]]:
    lines: List[Tuple[int, str]] = []
    for raw_line in text.splitlines():
        line = _strip_comment(raw_line).rstrip()
        if not line.strip():
            continue
        indent = len(line) - len(line.lstrip(" "))
        lines.append((indent, line.strip()))
    return lines


def loads(text: str) -> Any:
    """Parse a YAML-subset document."""
    lines = _logical_lines(text)
    value, consumed = _parse_block(lines, 0, indent=None)
    if consumed != len(lines):
        indent, content = lines[consumed]
        raise YamlError(f"unexpected content at indent {indent}: {content!r}")
    return value


def _parse_block(lines: List[Tuple[int, str]], start: int, indent) -> Tuple[Any, int]:
    if start >= len(lines):
        return None, start
    block_indent = lines[start][0] if indent is None else indent
    first_content = lines[start][1]
    if first_content.startswith("- "):
        return _parse_list_block(lines, start, block_indent)
    return _parse_map_block(lines, start, block_indent)


def _parse_list_block(lines, start: int, indent: int) -> Tuple[list, int]:
    items = []
    index = start
    while index < len(lines):
        line_indent, content = lines[index]
        if line_indent < indent or not content.startswith("- "):
            if line_indent >= indent and not content.startswith("- "):
                break
            if line_indent < indent:
                break
        if line_indent != indent:
            raise YamlError(f"inconsistent list indentation near {content!r}")
        item_text = content[2:].strip()
        index += 1
        if not item_text:
            value, index = _parse_block(lines, index, None)
            items.append(value)
        elif ":" in item_text and not item_text.startswith(("{", "[", '"', "'")):
            # The list item starts a mapping whose first entry is inline.
            key, _, rest = item_text.partition(":")
            mapping = {}
            rest = rest.strip()
            if rest:
                mapping[key.strip()] = _parse_scalar(rest)
            else:
                value, index = _parse_block(lines, index, None)
                mapping[key.strip()] = value
            # Continuation entries of the same mapping are indented deeper.
            while index < len(lines) and lines[index][0] > indent and \
                    not lines[index][1].startswith("- "):
                sub_value, index = _parse_map_block(lines, index, lines[index][0])
                mapping.update(sub_value)
            items.append(mapping)
        else:
            items.append(_parse_scalar(item_text))
    return items, index


def _parse_map_block(lines, start: int, indent: int) -> Tuple[dict, int]:
    mapping = {}
    index = start
    while index < len(lines):
        line_indent, content = lines[index]
        if line_indent < indent or content.startswith("- "):
            break
        if line_indent != indent:
            raise YamlError(f"inconsistent mapping indentation near {content!r}")
        if ":" not in content:
            raise YamlError(f"expected 'key: value', got {content!r}")
        key, _, rest = content.partition(":")
        key = key.strip()
        rest = rest.strip()
        index += 1
        if rest:
            mapping[key] = _parse_scalar(rest)
        else:
            if index < len(lines) and lines[index][0] > indent:
                value, index = _parse_block(lines, index, None)
                mapping[key] = value
            else:
                mapping[key] = None
    return mapping, index
