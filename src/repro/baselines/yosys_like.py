"""The open-source-style baseline mapper ("Yosys" in Figure 6).

Yosys's DSP inference (the ``dsp`` pass plus architecture-specific
techmap rules) recognises a narrow set of shapes — essentially a bare
multiply, optionally with a register on the output — and hands everything
else to ABC for LUT mapping.  This baseline reproduces that behaviour:

* a design maps to a single DSP only if it is exactly ``a * b`` (no
  pre-adder, no post-operation), unsigned, with at most one pipeline stage,
  and the target architecture has a DSP at all;
* on Intel Cyclone 10 LP the flow has no DSP inference support, matching
  the paper's observation that Yosys maps no designs there;
* everything else is implemented on the fabric: the multiply and any other
  operators go through the ABC-style LUT mapper and the pipeline registers
  become flip-flops.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.baselines.abc_lut import AbcLutMapper
from repro.baselines.common import BaselineResult, DesignFeatures, analyze_design
from repro.core.interp import symbolic_output
from repro.core.lower import ResourceCount
from repro.hdl.behavioral import BehavioralDesign

__all__ = ["YosysLikeMapper"]


class YosysLikeMapper:
    """A syntactic, rule-based DSP inference pass with an ABC fallback."""

    #: ``name`` identifies the concrete mapper; ``family`` is the label the
    #: paper's figures aggregate by (harness records carry both).
    name = "yosys"
    family = "yosys"

    #: Architectures whose DSPs this flow can infer at all.
    _DSP_CAPABLE = {"xilinx-ultrascale-plus", "lattice-ecp5"}

    def __init__(self, lut_size: int = 6) -> None:
        self.lut_mapper = AbcLutMapper(lut_size=lut_size)

    # ------------------------------------------------------------------ #
    def can_map_to_dsp(self, features: DesignFeatures, architecture: str) -> bool:
        if architecture not in self._DSP_CAPABLE:
            return False
        if not features.has_multiply or features.multiply_has_preadd:
            return False
        if features.post_op is not None:
            return False
        if features.is_signed:
            return False
        if architecture == "xilinx-ultrascale-plus":
            return features.pipeline_stages <= 1
        # Lattice: the wrapper handles the multiplier's optional registers.
        return features.pipeline_stages <= 2

    def map(self, design: BehavioralDesign, architecture: str,
            is_signed: bool = False) -> BaselineResult:
        start = time.monotonic()
        features = analyze_design(design.program, is_signed)
        if self.can_map_to_dsp(features, architecture):
            resources = ResourceCount(dsps=1)
            mapped = True
        else:
            resources = self._fabric_implementation(design, features, architecture)
            mapped = False
        return BaselineResult(
            tool=self.name,
            design_name=design.name,
            architecture=architecture,
            mapped_to_single_dsp=mapped,
            resources=resources,
            time_seconds=time.monotonic() - start,
        )

    # ------------------------------------------------------------------ #
    def _fabric_implementation(self, design: BehavioralDesign,
                               features: DesignFeatures,
                               architecture: str) -> ResourceCount:
        """Cost of implementing the design on the fabric (plus at most one
        inferred DSP for the multiply itself, as real flows do)."""
        dsps = 0
        if features.has_multiply and architecture in self._DSP_CAPABLE:
            # The multiply itself is usually still packed into a DSP; the
            # pre-adder and post-op spill into LUTs, which is exactly the
            # §2.1 scenario (1 DSP + LUTs + registers).
            dsps = 1
        combinational = symbolic_output(design.program, 0)
        lut_result = self.lut_mapper.map_expressions([combinational])
        luts = lut_result.lut_count
        if dsps:
            # Roughly remove the multiplier's share of the fabric logic.
            luts = max(0, luts - features.width * features.width // 2)
            luts = max(luts, features.width if features.post_op else 0)
        registers = features.pipeline_stages * features.width
        return ResourceCount(dsps=dsps, luts=luts, registers=registers)
