"""Simulated proprietary state-of-the-art mappers ("SOTA" in Figure 6).

The real comparison points are the Xilinx, Lattice and Intel vendor
toolchains, which cannot be redistributed or scripted in this offline
environment.  Each class below simulates the corresponding toolchain's DSP
*inference* behaviour with hand-written coverage rules calibrated to the
failure modes the paper documents (§2.1, §5.1):

* vendor tools reliably infer bare multiplies and multiply-accumulate
  shapes, across most pipeline depths;
* they frequently fail to combine the pre-adder, multiplier and logic unit
  into one DSP (the add_mul_and example), instead spilling the extra
  operations to LUTs and registers;
* deep pipelines and logic-unit post-operations are the least covered.

The rules are deliberately *more* capable than the Yosys baseline and less
capable than Lakeroad, which is the qualitative relationship Figure 6
reports; EXPERIMENTS.md records the measured ratios next to the paper's.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.baselines.abc_lut import AbcLutMapper
from repro.baselines.common import BaselineResult, DesignFeatures, analyze_design
from repro.baselines.yosys_like import YosysLikeMapper
from repro.core.lower import ResourceCount
from repro.hdl.behavioral import BehavioralDesign

__all__ = ["SotaXilinxMapper", "SotaLatticeMapper", "SotaIntelMapper", "sota_for"]


class _SotaBase(YosysLikeMapper):
    """Shared plumbing: SOTA mappers reuse the fabric-fallback costing."""

    name = "sota"
    family = "sota"
    architecture = ""
    #: Start-up cost added to every run (the paper notes the Xilinx SOTA
    #: tool's long start-up process dominates its mapping time).
    startup_seconds = 0.0

    def map(self, design: BehavioralDesign, architecture: Optional[str] = None,
            is_signed: bool = False) -> BaselineResult:
        start = time.monotonic()
        arch = architecture or self.architecture
        features = analyze_design(design.program, is_signed)
        if self.can_map_to_dsp(features, arch):
            resources = ResourceCount(dsps=1)
            mapped = True
        else:
            resources = self._fabric_implementation(design, features, arch)
            mapped = False
        elapsed = (time.monotonic() - start) + self.startup_seconds
        return BaselineResult(
            tool=self.name,
            design_name=design.name,
            architecture=arch,
            mapped_to_single_dsp=mapped,
            resources=resources,
            time_seconds=elapsed,
        )


class SotaXilinxMapper(_SotaBase):
    """Simulated proprietary mapper for Xilinx UltraScale+."""

    name = "sota-xilinx"
    architecture = "xilinx-ultrascale-plus"
    startup_seconds = 0.0
    _DSP_CAPABLE = {"xilinx-ultrascale-plus"}

    def can_map_to_dsp(self, features: DesignFeatures, architecture: str) -> bool:
        if architecture not in self._DSP_CAPABLE or not features.has_multiply:
            return False
        # Bare multiply: inferred at every supported pipeline depth.
        if not features.multiply_has_preadd and features.post_op is None:
            return features.pipeline_stages <= 3
        # Multiply-add/subtract (no pre-adder): inferred up to two stages.
        if not features.multiply_has_preadd and features.post_op in ("add", "sub"):
            return features.pipeline_stages <= 2
        # Pre-adder plus arithmetic post-op: inferred up to two stages.
        if features.multiply_has_preadd and features.post_op in ("add", "sub", None):
            return features.pipeline_stages <= 2
        # Pre-adder combined with the logic unit (and/or/xor/xnor): the
        # documented failure mode -- never combined into a single DSP.
        return False


class SotaLatticeMapper(_SotaBase):
    """Simulated proprietary mapper for Lattice ECP5."""

    name = "sota-lattice"
    architecture = "lattice-ecp5"
    _DSP_CAPABLE = {"lattice-ecp5"}

    def can_map_to_dsp(self, features: DesignFeatures, architecture: str) -> bool:
        if architecture not in self._DSP_CAPABLE or not features.has_multiply:
            return False
        if features.multiply_has_preadd:
            return False
        if features.post_op is None:
            return features.pipeline_stages <= 2
        if features.post_op == "add":
            # Multiply-accumulate maps, but only for shallow pipelines.
            return features.pipeline_stages <= 1
        return False


class SotaIntelMapper(_SotaBase):
    """Simulated proprietary mapper for Intel Cyclone 10 LP."""

    name = "sota-intel"
    architecture = "intel-cyclone10lp"
    _DSP_CAPABLE = {"intel-cyclone10lp"}

    def can_map_to_dsp(self, features: DesignFeatures, architecture: str) -> bool:
        if architecture not in self._DSP_CAPABLE or not features.has_multiply:
            return False
        if features.multiply_has_preadd or features.post_op is not None:
            return False
        # The embedded multiplier's output register is not inferred reliably;
        # only shallow pipelines map to the bare mac_mult.
        return features.pipeline_stages <= 1


def sota_for(architecture: str) -> _SotaBase:
    """The simulated proprietary mapper for an architecture."""
    mappers = {
        "xilinx-ultrascale-plus": SotaXilinxMapper,
        "lattice-ecp5": SotaLatticeMapper,
        "intel-cyclone10lp": SotaIntelMapper,
    }
    if architecture not in mappers:
        raise KeyError(f"no simulated SOTA mapper for architecture {architecture!r}")
    return mappers[architecture]()
