"""Baseline technology mappers used as comparison points (Section 5.1).

The paper compares Lakeroad against the open-source Yosys flow and against
the proprietary, state-of-the-art vendor toolchains (which cannot be named
or redistributed).  This reproduction implements both comparison points as
hand-written, pattern-matching DSP-inference mappers with deliberately
limited coverage, mirroring the qualitative failure modes the paper
documents: syntactic multiply detection, limited handling of the pre-adder
and of the post-multiplier logic unit, and limited pipeline-depth support.
Whatever a baseline cannot push into the DSP is implemented on the fabric
with an ABC-style LUT mapper plus registers, which is what produces the
LUT/flip-flop overheads reported in the resource-reduction experiment.
"""

from repro.baselines.abc_lut import AbcLutMapper
from repro.baselines.common import BaselineResult, DesignFeatures, analyze_design
from repro.baselines.sota import SotaIntelMapper, SotaLatticeMapper, SotaXilinxMapper, sota_for
from repro.baselines.yosys_like import YosysLikeMapper

__all__ = [
    "BaselineResult",
    "DesignFeatures",
    "analyze_design",
    "AbcLutMapper",
    "YosysLikeMapper",
    "SotaXilinxMapper",
    "SotaLatticeMapper",
    "SotaIntelMapper",
    "sota_for",
]
