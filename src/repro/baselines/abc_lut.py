"""An ABC-style LUT mapper for the fabric fallback path.

When a baseline cannot push (part of) a design into a DSP, the remaining
combinational logic is implemented with LUTs, exactly as Yosys hands designs
to ABC.  This module bit-blasts the residual logic to an AIG (reusing the
solver substrate's bit-blaster), enumerates cuts bottom-up, and covers the
AIG with K-input LUTs using the classic greedy depth-then-area heuristic.
Register counts come straight from the design's pipeline structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.bv.aig import AIG, FALSE_LIT, TRUE_LIT
from repro.bv.ast import BVExpr
from repro.bv.bitblast import BitBlaster

__all__ = ["AbcLutMapper", "LutMappingResult"]


@dataclass
class LutMappingResult:
    """Outcome of covering a block of combinational logic with K-LUTs."""

    lut_count: int
    depth: int
    aig_nodes: int


class AbcLutMapper:
    """Greedy cut-based covering of an AIG with K-input LUTs."""

    def __init__(self, lut_size: int = 6, max_cuts_per_node: int = 8) -> None:
        self.lut_size = lut_size
        self.max_cuts_per_node = max_cuts_per_node

    # ------------------------------------------------------------------ #
    def map_expressions(self, expressions: List[BVExpr]) -> LutMappingResult:
        """Bit-blast the expressions into one AIG and cover it with LUTs."""
        blaster = BitBlaster()
        output_lits: List[int] = []
        for expression in expressions:
            output_lits.extend(blaster.blast(expression))
        return self.map_aig(blaster.aig, output_lits)

    def map_aig(self, aig: AIG, output_lits: List[int]) -> LutMappingResult:
        """Cover the cone of ``output_lits`` with K-LUTs."""
        needed: Set[int] = set()
        stack = [lit >> 1 for lit in output_lits]
        while stack:
            index = stack.pop()
            if index in needed or index == 0:
                continue
            needed.add(index)
            if not aig.is_input(index):
                left, right = aig.node(index)
                stack.append(left >> 1)
                stack.append(right >> 1)

        # Cut enumeration in topological order (node indices are topological
        # by construction).
        cuts: Dict[int, List[frozenset]] = {}
        best_cut: Dict[int, frozenset] = {}
        depth: Dict[int, int] = {}

        for index in sorted(needed):
            if aig.is_input(index):
                cuts[index] = [frozenset({index})]
                best_cut[index] = frozenset({index})
                depth[index] = 0
                continue
            left, right = aig.node(index)
            left_index, right_index = left >> 1, right >> 1
            left_cuts = cuts.get(left_index, [frozenset()])
            right_cuts = cuts.get(right_index, [frozenset()])
            merged: List[frozenset] = [frozenset({index})]
            for lc in left_cuts:
                for rc in right_cuts:
                    cut = lc | rc
                    if len(cut) <= self.lut_size and cut not in merged:
                        merged.append(cut)
            # Keep the best few cuts (smallest first) to bound the work.
            merged.sort(key=len)
            cuts[index] = merged[: self.max_cuts_per_node]

            def cut_depth(cut: frozenset) -> int:
                if cut == frozenset({index}):
                    return 1 + max(depth.get(left_index, 0), depth.get(right_index, 0))
                return 1 + max((depth.get(leaf, 0) for leaf in cut), default=0)

            chosen = min(cuts[index], key=lambda cut: (cut_depth(cut), len(cut)))
            best_cut[index] = chosen
            depth[index] = cut_depth(chosen)

        # Greedy covering from the outputs down.
        lut_roots: Set[int] = set()
        frontier = [lit >> 1 for lit in output_lits if (lit >> 1) in needed and not aig.is_input(lit >> 1)]
        visited: Set[int] = set()
        while frontier:
            index = frontier.pop()
            if index in visited or aig.is_input(index) or index == 0:
                continue
            visited.add(index)
            lut_roots.add(index)
            for leaf in best_cut[index]:
                if leaf != index and not aig.is_input(leaf) and leaf != 0:
                    frontier.append(leaf)

        max_depth = max((depth.get(lit >> 1, 0) for lit in output_lits), default=0)
        return LutMappingResult(lut_count=len(lut_roots), depth=max_depth,
                                aig_nodes=len(needed))
