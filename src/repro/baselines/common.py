"""Shared machinery for the baseline mappers.

Baselines work the way real pattern-matching mappers do: they inspect the
*structure* of the behavioral design (is there a multiply?  is one operand
of the multiply itself an add/sub — a pre-adder?  is the multiply's result
combined with another operand — a post-operation?  how many pipeline
registers follow?) and decide from hand-written rules whether that shape is
one they can push into a DSP.  :func:`analyze_design` performs that feature
extraction on the ℒbeh program; the mapper classes consume the features.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.lang import BVNode, OpNode, Program, RegNode, VarNode
from repro.core.lower import ResourceCount

__all__ = ["DesignFeatures", "BaselineResult", "analyze_design"]


@dataclass
class DesignFeatures:
    """Structural features of a behavioral design fragment."""

    input_count: int = 0
    width: int = 0
    pipeline_stages: int = 0
    has_multiply: bool = False
    multiply_has_preadd: bool = False
    preadd_is_subtract: bool = False
    post_op: Optional[str] = None  # operator applied to the multiply result
    is_signed: bool = False
    operators: Set[str] = field(default_factory=set)


@dataclass
class BaselineResult:
    """Outcome of a baseline mapping attempt.

    ``mapped_to_single_dsp`` is the success criterion of Figure 6: the tool
    produced an implementation using exactly one DSP and no fabric logic.
    """

    tool: str
    design_name: str
    architecture: str
    mapped_to_single_dsp: bool
    resources: ResourceCount
    time_seconds: float = 0.0

    @property
    def succeeded(self) -> bool:
        return self.mapped_to_single_dsp


def analyze_design(program: Program, is_signed: bool = False) -> DesignFeatures:
    """Extract mapper-visible features from a behavioral program."""
    features = DesignFeatures(is_signed=is_signed)
    features.input_count = len(program.free_vars())
    widths = list(program.var_widths().values())
    features.width = max(widths) if widths else 0

    # Pipeline depth: longest register chain from the root upward.
    def register_depth(node_id: int, seen) -> int:
        if node_id in seen:
            return 0
        node = program[node_id]
        if isinstance(node, RegNode):
            return 1 + register_depth(node.data, seen | {node_id})
        return max((register_depth(i, seen | {node_id}) for i in node.inputs()), default=0)

    features.pipeline_stages = register_depth(program.root, frozenset())

    multiplies: List[OpNode] = []
    for node in program.nodes.values():
        if isinstance(node, OpNode):
            features.operators.add(node.op)
            if node.op == "mul":
                multiplies.append(node)
    features.has_multiply = bool(multiplies)

    if multiplies:
        multiply = multiplies[0]
        for operand_id in multiply.operands:
            operand = program[operand_id]
            if isinstance(operand, OpNode) and operand.op in ("add", "sub"):
                # Only a pre-adder if it feeds the multiplier from inputs.
                if all(isinstance(program[i], (VarNode, BVNode)) for i in operand.operands):
                    features.multiply_has_preadd = True
                    features.preadd_is_subtract = operand.op == "sub"
        # Find an operator that consumes the multiply result (post-op).
        multiply_ids = {node_id for node_id, node in program.nodes.items()
                        if isinstance(node, OpNode) and node.op == "mul"}
        for node in program.nodes.values():
            if isinstance(node, OpNode) and node.op != "mul":
                if any(i in multiply_ids for i in node.operands):
                    features.post_op = node.op
                    break
    return features
