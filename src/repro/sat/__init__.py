"""SAT solving substrate.

The original Lakeroad races four industrial SMT/SAT solvers (Bitwuzla, cvc5,
Yices2 and STP).  This reproduction ships its own engines:

* :class:`repro.sat.solver.CDCLSolver` -- conflict-driven clause learning
  with two-watched-literal propagation, VSIDS branching, first-UIP clause
  learning, Luby restarts and phase saving.
* :class:`repro.sat.dpll.DPLLSolver`   -- a simple DPLL with unit
  propagation, used as a portfolio member and as a cross-check oracle in the
  test suite.
* :mod:`repro.sat.portfolio`           -- utilities for racing strategies
  under a shared deadline.
"""

from repro.sat.cnf import CNF
from repro.sat.dpll import DPLLSolver
from repro.sat.solver import CDCLSolver, SatResult

__all__ = ["CNF", "CDCLSolver", "DPLLSolver", "SatResult"]
