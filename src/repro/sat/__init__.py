"""SAT solving substrate.

The original Lakeroad races four industrial SMT/SAT solvers (Bitwuzla, cvc5,
Yices2 and STP).  This reproduction ships its own engines:

* :class:`repro.sat.solver.CDCLSolver` -- conflict-driven clause learning
  over a flat clause arena with blocker-literal watchers, VSIDS branching,
  first-UIP clause learning, Luby restarts and phase saving.
* :class:`repro.sat.legacy.LegacyCDCLSolver` -- the list-based CDCL the
  arena solver replaced, kept for one release as the bit-for-bit reference
  the differential suite races the arena against (``cdcl-legacy``).
* :class:`repro.sat.dpll.DPLLSolver`   -- a simple DPLL with unit
  propagation, used as a portfolio member and as a cross-check oracle in the
  test suite.
* :mod:`repro.sat.portfolio`           -- utilities for racing strategies
  under a shared deadline.
"""

from repro.sat.cnf import CNF, complete_model
from repro.sat.dpll import DPLLSolver
from repro.sat.legacy import LegacyCDCLSolver
from repro.sat.solver import CDCLSolver, SatResult

__all__ = ["CNF", "CDCLSolver", "DPLLSolver", "LegacyCDCLSolver",
           "SatResult", "complete_model"]
