"""CNF formula container with DIMACS import/export."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

__all__ = ["CNF", "complete_model"]


def complete_model(num_vars: int, assigned: Mapping[int, bool]) -> Dict[int, bool]:
    """Extend a partial assignment to a total model over ``1..num_vars``.

    Unconstrained variables default to ``False`` — the convention every
    solver in :mod:`repro.sat` shares, and part of the canonical-model
    contract: with static branching and a fixed negative default phase the
    first model found is the lexicographically smallest one, and the
    ``False`` completion keeps that property for variables the search never
    had to touch.  The assigned entries keep their insertion order so the
    returned dict is reproducible across solver engines.
    """
    model = dict(assigned)
    for var in range(1, num_vars + 1):
        model.setdefault(var, False)
    return model


class CNF:
    """A CNF formula: a list of clauses over 1-based DIMACS variables."""

    def __init__(self, num_vars: int = 0, clauses: Iterable[Sequence[int]] = ()) -> None:
        self.num_vars = num_vars
        self.clauses: List[List[int]] = []
        for clause in clauses:
            self.add_clause(clause)

    def new_var(self) -> int:
        """Allocate a fresh variable and return its number."""
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, literals: Sequence[int]) -> None:
        """Add a clause; grows ``num_vars`` if the clause mentions new ones."""
        clause = list(literals)
        for lit in clause:
            if lit == 0:
                raise ValueError("0 is not a valid DIMACS literal")
            self.num_vars = max(self.num_vars, abs(lit))
        self.clauses.append(clause)

    def extend(self, clauses: Iterable[Sequence[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    @property
    def total_literals(self) -> int:
        """Literal occurrences over all clauses (the arena footprint)."""
        return sum(len(clause) for clause in self.clauses)

    def copy(self) -> "CNF":
        duplicate = CNF(num_vars=self.num_vars)
        duplicate.clauses = [list(c) for c in self.clauses]
        return duplicate

    # ------------------------------------------------------------------ #
    # DIMACS
    # ------------------------------------------------------------------ #
    def to_dimacs(self) -> str:
        lines = [f"p cnf {self.num_vars} {self.num_clauses}"]
        for clause in self.clauses:
            lines.append(" ".join(str(lit) for lit in clause) + " 0")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_dimacs(cls, text: str) -> "CNF":
        cnf = cls()
        declared_vars = 0
        for raw_line in text.splitlines():
            line = raw_line.strip()
            if not line or line.startswith("c"):
                continue
            if line.startswith("p"):
                parts = line.split()
                declared_vars = int(parts[2])
                continue
            literals = [int(tok) for tok in line.split() if tok]
            if literals and literals[-1] == 0:
                literals = literals[:-1]
            if literals:
                cnf.add_clause(literals)
        cnf.num_vars = max(cnf.num_vars, declared_vars)
        return cnf

    def evaluate(self, assignment: Sequence[bool]) -> bool:
        """Check a full assignment (index 1..num_vars) against every clause."""
        for clause in self.clauses:
            if not any(
                assignment[abs(lit)] if lit > 0 else not assignment[abs(lit)]
                for lit in clause
            ):
                return False
        return True
