"""The list-based CDCL solver, kept for one release as ``cdcl-legacy``.

This is the pre-arena implementation of :class:`repro.sat.solver.CDCLSolver`
verbatim: clauses as python lists indexed by position in a growing
``clauses`` list (deletion leaves ``None`` tombstones), watches as a dict of
literal -> clause-index lists, and assignment/level/reason as dicts.  The
flat-arena solver that replaced it is required to be bit-for-bit
trajectory-identical — same conflicts, same decisions, same propagation
counts, same models, same unsat cores — so this module is the reference
implementation the differential fuzz suite and ``benchmarks/
bench_propagation.py`` race the arena against.  Select it through the
``cdcl-legacy`` backend in :mod:`repro.engine.backends`.

The only additions over the historical code are the cumulative telemetry
counters (``propagations_total``, ``watcher_visits``, ``solve_seconds``)
that the warm solver host reads from whichever engine it drives.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.sat.cnf import CNF
from repro.sat.solver import SatResult, _luby, _VarOrder

__all__ = ["LegacyCDCLSolver"]


class LegacyCDCLSolver:
    """Conflict-driven clause-learning SAT solver over a :class:`CNF`.

    ``cnf`` may be omitted to start from an empty clause database and grow
    it with :meth:`add_clause` (the incremental usage).  The constructor
    copies clauses, so the input CNF is never mutated by the solver's watch
    reordering.
    """

    def __init__(self, cnf: Optional[CNF] = None, deadline: Optional[float] = None,
                 should_stop: Optional[Callable[[], bool]] = None, *,
                 var_decay: float = 0.95,
                 default_phase: bool = False,
                 phase_saving: bool = True,
                 branching: str = "vsids",
                 restart_policy: str = "luby",
                 restart_base: int = 32,
                 reduce_interval: int = 2000,
                 max_lbd_keep: int = 3) -> None:
        if branching not in ("vsids", "static"):
            raise ValueError(f"unknown branching heuristic {branching!r}")
        if restart_policy not in ("luby", "geometric"):
            raise ValueError(f"unknown restart policy {restart_policy!r}")
        if reduce_interval < 0:
            raise ValueError("reduce_interval must be >= 0 (0 disables reduction)")
        if max_lbd_keep < 0:
            raise ValueError("max_lbd_keep must be >= 0")
        self.cnf = cnf
        self.deadline = deadline
        #: Optional cancellation hook: the portfolio race sets this so losing
        #: members stop burning CPU once a winner has answered.
        self.should_stop = should_stop
        self.num_vars = cnf.num_vars if cnf is not None else 0

        self.var_decay = var_decay
        self.default_phase = default_phase
        self.phase_saving = phase_saving
        self.branching = branching
        self.restart_policy = restart_policy
        self.restart_base = restart_base
        #: Learned clauses between database reductions; 0 disables reduction.
        self.reduce_interval = reduce_interval
        #: Glue threshold: learned clauses with LBD <= this are never deleted.
        self.max_lbd_keep = max_lbd_keep

        # Clause database: list of clauses (lists of literals); reduction
        # replaces deleted learned clauses with None tombstones.
        self.clauses: List[Optional[List[int]]] = []
        # Watches: literal -> clause indices watching it.
        self.watches: Dict[int, List[int]] = {}
        # Assignment: var -> bool, plus trail bookkeeping.
        self.assignment: Dict[int, bool] = {}
        self.level: Dict[int, int] = {}
        self.reason: Dict[int, Optional[int]] = {}
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.propagation_head = 0

        # VSIDS over an indexed max-heap (no duplicate entries).
        self.activity: Dict[int, float] = {v: 0.0 for v in range(1, self.num_vars + 1)}
        self.var_inc = 1.0
        self.phase: Dict[int, bool] = {}
        self._order = _VarOrder(self.activity)
        for v in range(1, self.num_vars + 1):
            self._order.insert(v)
        # Static branching walks variables in index order; the cursor only
        # ever needs to move back when backtracking unassigns a smaller var.
        self._static_cursor = 1

        self.stats = SatResult(status="unknown")
        #: Cumulative counters surviving across ``solve`` calls (the
        #: incremental-session statistics).
        self.learned_count = 0
        self.total_conflicts = 0
        self.solve_calls = 0
        #: Cumulative propagation telemetry (trail literals propagated,
        #: watcher entries examined, wall seconds inside ``solve``).
        self.propagations_total = 0
        self.watcher_visits = 0
        self.solve_seconds = 0.0
        # Learned-clause database: clause index -> current LBD, in learning
        # order.  Deleted clauses leave a None tombstone in ``self.clauses``
        # so every surviving index stays valid.
        self._learned: Dict[int, int] = {}
        self._learned_since_reduce = 0
        #: Learned clauses deleted by database reductions (cumulative).
        self.clauses_deleted = 0
        #: Most learned clauses simultaneously alive over the solver's life.
        self.db_size_peak = 0
        #: Learned clauses alive right after the most recent reduction.
        self.db_size_floor = 0
        #: Database reductions performed (cumulative).
        self.reductions = 0
        #: After an unsat answer under assumptions: the subset of assumption
        #: literals whose conjunction is inconsistent with the clauses.
        self.last_core: Optional[List[int]] = None
        self._ok = True

        if cnf is not None:
            for clause in cnf.clauses:
                if not self._add_clause(list(clause)):
                    self._ok = False
                    break

    # ------------------------------------------------------------------ #
    # Clause database
    # ------------------------------------------------------------------ #
    def ensure_vars(self, num_vars: int) -> None:
        """Grow the variable universe (new AIG nodes in a shared namespace)."""
        for var in range(self.num_vars + 1, num_vars + 1):
            self.activity[var] = 0.0
            self._order.insert(var)
        self.num_vars = max(self.num_vars, num_vars)

    def add_clause(self, literals: Sequence[int]) -> bool:
        """Add a clause to a (possibly already solved-on) solver.

        This is the incremental entry point: the solver first backtracks to
        decision level 0, then attaches the clause with the root-level
        assignment taken into account — literals already false at level 0
        are dropped (they are false forever), and a clause already satisfied
        at level 0 is skipped entirely.  Returns ``False`` once the clause
        database has become unsatisfiable.
        """
        self._cancel_until(0)
        clause = [int(lit) for lit in literals]
        if clause:
            self.ensure_vars(max(abs(lit) for lit in clause))
        clause = list(dict.fromkeys(clause))
        if any(-lit in clause for lit in clause):
            return self._ok  # tautology
        reduced: List[int] = []
        for lit in clause:
            value = self._value(lit)
            if value is True:
                return self._ok  # satisfied at level 0 forever
            if value is None:
                reduced.append(lit)
        if not reduced:
            self._ok = False
            return False
        if len(reduced) == 1:
            if not self._enqueue(reduced[0], None):
                self._ok = False
            return self._ok
        index = len(self.clauses)
        self.clauses.append(reduced)
        self.watches.setdefault(reduced[0], []).append(index)
        self.watches.setdefault(reduced[1], []).append(index)
        return self._ok

    def _add_clause(self, clause: List[int], learnt: bool = False) -> bool:
        """Construction-time clause attachment (level 0, trail unpropagated)."""
        clause = list(dict.fromkeys(clause))
        if any(-lit in clause for lit in clause):
            return True  # tautology
        if not clause:
            return False
        if len(clause) == 1:
            return self._enqueue(clause[0], None)
        index = len(self.clauses)
        self.clauses.append(clause)
        self.watches.setdefault(clause[0], []).append(index)
        self.watches.setdefault(clause[1], []).append(index)
        return True

    @property
    def learned_alive(self) -> int:
        """Learned clauses currently in the database (watch lists)."""
        return len(self._learned)

    def _clause_lbd(self, clause: Sequence[int]) -> int:
        levels = self.level
        return len({levels.get(abs(lit), 0) for lit in clause})

    def _reduce_db(self) -> None:
        """Delete the worst half of the deletable learned clauses.

        "Worst" is highest LBD first, larger clauses first among equal LBD,
        oldest first among equal size — a deterministic order.  Protected
        (and therefore never deletable): glue clauses (LBD <=
        ``max_lbd_keep``) and locked clauses (the current reason of an
        assigned literal; deleting one would orphan conflict analysis and
        ``last_core`` extraction).  Level-0 units never enter the learned
        database in the first place — they are enqueued directly.
        """
        self._learned_since_reduce = 0
        locked = {index for index in self.reason.values() if index is not None}
        candidates = [(lbd, index) for index, lbd in self._learned.items()
                      if lbd > self.max_lbd_keep and index not in locked]
        if candidates:
            candidates.sort(key=lambda item: (-item[0],
                                              -len(self.clauses[item[1]]),
                                              item[1]))
            clauses = self.clauses
            watches = self.watches
            for _, index in candidates[:len(candidates) // 2]:
                clause = clauses[index]
                # The two watched literals are always in positions 0 and 1.
                watches[clause[0]].remove(index)
                watches[clause[1]].remove(index)
                clauses[index] = None
                del self._learned[index]
                self.clauses_deleted += 1
        self.reductions += 1
        self.db_size_floor = len(self._learned)

    # ------------------------------------------------------------------ #
    # Assignment / trail
    # ------------------------------------------------------------------ #
    def _value(self, lit: int) -> Optional[bool]:
        var = abs(lit)
        if var not in self.assignment:
            return None
        value = self.assignment[var]
        return value if lit > 0 else not value

    def _enqueue(self, lit: int, reason_clause: Optional[int]) -> bool:
        current = self._value(lit)
        if current is not None:
            return current
        var = abs(lit)
        self.assignment[var] = lit > 0
        self.level[var] = self._decision_level()
        self.reason[var] = reason_clause
        self.trail.append(lit)
        return True

    def _decision_level(self) -> int:
        return len(self.trail_lim)

    # ------------------------------------------------------------------ #
    # Propagation
    # ------------------------------------------------------------------ #
    def _propagate(self) -> Optional[int]:
        """Unit propagation; returns a conflicting clause index or None.

        This is the solver's hot loop (it dominates wall time on every
        bit-blasted query), so the attribute lookups and the two-watched
        literal value tests are manually inlined with hoisted locals.  The
        logic — and therefore the search trajectory — is identical to the
        straightforward form it replaced.
        """
        assignment = self.assignment
        trail = self.trail
        clauses = self.clauses
        watches = self.watches
        levels = self.level
        reasons = self.reason
        current_level = len(self.trail_lim)
        head = self.propagation_head
        processed = 0
        visits = 0
        result: Optional[int] = None
        while head < len(trail):
            lit = trail[head]
            head += 1
            processed += 1
            false_lit = -lit
            watch_list = watches.get(false_lit)
            if not watch_list:
                continue
            new_watch_list: List[int] = []
            i = 0
            n = len(watch_list)
            visits += n
            conflict: Optional[int] = None
            while i < n:
                clause_index = watch_list[i]
                i += 1
                clause = clauses[clause_index]
                # Ensure the false literal is in position 1.
                if clause[0] == false_lit:
                    clause[0] = clause[1]
                    clause[1] = false_lit
                first = clause[0]
                first_var = first if first > 0 else -first
                first_value = assignment.get(first_var)
                if first_value is not None and \
                        (first_value if first > 0 else not first_value):
                    new_watch_list.append(clause_index)
                    continue
                # Look for a replacement watch (any non-false literal).
                found = False
                for k in range(2, len(clause)):
                    other = clause[k]
                    other_var = other if other > 0 else -other
                    other_value = assignment.get(other_var)
                    if other_value is None or \
                            (other_value if other > 0 else not other_value):
                        clause[1] = other
                        clause[k] = false_lit
                        other_watches = watches.get(other)
                        if other_watches is None:
                            watches[other] = [clause_index]
                        else:
                            other_watches.append(clause_index)
                        found = True
                        break
                if found:
                    continue
                new_watch_list.append(clause_index)
                if first_value is not None:
                    # First is false too: conflict.  Copy the remaining
                    # watches back and report.
                    new_watch_list.extend(watch_list[i:])
                    visits -= n - i
                    conflict = clause_index
                    break
                # Unit: enqueue first with this clause as its reason.
                assignment[first_var] = first > 0
                levels[first_var] = current_level
                reasons[first_var] = clause_index
                trail.append(first)
            watches[false_lit] = new_watch_list
            if conflict is not None:
                result = conflict
                break
        self.propagation_head = head
        self.stats.propagations += processed
        self.propagations_total += processed
        self.watcher_visits += visits
        return result

    # ------------------------------------------------------------------ #
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------ #
    def _analyze(self, conflict_index: int) -> tuple[List[int], int]:
        learnt: List[int] = []
        seen: Dict[int, bool] = {}
        counter = 0
        lit = None
        clause = list(self.clauses[conflict_index])
        trail_index = len(self.trail) - 1
        current_level = self._decision_level()

        while True:
            for q in clause:
                if lit is not None and q == lit:
                    continue
                var = abs(q)
                if not seen.get(var) and self.level.get(var, 0) > 0:
                    seen[var] = True
                    self._bump_activity(var)
                    if self.level[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(q)
            # Find the next literal on the trail to resolve on.
            while True:
                lit = self.trail[trail_index]
                trail_index -= 1
                if seen.get(abs(lit)):
                    break
            counter -= 1
            if counter == 0:
                break
            reason_index = self.reason[abs(lit)]
            clause = list(self.clauses[reason_index]) if reason_index is not None else []
            if reason_index in self._learned:
                # Glucose's dynamic LBD: a learned clause used in conflict
                # analysis gets its LBD refreshed (it can only tighten as
                # the search settles), promoting useful clauses toward the
                # protected glue tier.
                lbd = self._clause_lbd(clause)
                if lbd < self._learned[reason_index]:
                    self._learned[reason_index] = lbd
        learnt.insert(0, -lit)

        if len(learnt) == 1:
            backjump_level = 0
        else:
            levels = sorted((self.level[abs(q)] for q in learnt[1:]), reverse=True)
            backjump_level = levels[0]
        return learnt, backjump_level

    def _analyze_final(self, seed_lits: Sequence[int],
                       extra: Optional[int] = None) -> List[int]:
        """Assumption literals responsible for a root-level-with-assumptions
        conflict (MiniSat's ``analyzeFinal``): walk the implication graph
        from the conflicting literals down to the assumption decisions.
        """
        core: List[int] = [] if extra is None else [extra]
        seen = set()
        stack = [abs(lit) for lit in seed_lits]
        while stack:
            var = stack.pop()
            if var in seen or self.level.get(var, 0) == 0:
                continue
            seen.add(var)
            reason_index = self.reason.get(var)
            if reason_index is None:
                # A decision below/at the assumption level is an assumption.
                core.append(var if self.assignment[var] else -var)
            else:
                stack.extend(abs(lit) for lit in self.clauses[reason_index]
                             if abs(lit) != var)
        return core

    def _bump_activity(self, var: int) -> None:
        self.activity[var] = self.activity.get(var, 0.0) + self.var_inc
        if self.activity[var] > 1e100:
            # Uniform rescaling preserves the relative order of every
            # *other* pair; the variable just bumped still needs its sift.
            for v in self.activity:
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100
        if self.branching == "vsids":
            self._order.bumped(var)

    def _decay_activity(self) -> None:
        self.var_inc /= self.var_decay

    # ------------------------------------------------------------------ #
    # Backtracking
    # ------------------------------------------------------------------ #
    def _cancel_until(self, target_level: int) -> None:
        if self._decision_level() <= target_level:
            return
        boundary = self.trail_lim[target_level]
        lowest = self._static_cursor
        for lit in reversed(self.trail[boundary:]):
            var = abs(lit)
            self.phase[var] = self.assignment[var]
            del self.assignment[var]
            del self.level[var]
            self.reason.pop(var, None)
            if var < lowest:
                lowest = var
            if self.branching == "vsids":
                self._order.insert(var)
        self._static_cursor = lowest
        del self.trail[boundary:]
        del self.trail_lim[target_level:]
        self.propagation_head = min(self.propagation_head, len(self.trail))

    # ------------------------------------------------------------------ #
    # Branching
    # ------------------------------------------------------------------ #
    def _pick_branch_variable(self) -> Optional[int]:
        if self.branching == "static":
            var = self._static_cursor
            while var <= self.num_vars and var in self.assignment:
                var += 1
            self._static_cursor = var
            return var if var <= self.num_vars else None
        # Indexed heap: pop until an unassigned variable appears (assigned
        # ones are re-inserted when the trail unwinds past them).
        while True:
            var = self._order.pop()
            if var is None:
                break
            if var not in self.assignment:
                return var
        # Heap exhausted: fall back to a linear scan (rare).
        for var in range(1, self.num_vars + 1):
            if var not in self.assignment:
                return var
        return None

    def _restart_interval(self, restart_count: int) -> int:
        if self.restart_policy == "geometric":
            return int(self.restart_base * (1.5 ** min(restart_count - 1, 48)))
        return self.restart_base * _luby(restart_count)

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def solve(self, assumptions: Sequence[int] = ()) -> SatResult:
        """Decide the clause database under optional assumption literals.

        Identical contract to :meth:`repro.sat.solver.CDCLSolver.solve`
        (this is the reference implementation it was cloned from).
        """
        start = time.monotonic()
        try:
            return self._solve(assumptions, start)
        finally:
            self.solve_seconds += time.monotonic() - start

    def _solve(self, assumptions: Sequence[int], start: float) -> SatResult:
        self.solve_calls += 1
        self.last_core = None
        self.stats = SatResult(status="unknown")
        if not self._ok:
            self._cancel_until(0)
            self.stats.status = "unsat"
            self.last_core = []
            return self.stats
        if self.propagation_head < len(self.trail):
            # Clauses were added since the last call; restart cleanly from
            # the root so the pending units propagate at level 0.
            self._cancel_until(0)
        else:
            # Trail reuse: keep the longest prefix of existing decision
            # levels that matches the incoming assumptions (assumption
            # literals already implied by a kept level are skipped).  A
            # sequence of related assumption queries — e.g. the
            # lex-minimization pass growing its prefix one literal at a
            # time — then re-propagates almost nothing.
            keep_level = 0
            index = 0
            while index < len(assumptions):
                lit = assumptions[index]
                var = abs(lit)
                if (var in self.assignment and self.level[var] <= keep_level
                        and self._value(lit) is True):
                    index += 1
                    continue
                if (keep_level < self._decision_level()
                        and self.trail[self.trail_lim[keep_level]] == lit):
                    keep_level += 1
                    index += 1
                    continue
                break
            self._cancel_until(keep_level)

        conflict = self._propagate()
        if conflict is not None:
            if self._decision_level() > 0:
                # A kept assumption level conflicts (possible only via trail
                # reuse); fall back to a clean root-level start.
                self._cancel_until(0)
                conflict = self._propagate()
            if conflict is not None:
                # Conflict at level 0: the clause database itself is unsat,
                # for this and every future call.
                self._ok = False
                self.stats.status = "unsat"
                self.last_core = []
                self.stats.time_seconds = time.monotonic() - start
                return self.stats

        for lit in assumptions:
            if lit:
                self.ensure_vars(abs(lit))
            value = self._value(lit)
            if value is False:
                self.stats.status = "unsat"
                self.last_core = self._analyze_final([-lit], extra=lit)
                self.stats.time_seconds = time.monotonic() - start
                return self.stats
            if value is None:
                self.trail_lim.append(len(self.trail))
                self._enqueue(lit, None)
                conflict = self._propagate()
                if conflict is not None:
                    self.stats.status = "unsat"
                    self.last_core = self._analyze_final(self.clauses[conflict])
                    self.stats.time_seconds = time.monotonic() - start
                    return self.stats
        assumption_level = self._decision_level()

        restart_count = 1
        conflicts_until_restart = self._restart_interval(restart_count)
        conflicts_since_restart = 0
        check_counter = 0

        while True:
            check_counter += 1
            if check_counter % 64 == 0:
                expired = (self.deadline is not None
                           and time.monotonic() > self.deadline)
                if expired or (self.should_stop is not None and self.should_stop()):
                    self.stats.status = "unknown"
                    self.stats.time_seconds = time.monotonic() - start
                    self.total_conflicts += self.stats.conflicts
                    return self.stats

            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_since_restart += 1
                if self._decision_level() <= assumption_level:
                    self.stats.status = "unsat"
                    if assumption_level == 0:
                        self._ok = False
                        self.last_core = []
                    else:
                        self.last_core = self._analyze_final(self.clauses[conflict])
                    self.stats.time_seconds = time.monotonic() - start
                    self.total_conflicts += self.stats.conflicts
                    return self.stats
                learnt, backjump_level = self._analyze(conflict)
                lbd = self._clause_lbd(learnt)
                backjump_level = max(backjump_level, assumption_level)
                self._cancel_until(backjump_level)
                self.learned_count += 1
                if len(learnt) == 1:
                    self._enqueue(learnt[0], None)
                else:
                    index = len(self.clauses)
                    self.clauses.append(learnt)
                    self.watches.setdefault(learnt[0], []).append(index)
                    self.watches.setdefault(learnt[1], []).append(index)
                    self._enqueue(learnt[0], index)
                    self._learned[index] = lbd
                    alive = len(self._learned)
                    if alive > self.db_size_peak:
                        self.db_size_peak = alive
                    self._learned_since_reduce += 1
                    if self.reduce_interval and \
                            self._learned_since_reduce >= self.reduce_interval:
                        self._reduce_db()
                self._decay_activity()
                continue

            if conflicts_since_restart >= conflicts_until_restart:
                self.stats.restarts += 1
                restart_count += 1
                conflicts_until_restart = self._restart_interval(restart_count)
                conflicts_since_restart = 0
                self._cancel_until(assumption_level)
                continue

            branch_var = self._pick_branch_variable()
            if branch_var is None:
                model = {var: self.assignment[var] for var in range(1, self.num_vars + 1)
                         if var in self.assignment}
                for var in range(1, self.num_vars + 1):
                    model.setdefault(var, False)
                self.stats.status = "sat"
                self.stats.model = model
                self.stats.time_seconds = time.monotonic() - start
                self.total_conflicts += self.stats.conflicts
                return self.stats

            self.stats.decisions += 1
            self.trail_lim.append(len(self.trail))
            if self.phase_saving:
                preferred_phase = self.phase.get(branch_var, self.default_phase)
            else:
                preferred_phase = self.default_phase
            self._enqueue(branch_var if preferred_phase else -branch_var, None)
