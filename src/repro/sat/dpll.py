"""A simple DPLL SAT solver.

Used as a portfolio member (it sometimes beats CDCL on tiny, highly
structured queries because it has no bookkeeping overhead) and, more
importantly, as an independent oracle in the test suite: the property-based
tests cross-check CDCL against DPLL on random formulas.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.sat.cnf import CNF, complete_model
from repro.sat.solver import SatResult

__all__ = ["DPLLSolver"]


class DPLLSolver:
    """Iterative DPLL with unit propagation and pure-literal elimination."""

    def __init__(self, cnf: CNF, deadline: Optional[float] = None,
                 should_stop: Optional[Callable[[], bool]] = None) -> None:
        self.cnf = cnf
        self.deadline = deadline
        #: Optional cancellation hook set by the portfolio race.
        self.should_stop = should_stop

    def solve(self, assumptions: Sequence[int] = ()) -> SatResult:
        start = time.monotonic()
        result = SatResult(status="unknown")
        clauses = [list(c) for c in self.cnf.clauses]
        assignment: Dict[int, bool] = {}
        for lit in assumptions:
            var, value = abs(lit), lit > 0
            if assignment.get(var, value) != value:
                result.status = "unsat"
                result.time_seconds = time.monotonic() - start
                return result
            assignment[var] = value

        status, model = self._search(clauses, assignment, result, start)
        result.status = status
        if status == "sat":
            result.model = complete_model(self.cnf.num_vars, model)
        result.time_seconds = time.monotonic() - start
        return result

    # ------------------------------------------------------------------ #
    def _simplify(self, clauses: List[List[int]], assignment: Dict[int, bool]):
        """Apply the current assignment; returns (new clauses, conflict?)."""
        simplified: List[List[int]] = []
        for clause in clauses:
            new_clause = []
            satisfied = False
            for lit in clause:
                var = abs(lit)
                if var in assignment:
                    if (lit > 0) == assignment[var]:
                        satisfied = True
                        break
                else:
                    new_clause.append(lit)
            if satisfied:
                continue
            if not new_clause:
                return None, True
            simplified.append(new_clause)
        return simplified, False

    def _search(self, clauses, assignment, result: SatResult, start: float):
        stack = [(clauses, dict(assignment), None)]
        while stack:
            if self.deadline is not None and time.monotonic() > self.deadline:
                return "unknown", {}
            if self.should_stop is not None and self.should_stop():
                return "unknown", {}
            clauses, assignment, decision = stack.pop()
            if decision is not None:
                assignment[abs(decision)] = decision > 0
                result.decisions += 1

            # Unit propagation to fixpoint.
            conflict = False
            while True:
                clauses, conflict = self._simplify(clauses, assignment)
                if conflict:
                    break
                unit = next((c[0] for c in clauses if len(c) == 1), None)
                if unit is None:
                    break
                assignment[abs(unit)] = unit > 0
                result.propagations += 1
            if conflict:
                result.conflicts += 1
                continue
            if not clauses:
                return "sat", assignment

            # Branch on the variable occurring most often.
            counts: Dict[int, int] = {}
            for clause in clauses:
                for lit in clause:
                    counts[abs(lit)] = counts.get(abs(lit), 0) + 1
            branch_var = max(counts, key=counts.get)
            stack.append((clauses, dict(assignment), -branch_var))
            stack.append((clauses, dict(assignment), branch_var))
        return "unsat", {}
