"""A CDCL SAT solver.

This is the main engine behind the reproduction's QF_BV solving (the role
Bitwuzla/STP/Yices2 play in the paper's portfolio).  It implements the
standard modern architecture:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with clause learning and non-chronological
  backjumping,
* exponential VSIDS activity-based branching with phase saving,
* Luby-sequence restarts,
* deadline support so callers can impose per-query timeouts (the paper's
  120 s / 40 s / 20 s per-architecture synthesis budgets).
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.sat.cnf import CNF

__all__ = ["CDCLSolver", "SatResult"]


@dataclass
class SatResult:
    """Outcome of a SAT call."""

    status: str  # "sat", "unsat", or "unknown"
    model: Optional[Dict[int, bool]] = None
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0
    time_seconds: float = 0.0

    @property
    def is_sat(self) -> bool:
        return self.status == "sat"

    @property
    def is_unsat(self) -> bool:
        return self.status == "unsat"

    @property
    def is_unknown(self) -> bool:
        return self.status == "unknown"


def _luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence."""
    while True:
        k = 1
        while (1 << k) - 1 < i:
            k += 1
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i = i - (1 << (k - 1)) + 1


class CDCLSolver:
    """Conflict-driven clause-learning SAT solver over a :class:`CNF`."""

    def __init__(self, cnf: CNF, deadline: Optional[float] = None,
                 should_stop: Optional[Callable[[], bool]] = None) -> None:
        self.cnf = cnf
        self.deadline = deadline
        #: Optional cancellation hook: the portfolio race sets this so losing
        #: members stop burning CPU once a winner has answered.
        self.should_stop = should_stop
        self.num_vars = cnf.num_vars

        # Clause database: list of clauses (lists of literals).
        self.clauses: List[List[int]] = []
        # Watches: literal -> clause indices watching it.
        self.watches: Dict[int, List[int]] = {}
        # Assignment: var -> bool, plus trail bookkeeping.
        self.assignment: Dict[int, bool] = {}
        self.level: Dict[int, int] = {}
        self.reason: Dict[int, Optional[int]] = {}
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.propagation_head = 0

        # VSIDS with a lazy max-heap of (negated activity, var).
        self.activity: Dict[int, float] = {v: 0.0 for v in range(1, self.num_vars + 1)}
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.phase: Dict[int, bool] = {}
        self._order_heap: List[Tuple[float, int]] = [(0.0, v) for v in range(1, self.num_vars + 1)]
        heapq.heapify(self._order_heap)

        self.stats = SatResult(status="unknown")
        self._ok = True

        for clause in cnf.clauses:
            if not self._add_clause(list(clause)):
                self._ok = False
                break

    # ------------------------------------------------------------------ #
    # Clause database
    # ------------------------------------------------------------------ #
    def _add_clause(self, clause: List[int], learnt: bool = False) -> bool:
        clause = list(dict.fromkeys(clause))
        if any(-lit in clause for lit in clause):
            return True  # tautology
        if not clause:
            return False
        if len(clause) == 1:
            return self._enqueue(clause[0], None)
        index = len(self.clauses)
        self.clauses.append(clause)
        self.watches.setdefault(clause[0], []).append(index)
        self.watches.setdefault(clause[1], []).append(index)
        return True

    # ------------------------------------------------------------------ #
    # Assignment / trail
    # ------------------------------------------------------------------ #
    def _value(self, lit: int) -> Optional[bool]:
        var = abs(lit)
        if var not in self.assignment:
            return None
        value = self.assignment[var]
        return value if lit > 0 else not value

    def _enqueue(self, lit: int, reason_clause: Optional[int]) -> bool:
        current = self._value(lit)
        if current is not None:
            return current
        var = abs(lit)
        self.assignment[var] = lit > 0
        self.level[var] = self._decision_level()
        self.reason[var] = reason_clause
        self.trail.append(lit)
        return True

    def _decision_level(self) -> int:
        return len(self.trail_lim)

    # ------------------------------------------------------------------ #
    # Propagation
    # ------------------------------------------------------------------ #
    def _propagate(self) -> Optional[int]:
        """Unit propagation; returns a conflicting clause index or None."""
        while self.propagation_head < len(self.trail):
            lit = self.trail[self.propagation_head]
            self.propagation_head += 1
            self.stats.propagations += 1
            false_lit = -lit
            watch_list = self.watches.get(false_lit, [])
            new_watch_list: List[int] = []
            i = 0
            conflict: Optional[int] = None
            while i < len(watch_list):
                clause_index = watch_list[i]
                i += 1
                clause = self.clauses[clause_index]
                # Ensure the false literal is in position 1.
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) is True:
                    new_watch_list.append(clause_index)
                    continue
                # Look for a replacement watch.
                found = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) is not False:
                        clause[1], clause[k] = clause[k], clause[1]
                        self.watches.setdefault(clause[1], []).append(clause_index)
                        found = True
                        break
                if found:
                    continue
                new_watch_list.append(clause_index)
                if self._value(first) is False:
                    # Conflict: copy the remaining watches back and report.
                    new_watch_list.extend(watch_list[i:])
                    conflict = clause_index
                    break
                self._enqueue(first, clause_index)
            self.watches[false_lit] = new_watch_list
            if conflict is not None:
                return conflict
        return None

    # ------------------------------------------------------------------ #
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------ #
    def _analyze(self, conflict_index: int) -> tuple[List[int], int]:
        learnt: List[int] = []
        seen: Dict[int, bool] = {}
        counter = 0
        lit = None
        clause = list(self.clauses[conflict_index])
        trail_index = len(self.trail) - 1
        current_level = self._decision_level()

        while True:
            for q in clause:
                if lit is not None and q == lit:
                    continue
                var = abs(q)
                if not seen.get(var) and self.level.get(var, 0) > 0:
                    seen[var] = True
                    self._bump_activity(var)
                    if self.level[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(q)
            # Find the next literal on the trail to resolve on.
            while True:
                lit = self.trail[trail_index]
                trail_index -= 1
                if seen.get(abs(lit)):
                    break
            counter -= 1
            if counter == 0:
                break
            reason_index = self.reason[abs(lit)]
            clause = list(self.clauses[reason_index]) if reason_index is not None else []
        learnt.insert(0, -lit)

        if len(learnt) == 1:
            backjump_level = 0
        else:
            levels = sorted((self.level[abs(q)] for q in learnt[1:]), reverse=True)
            backjump_level = levels[0]
        return learnt, backjump_level

    def _bump_activity(self, var: int) -> None:
        self.activity[var] = self.activity.get(var, 0.0) + self.var_inc
        if self.activity[var] > 1e100:
            for v in self.activity:
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100
            self._order_heap = [(-self.activity[v], v) for v in self.activity
                                if v not in self.assignment]
            heapq.heapify(self._order_heap)
        else:
            heapq.heappush(self._order_heap, (-self.activity[var], var))

    def _decay_activity(self) -> None:
        self.var_inc /= self.var_decay

    # ------------------------------------------------------------------ #
    # Backtracking
    # ------------------------------------------------------------------ #
    def _cancel_until(self, target_level: int) -> None:
        if self._decision_level() <= target_level:
            return
        boundary = self.trail_lim[target_level]
        for lit in reversed(self.trail[boundary:]):
            var = abs(lit)
            self.phase[var] = self.assignment[var]
            del self.assignment[var]
            del self.level[var]
            self.reason.pop(var, None)
            heapq.heappush(self._order_heap, (-self.activity.get(var, 0.0), var))
        del self.trail[boundary:]
        del self.trail_lim[target_level:]
        self.propagation_head = min(self.propagation_head, len(self.trail))

    # ------------------------------------------------------------------ #
    # Branching
    # ------------------------------------------------------------------ #
    def _pick_branch_variable(self) -> Optional[int]:
        # Lazy-deletion heap: entries may be stale (already assigned or with
        # an outdated activity); pop until a fresh unassigned entry appears.
        while self._order_heap:
            negated_activity, var = heapq.heappop(self._order_heap)
            if var in self.assignment:
                continue
            if -negated_activity != self.activity.get(var, 0.0):
                heapq.heappush(self._order_heap, (-self.activity.get(var, 0.0), var))
                continue
            return var
        # Heap exhausted: fall back to a linear scan (rare).
        for var in range(1, self.num_vars + 1):
            if var not in self.assignment:
                return var
        return None

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def solve(self, assumptions: Sequence[int] = ()) -> SatResult:
        start = time.monotonic()
        self.stats = SatResult(status="unknown")
        if not self._ok:
            self.stats.status = "unsat"
            return self.stats

        conflict = self._propagate()
        if conflict is not None:
            self.stats.status = "unsat"
            self.stats.time_seconds = time.monotonic() - start
            return self.stats

        for lit in assumptions:
            if self._value(lit) is False:
                self.stats.status = "unsat"
                self.stats.time_seconds = time.monotonic() - start
                return self.stats
            if self._value(lit) is None:
                self.trail_lim.append(len(self.trail))
                self._enqueue(lit, None)
                conflict = self._propagate()
                if conflict is not None:
                    self.stats.status = "unsat"
                    self.stats.time_seconds = time.monotonic() - start
                    return self.stats
        assumption_level = self._decision_level()

        restart_count = 1
        conflicts_until_restart = 32 * _luby(restart_count)
        conflicts_since_restart = 0
        check_counter = 0

        while True:
            check_counter += 1
            if check_counter % 64 == 0:
                expired = (self.deadline is not None
                           and time.monotonic() > self.deadline)
                if expired or (self.should_stop is not None and self.should_stop()):
                    self.stats.status = "unknown"
                    self.stats.time_seconds = time.monotonic() - start
                    return self.stats

            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_since_restart += 1
                if self._decision_level() <= assumption_level:
                    self.stats.status = "unsat"
                    self.stats.time_seconds = time.monotonic() - start
                    return self.stats
                learnt, backjump_level = self._analyze(conflict)
                backjump_level = max(backjump_level, assumption_level)
                self._cancel_until(backjump_level)
                if len(learnt) == 1:
                    self._enqueue(learnt[0], None)
                else:
                    index = len(self.clauses)
                    self.clauses.append(learnt)
                    self.watches.setdefault(learnt[0], []).append(index)
                    self.watches.setdefault(learnt[1], []).append(index)
                    self._enqueue(learnt[0], index)
                self._decay_activity()
                continue

            if conflicts_since_restart >= conflicts_until_restart:
                self.stats.restarts += 1
                restart_count += 1
                conflicts_until_restart = 32 * _luby(restart_count)
                conflicts_since_restart = 0
                self._cancel_until(assumption_level)
                continue

            branch_var = self._pick_branch_variable()
            if branch_var is None:
                model = {var: self.assignment[var] for var in range(1, self.num_vars + 1)
                         if var in self.assignment}
                for var in range(1, self.num_vars + 1):
                    model.setdefault(var, False)
                self.stats.status = "sat"
                self.stats.model = model
                self.stats.time_seconds = time.monotonic() - start
                return self.stats

            self.stats.decisions += 1
            self.trail_lim.append(len(self.trail))
            preferred_phase = self.phase.get(branch_var, False)
            self._enqueue(branch_var if preferred_phase else -branch_var, None)


def solve_cnf(cnf: CNF, deadline: Optional[float] = None,
              assumptions: Sequence[int] = ()) -> SatResult:
    """One-shot convenience wrapper around :class:`CDCLSolver`."""
    return CDCLSolver(cnf, deadline=deadline).solve(assumptions)
