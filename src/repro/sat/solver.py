"""An incremental CDCL SAT solver on a flat clause arena.

This is the main engine behind the reproduction's QF_BV solving (the role
Bitwuzla/STP/Yices2 play in the paper's portfolio).  It implements the
standard modern architecture:

* two-watched-literal unit propagation with MiniSat-style blocker literals,
* first-UIP conflict analysis with clause learning and non-chronological
  backjumping,
* exponential VSIDS activity-based branching with phase saving,
* Luby-sequence (or geometric) restarts,
* glucose-style learned-clause database reduction: every learned clause is
  stamped with its literal-block distance (LBD — the number of distinct
  decision levels among its literals) at learning time, and once
  ``reduce_interval`` new clauses have been learned the worst half of the
  deletable learned database is dropped (highest LBD first).  Glue clauses
  (LBD ≤ ``max_lbd_keep``), clauses currently acting as the reason for an
  assigned literal, and level-0 units are never deleted, so propagation
  stays sound and ``last_core`` extraction keeps working mid-search.
  Learned clauses are redundant (entailed by the problem clauses), so
  deletion can only change the search trajectory, never an answer,
* deadline support so callers can impose per-query timeouts (the paper's
  120 s / 40 s / 20 s per-architecture synthesis budgets).

Memory layout (the flat arena)
------------------------------

All hot state lives in contiguous, integer-indexed stores instead of the
dict-of-lists layout the solver started with (kept verbatim as
:class:`repro.sat.legacy.LegacyCDCLSolver` for one release):

* **clause arena** — one flat int sequence holding every clause as a
  ``[size, lbd, flags]`` header followed by its literal run.  A clause is
  addressed by the arena offset of its first literal, so ``arena[off - 3]``
  is its size, ``arena[off - 2]`` its current LBD and ``arena[off - 1]``
  its flags (``0`` problem, ``1`` learnt, ``-1`` deleted-pending-
  compaction).  The backing store is a plain python list rather than
  ``array('i')``: an ``array`` subscript materializes a fresh int object
  on every read, which benchmarks ~2x slower than a list subscript under
  CPython 3.11's adaptive interpreter, and the propagation loop is all
  reads (see EXPERIMENTS.md).  Deletion is tombstone-free:
  :meth:`CDCLSolver._reduce_db` compacts the arena in place and relocates
  every watcher, reason and learned-table offset through one old→new
  offset map.
* **watcher arrays** — ``watches[lit]`` is a flat python list of
  ``offset, blocker`` pairs, indexed directly by the *literal* (negative
  literals use python's negative indexing into the same list).  The
  blocker is a cached literal of the clause; when it is satisfied and still
  one of the two watched slots, the visit resolves on array reads alone —
  no clause dereference, no watcher movement.
* **assignment / level / reason / trail** — ``vals`` is a literal-indexed
  int list (``1`` true, ``-1`` false, ``0`` unassigned; ``vals[lit]`` and
  ``vals[-lit]`` are kept in lockstep, so sign tests disappear from the
  hot loop), ``levels``/``reasons`` are variable-indexed int lists
  (``reasons[var]`` holds an arena offset or ``-1``), phases live in a
  ``bytearray`` and the trail is a plain int list.

The propagation loop replays the legacy algorithm *visit for visit*: the
blocker fast path only fires when it is provably equivalent to the legacy
outcome (blocker satisfied **and** still watched), and the slot-0/1
normalization swap is performed even on satisfied visits because clause
literal order feeds conflict analysis and core extraction.  The search
trajectory — conflicts, decisions, propagations, restarts, learned
clauses, models, unsat cores — is therefore bit-for-bit identical to
:class:`~repro.sat.legacy.LegacyCDCLSolver`, which the differential fuzz
suite asserts directly.

The solver is *incremental*: :meth:`CDCLSolver.add_clause` may be called
after a :meth:`CDCLSolver.solve`, and repeated ``solve(assumptions=...)``
calls reuse the learned-clause database, variable activities and saved
phases of earlier calls.  When a query is unsatisfiable under assumptions,
:attr:`CDCLSolver.last_core` holds the subset of assumption literals
responsible (the final-conflict analysis of MiniSat's ``analyzeFinal``).
This is what lets one solver context survive a whole CEGIS run instead of
being cold-started every iteration.

The branching/restart/phase behavior is configurable so the backend
registry can race genuinely diversified members.  The ``branching="static"``
+ ``phase_saving=False`` configuration is special: decisions always pick
the smallest unassigned variable and assign the fixed ``default_phase``, so
the first model found is the lexicographically smallest satisfying
assignment.  That model is *canonical* — independent of which entailed
learned clauses happen to be in the database — which is what makes a warm
incremental solver and a cold from-scratch solver return identical models
on identical formulas (the equality guarantee incremental CEGIS relies on).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.sat.cnf import CNF, complete_model

__all__ = ["CDCLSolver", "SatResult"]


@dataclass
class SatResult:
    """Outcome of a SAT call."""

    status: str  # "sat", "unsat", or "unknown"
    model: Optional[Dict[int, bool]] = None
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0
    time_seconds: float = 0.0

    @property
    def is_sat(self) -> bool:
        return self.status == "sat"

    @property
    def is_unsat(self) -> bool:
        return self.status == "unsat"

    @property
    def is_unknown(self) -> bool:
        return self.status == "unknown"


def _luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence."""
    while True:
        k = 1
        while (1 << k) - 1 < i:
            k += 1
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i = i - (1 << (k - 1)) + 1


class _VarOrder:
    """Indexed binary max-heap over a dict of variable activities.

    The dict-backed variant survives for :class:`repro.sat.legacy.
    LegacyCDCLSolver`; the arena solver uses the list-backed
    :class:`_ArenaVarOrder` below with identical selection semantics.
    Priority is highest activity first, ties broken toward the smallest
    variable index.
    """

    __slots__ = ("activity", "heap", "pos")

    def __init__(self, activity: Dict[int, float]) -> None:
        self.activity = activity
        self.heap: List[int] = []
        self.pos: Dict[int, int] = {}

    def _precedes(self, a: int, b: int) -> bool:
        activity = self.activity
        aa = activity.get(a, 0.0)
        ab = activity.get(b, 0.0)
        return aa > ab or (aa == ab and a < b)

    def _sift_up(self, i: int) -> None:
        heap, pos = self.heap, self.pos
        var = heap[i]
        while i > 0:
            parent = (i - 1) >> 1
            if not self._precedes(var, heap[parent]):
                break
            heap[i] = heap[parent]
            pos[heap[i]] = i
            i = parent
        heap[i] = var
        pos[var] = i

    def _sift_down(self, i: int) -> None:
        heap, pos = self.heap, self.pos
        size = len(heap)
        var = heap[i]
        while True:
            left = 2 * i + 1
            if left >= size:
                break
            best = left
            right = left + 1
            if right < size and self._precedes(heap[right], heap[left]):
                best = right
            if not self._precedes(heap[best], var):
                break
            heap[i] = heap[best]
            pos[heap[i]] = i
            i = best
        heap[i] = var
        pos[var] = i

    def insert(self, var: int) -> None:
        if var in self.pos:
            return
        self.heap.append(var)
        self._sift_up(len(self.heap) - 1)

    def bumped(self, var: int) -> None:
        """Re-establish the heap order after ``var``'s activity increased."""
        i = self.pos.get(var)
        if i is not None:
            self._sift_up(i)

    def pop(self) -> Optional[int]:
        heap, pos = self.heap, self.pos
        if not heap:
            return None
        top = heap[0]
        del pos[top]
        last = heap.pop()
        if heap:
            heap[0] = last
            pos[last] = 0
            self._sift_down(0)
        return top


class _ArenaVarOrder:
    """The same indexed max-heap over a variable-indexed activity *list*.

    Selection semantics are identical to :class:`_VarOrder` (highest
    activity first, ties toward the smallest variable index), but the
    comparison is inlined into the sift loops: the heap churns on every
    backtrack (each unassigned variable is re-inserted) and every branch
    decision, and a ``_precedes`` method call per heap level is the
    single largest cost outside propagation.  Two distinct variables are
    never equal, so "``b`` does not precede ``a``" is exactly
    ``ab < aa or (ab == aa and b > a)``.
    """

    __slots__ = ("activity", "heap", "pos")

    def __init__(self, activity: List[float]) -> None:
        self.activity = activity
        self.heap: List[int] = []
        self.pos: Dict[int, int] = {}

    def _sift_up(self, i: int) -> None:
        heap, pos, activity = self.heap, self.pos, self.activity
        var = heap[i]
        av = activity[var]
        while i > 0:
            parent = (i - 1) >> 1
            pv = heap[parent]
            pa = activity[pv]
            if av < pa or (av == pa and var > pv):
                break
            heap[i] = pv
            pos[pv] = i
            i = parent
        heap[i] = var
        pos[var] = i

    def _sift_down(self, i: int) -> None:
        heap, pos, activity = self.heap, self.pos, self.activity
        size = len(heap)
        var = heap[i]
        av = activity[var]
        while True:
            left = 2 * i + 1
            if left >= size:
                break
            best = left
            bv = heap[left]
            ba = activity[bv]
            right = left + 1
            if right < size:
                rv = heap[right]
                ra = activity[rv]
                if ra > ba or (ra == ba and rv < bv):
                    best = right
                    bv = rv
                    ba = ra
            if ba < av or (ba == av and bv > var):
                break
            heap[i] = bv
            pos[bv] = i
            i = best
        heap[i] = var
        pos[var] = i

    def insert(self, var: int) -> None:
        if var in self.pos:
            return
        self.heap.append(var)
        self._sift_up(len(self.heap) - 1)

    def bumped(self, var: int) -> None:
        """Re-establish the heap order after ``var``'s activity increased."""
        i = self.pos.get(var)
        if i is not None:
            self._sift_up(i)

    def pop(self) -> Optional[int]:
        heap, pos = self.heap, self.pos
        if not heap:
            return None
        top = heap[0]
        del pos[top]
        last = heap.pop()
        if heap:
            heap[0] = last
            pos[last] = 0
            self._sift_down(0)
        return top


class CDCLSolver:
    """Conflict-driven clause-learning SAT solver over a :class:`CNF`.

    ``cnf`` may be omitted to start from an empty clause database and grow
    it with :meth:`add_clause` (the incremental usage).  The constructor
    copies clause literals into the arena, so the input CNF is never
    mutated by the solver's watch reordering.
    """

    def __init__(self, cnf: Optional[CNF] = None, deadline: Optional[float] = None,
                 should_stop: Optional[Callable[[], bool]] = None, *,
                 var_decay: float = 0.95,
                 default_phase: bool = False,
                 phase_saving: bool = True,
                 branching: str = "vsids",
                 restart_policy: str = "luby",
                 restart_base: int = 32,
                 reduce_interval: int = 2000,
                 max_lbd_keep: int = 3) -> None:
        if branching not in ("vsids", "static"):
            raise ValueError(f"unknown branching heuristic {branching!r}")
        if restart_policy not in ("luby", "geometric"):
            raise ValueError(f"unknown restart policy {restart_policy!r}")
        if reduce_interval < 0:
            raise ValueError("reduce_interval must be >= 0 (0 disables reduction)")
        if max_lbd_keep < 0:
            raise ValueError("max_lbd_keep must be >= 0")
        self.cnf = cnf
        self.deadline = deadline
        #: Optional cancellation hook: the portfolio race sets this so losing
        #: members stop burning CPU once a winner has answered.
        self.should_stop = should_stop
        self.num_vars = 0

        self.var_decay = var_decay
        self.default_phase = default_phase
        self.phase_saving = phase_saving
        self.branching = branching
        self.restart_policy = restart_policy
        self.restart_base = restart_base
        #: Learned clauses between database reductions; 0 disables reduction.
        self.reduce_interval = reduce_interval
        #: Glue threshold: learned clauses with LBD <= this are never deleted.
        self.max_lbd_keep = max_lbd_keep

        #: The clause arena: ``[size, lbd, flags, lit, lit, ...]`` runs.
        self._arena: List[int] = []
        # Literal-indexed stores sized 2*cap+1: slot ``lit`` for positive
        # literals, python negative indexing for negative ones.  ``_cap``
        # doubles geometrically so growth (a re-layout, since negative
        # indices count from the end) is amortized O(1) per variable.
        self._cap = 0
        self._vals: List[int] = [0]
        self._watches: List[List[int]] = [[]]
        # Variable-indexed stores (slot 0 unused).
        self._levels: List[int] = [0]
        self._reasons: List[int] = [-1]
        self._phase = bytearray(1)  # 0 unset, 1 saved-False, 2 saved-True
        #: VSIDS activities, variable-indexed (list-backed max-heap order).
        self.activity: List[float] = [0.0]
        self.var_inc = 1.0
        self._order = _ArenaVarOrder(self.activity)

        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.propagation_head = 0
        # Static branching walks variables in index order; the cursor only
        # ever needs to move back when backtracking unassigns a smaller var.
        self._static_cursor = 1

        self.stats = SatResult(status="unknown")
        #: Cumulative counters surviving across ``solve`` calls (the
        #: incremental-session statistics).
        self.learned_count = 0
        self.total_conflicts = 0
        self.solve_calls = 0
        #: Cumulative propagation telemetry: trail literals propagated,
        #: watcher entries examined, and wall seconds spent inside
        #: ``solve`` — the numerators and denominator of the
        #: ``propagations_per_second`` / ``watcher_visits_per_propagation``
        #: metrics threaded through CEGIS results and the bench snapshot.
        self.propagations_total = 0
        self.watcher_visits = 0
        self.solve_seconds = 0.0
        #: Learned-clause database: arena offset -> current LBD, in
        #: learning order (compaction renumbers offsets but preserves it).
        self._learned: Dict[int, int] = {}
        self._learned_since_reduce = 0
        #: Learned clauses deleted by database reductions (cumulative).
        self.clauses_deleted = 0
        #: Most learned clauses simultaneously alive over the solver's life.
        self.db_size_peak = 0
        #: Learned clauses alive right after the most recent reduction.
        self.db_size_floor = 0
        #: Database reductions performed (cumulative).
        self.reductions = 0
        #: After an unsat answer under assumptions: the subset of assumption
        #: literals whose conjunction is inconsistent with the clauses.
        self.last_core: Optional[List[int]] = None
        self._ok = True

        if cnf is not None:
            self.ensure_vars(cnf.num_vars)
            for clause in cnf.clauses:
                if not self._add_clause(list(clause)):
                    self._ok = False
                    break

    # ------------------------------------------------------------------ #
    # Variable universe / storage growth
    # ------------------------------------------------------------------ #
    def _grow_to(self, new_cap: int) -> None:
        """Re-layout the literal-indexed stores for a larger capacity."""
        old_vals = self._vals
        old_watches = self._watches
        new_vals = [0] * (2 * new_cap + 1)
        new_watches: List[List[int]] = [[] for _ in range(2 * new_cap + 1)]
        for var in range(1, self.num_vars + 1):
            new_vals[var] = old_vals[var]
            new_vals[-var] = old_vals[-var]
            new_watches[var] = old_watches[var]
            new_watches[-var] = old_watches[-var]
        self._vals = new_vals
        self._watches = new_watches
        delta = new_cap - self._cap
        self._levels.extend([0] * delta)
        self._reasons.extend([-1] * delta)
        self._phase.extend(bytes(delta))
        self.activity.extend([0.0] * delta)
        self._cap = new_cap

    def ensure_vars(self, num_vars: int) -> None:
        """Grow the variable universe (new AIG nodes in a shared namespace)."""
        if num_vars > self._cap:
            self._grow_to(max(num_vars, 2 * self._cap, 16))
        for var in range(self.num_vars + 1, num_vars + 1):
            self._order.insert(var)
        if num_vars > self.num_vars:
            self.num_vars = num_vars

    # ------------------------------------------------------------------ #
    # Clause database
    # ------------------------------------------------------------------ #
    def _alloc_clause(self, literals: Sequence[int], lbd: int, learnt: bool) -> int:
        """Append a header+literal run; returns the literal-start offset."""
        arena = self._arena
        off = len(arena) + 3
        arena.append(len(literals))
        arena.append(lbd)
        arena.append(1 if learnt else 0)
        arena.extend(literals)
        return off

    def _attach(self, off: int, first: int, second: int) -> None:
        """Watch slots 0/1, each entry carrying the other watch as blocker."""
        watches = self._watches
        wl = watches[first]
        wl.append(off)
        wl.append(second)
        wl = watches[second]
        wl.append(off)
        wl.append(first)

    def add_clause(self, literals: Sequence[int]) -> bool:
        """Add a clause to a (possibly already solved-on) solver.

        This is the incremental entry point: the solver first backtracks to
        decision level 0, then attaches the clause with the root-level
        assignment taken into account — literals already false at level 0
        are dropped (they are false forever), and a clause already satisfied
        at level 0 is skipped entirely.  Returns ``False`` once the clause
        database has become unsatisfiable.
        """
        self._cancel_until(0)
        clause = [int(lit) for lit in literals]
        if clause:
            self.ensure_vars(max(abs(lit) for lit in clause))
        clause = list(dict.fromkeys(clause))
        if any(-lit in clause for lit in clause):
            return self._ok  # tautology
        reduced: List[int] = []
        for lit in clause:
            value = self._value(lit)
            if value is True:
                return self._ok  # satisfied at level 0 forever
            if value is None:
                reduced.append(lit)
        if not reduced:
            self._ok = False
            return False
        if len(reduced) == 1:
            if not self._enqueue(reduced[0], -1):
                self._ok = False
            return self._ok
        off = self._alloc_clause(reduced, 0, False)
        self._attach(off, reduced[0], reduced[1])
        return self._ok

    def _add_clause(self, clause: List[int]) -> bool:
        """Construction-time clause attachment (level 0, trail unpropagated)."""
        clause = list(dict.fromkeys(clause))
        if any(-lit in clause for lit in clause):
            return True  # tautology
        if not clause:
            return False
        if len(clause) == 1:
            return self._enqueue(clause[0], -1)
        off = self._alloc_clause(clause, 0, False)
        self._attach(off, clause[0], clause[1])
        return True

    def _learn_clause(self, learnt: Sequence[int], lbd: int) -> int:
        """Attach a learned clause (slots 0/1 watched) and track its LBD."""
        off = self._alloc_clause(learnt, lbd, True)
        self._attach(off, learnt[0], learnt[1])
        self._learned[off] = lbd
        alive = len(self._learned)
        if alive > self.db_size_peak:
            self.db_size_peak = alive
        self._learned_since_reduce += 1
        return off

    @property
    def learned_alive(self) -> int:
        """Learned clauses currently in the database (watch lists)."""
        return len(self._learned)

    def clause_literals(self, ref: int) -> List[int]:
        """The literal run of the clause at arena offset ``ref``."""
        arena = self._arena
        return arena[ref:ref + arena[ref - 3]]

    def iter_clause_refs(self) -> Iterator[Tuple[int, int, int, int]]:
        """Walk the arena: yields ``(offset, size, lbd, flags)`` per clause."""
        arena = self._arena
        pos = 0
        total = len(arena)
        while pos < total:
            size = arena[pos]
            yield pos + 3, size, arena[pos + 1], arena[pos + 2]
            pos += size + 3

    def watcher_entries(self) -> Iterator[Tuple[int, int, int]]:
        """Every live watcher as ``(watched literal, offset, blocker)``."""
        watches = self._watches
        for var in range(1, self.num_vars + 1):
            for lit in (var, -var):
                wl = watches[lit]
                for i in range(0, len(wl), 2):
                    yield lit, wl[i], wl[i + 1]

    @property
    def arena_words(self) -> int:
        """Current arena footprint in 32-bit words (headers + literals)."""
        return len(self._arena)

    def _clause_lbd(self, clause: Sequence[int]) -> int:
        levels = self._levels
        return len({levels[lit if lit > 0 else -lit] for lit in clause})

    def _reduce_db(self) -> None:
        """Delete the worst half of the deletable learned clauses.

        "Worst" is highest LBD first, larger clauses first among equal LBD,
        oldest first among equal size — a deterministic order (compaction
        renumbers offsets but preserves their creation order, so the
        tie-break matches the legacy index-based one).  Protected (and
        therefore never deletable): glue clauses (LBD <= ``max_lbd_keep``)
        and locked clauses (the current reason of an assigned literal;
        deleting one would orphan conflict analysis and ``last_core``
        extraction).  Level-0 units never enter the learned database in the
        first place — they are enqueued directly.

        Deletion is tombstone-free: victims are flagged in their headers,
        then one compaction pass slides the survivors down the arena and
        relocates every watcher, reason and learned-table offset.  The
        watcher rewrite replaces the legacy per-clause ``list.remove``
        (O(watch-list length) per deletion, quadratic over a reduction)
        with a single linear sweep over the watcher arrays.
        """
        self._learned_since_reduce = 0
        reasons = self._reasons
        locked = set()
        for lit in self.trail:
            reason_off = reasons[lit if lit > 0 else -lit]
            if reason_off >= 0:
                locked.add(reason_off)
        learned = self._learned
        candidates = [(lbd, off) for off, lbd in learned.items()
                      if lbd > self.max_lbd_keep and off not in locked]
        if candidates:
            arena = self._arena
            candidates.sort(key=lambda item: (-item[0],
                                              -arena[item[1] - 3],
                                              item[1]))
            victims = candidates[:len(candidates) // 2]
            if victims:
                for _, off in victims:
                    arena[off - 1] = -1
                    del learned[off]
                    self.clauses_deleted += 1
                self._compact_arena()
        self.reductions += 1
        self.db_size_floor = len(self._learned)

    def _compact_arena(self) -> None:
        """Slide surviving clauses over deleted ones; relocate all offsets."""
        arena = self._arena
        relocate: Dict[int, int] = {}
        read = 0
        write = 0
        total = len(arena)
        while read < total:
            span = arena[read] + 3
            if arena[read + 2] >= 0:
                if write != read:
                    arena[write:write + span] = arena[read:read + span]
                relocate[read + 3] = write + 3
                write += span
            read += span
        del arena[write:]
        # One linear sweep rewrites every watcher (dropping the victims')
        # and preserves per-list order, exactly like the legacy removal.
        for wl in self._watches:
            if not wl:
                continue
            j = 0
            for i in range(0, len(wl), 2):
                new_off = relocate.get(wl[i])
                if new_off is None:
                    continue
                wl[j] = new_off
                wl[j + 1] = wl[i + 1]
                j += 2
            del wl[j:]
        reasons = self._reasons
        for lit in self.trail:
            var = lit if lit > 0 else -lit
            reason_off = reasons[var]
            if reason_off >= 0:
                reasons[var] = relocate[reason_off]
        self._learned = {relocate[off]: lbd for off, lbd in self._learned.items()}

    # ------------------------------------------------------------------ #
    # Assignment / trail
    # ------------------------------------------------------------------ #
    def _value(self, lit: int) -> Optional[bool]:
        value = self._vals[lit]
        if value == 0:
            return None
        return value > 0

    def _enqueue(self, lit: int, reason_off: int) -> bool:
        vals = self._vals
        current = vals[lit]
        if current != 0:
            return current > 0
        var = lit if lit > 0 else -lit
        vals[lit] = 1
        vals[-lit] = -1
        self._levels[var] = len(self.trail_lim)
        self._reasons[var] = reason_off
        self.trail.append(lit)
        return True

    def _decision_level(self) -> int:
        return len(self.trail_lim)

    # ------------------------------------------------------------------ #
    # Propagation
    # ------------------------------------------------------------------ #
    def _propagate(self) -> Optional[int]:
        """Unit propagation; returns a conflicting arena offset or None.

        The hot loop.  Every watcher visit first tries the blocker fast
        path: if the cached blocker literal is satisfied *and* is still one
        of the clause's two watched slots, the legacy algorithm would have
        kept the watch untouched — so the visit resolves on three array
        reads (plus the slot-normalization swap legacy performs, because
        clause literal order feeds conflict analysis).  Stale blockers fall
        through to the full visit, which replays the legacy replacement
        search literal for literal; the search trajectory is bit-for-bit
        identical to :class:`~repro.sat.legacy.LegacyCDCLSolver`.
        Surviving watchers are compacted in place (no per-visit list
        allocation).
        """
        vals = self._vals
        arena = self._arena
        watches = self._watches
        trail = self.trail
        levels = self._levels
        reasons = self._reasons
        current_level = len(self.trail_lim)
        start_head = self.propagation_head
        head = start_head
        visits = 0
        result: Optional[int] = None
        n_trail = len(trail)
        while head < n_trail:
            lit = trail[head]
            head += 1
            false_lit = -lit
            wl = watches[false_lit]
            if not wl:
                continue
            n = len(wl)
            visits += n >> 1
            i = 0
            j = 0
            conflict = -1
            while i < n:
                off = wl[i]
                blocker = wl[i + 1]
                if vals[blocker] > 0:
                    if arena[off] == blocker:
                        # Kept watcher: only write it back once a dropped
                        # watcher has opened a gap (j lags i).
                        if j != i:
                            wl[j] = off
                            wl[j + 1] = blocker
                        i += 2
                        j += 2
                        continue
                    if arena[off + 1] == blocker:
                        # Normalize: the false literal moves to slot 1 even
                        # on a satisfied visit (literal order is trajectory-
                        # relevant downstream).
                        arena[off] = blocker
                        arena[off + 1] = false_lit
                        if j != i:
                            wl[j] = off
                            wl[j + 1] = blocker
                        i += 2
                        j += 2
                        continue
                    # Stale blocker (no longer watched): full visit.
                i += 2
                if arena[off] == false_lit:
                    first = arena[off + 1]
                    arena[off] = first
                    arena[off + 1] = false_lit
                else:
                    first = arena[off]
                first_value = vals[first]
                if first_value > 0:
                    # Kept; refresh the blocker to the satisfied literal.
                    wl[j] = off
                    wl[j + 1] = first
                    j += 2
                    continue
                # Look for a replacement watch (any non-false literal).
                k = off + 2
                end = off + arena[off - 3]
                found = False
                while k < end:
                    other = arena[k]
                    if vals[other] >= 0:
                        arena[off + 1] = other
                        arena[k] = false_lit
                        other_wl = watches[other]
                        other_wl.append(off)
                        other_wl.append(first)
                        found = True
                        break
                    k += 1
                if found:
                    continue
                wl[j] = off
                wl[j + 1] = first
                j += 2
                if first_value < 0:
                    # First is false too: conflict.  Slide the remaining
                    # watchers down over the moved ones and report.
                    if j != i:
                        wl[j:] = wl[i:]
                    visits -= (n - i) >> 1
                    conflict = off
                    break
                # Unit: enqueue first with this clause as its reason.
                first_var = first if first > 0 else -first
                vals[first] = 1
                vals[-first] = -1
                levels[first_var] = current_level
                reasons[first_var] = off
                trail.append(first)
                n_trail += 1
            else:
                if j != n:
                    del wl[j:]
            if conflict >= 0:
                result = conflict
                break
        self.propagation_head = head
        processed = head - start_head
        self.stats.propagations += processed
        self.propagations_total += processed
        self.watcher_visits += visits
        return result

    # ------------------------------------------------------------------ #
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------ #
    def _analyze(self, conflict_off: int) -> Tuple[List[int], int]:
        arena = self._arena
        levels = self._levels
        trail = self.trail
        learned = self._learned
        learnt: List[int] = []
        seen: Dict[int, bool] = {}
        counter = 0
        lit: Optional[int] = None
        clause = arena[conflict_off:conflict_off + arena[conflict_off - 3]]
        trail_index = len(trail) - 1
        current_level = len(self.trail_lim)
        # The bump loop is hot (every distinct variable in the implication
        # cone, every conflict) — inline _bump_activity with a local
        # var_inc, re-synced on the (rare) rescale.
        activity = self.activity
        var_inc = self.var_inc
        vsids = self.branching == "vsids"
        order_pos = self._order.pos
        order_sift_up = self._order._sift_up

        while True:
            for q in clause:
                if lit is not None and q == lit:
                    continue
                var = q if q > 0 else -q
                if not seen.get(var) and levels[var] > 0:
                    seen[var] = True
                    bumped = activity[var] + var_inc
                    activity[var] = bumped
                    if bumped > 1e100:
                        # Uniform rescaling preserves the relative order of
                        # every *other* pair; the variable just bumped
                        # still needs its sift.
                        for v in range(1, len(activity)):
                            activity[v] *= 1e-100
                        var_inc *= 1e-100
                        self.var_inc = var_inc
                    if vsids:
                        heap_index = order_pos.get(var)
                        if heap_index is not None:
                            order_sift_up(heap_index)
                    if levels[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(q)
            # Find the next literal on the trail to resolve on.
            while True:
                lit = trail[trail_index]
                trail_index -= 1
                if seen.get(abs(lit)):
                    break
            counter -= 1
            if counter == 0:
                break
            reason_off = self._reasons[abs(lit)]
            if reason_off >= 0:
                clause = arena[reason_off:reason_off + arena[reason_off - 3]]
                old_lbd = learned.get(reason_off)
                if old_lbd is not None:
                    # Glucose's dynamic LBD: a learned clause used in
                    # conflict analysis gets its LBD refreshed (it can only
                    # tighten as the search settles), promoting useful
                    # clauses toward the protected glue tier.
                    lbd = self._clause_lbd(clause)
                    if lbd < old_lbd:
                        learned[reason_off] = lbd
                        arena[reason_off - 2] = lbd
            else:
                clause = []
        learnt.insert(0, -lit)

        if len(learnt) == 1:
            backjump_level = 0
        else:
            sorted_levels = sorted((levels[abs(q)] for q in learnt[1:]),
                                   reverse=True)
            backjump_level = sorted_levels[0]
        return learnt, backjump_level

    def _analyze_final(self, seed_lits: Sequence[int],
                       extra: Optional[int] = None) -> List[int]:
        """Assumption literals responsible for a root-level-with-assumptions
        conflict (MiniSat's ``analyzeFinal``): walk the implication graph
        from the conflicting literals down to the assumption decisions.
        """
        arena = self._arena
        levels = self._levels
        reasons = self._reasons
        vals = self._vals
        core: List[int] = [] if extra is None else [extra]
        seen = set()
        stack = [abs(lit) for lit in seed_lits]
        while stack:
            var = stack.pop()
            if var in seen or levels[var] == 0:
                continue
            seen.add(var)
            reason_off = reasons[var]
            if reason_off < 0:
                # A decision below/at the assumption level is an assumption.
                core.append(var if vals[var] > 0 else -var)
            else:
                stack.extend(abs(lit) for lit
                             in arena[reason_off:reason_off
                                      + arena[reason_off - 3]]
                             if abs(lit) != var)
        return core

    def _bump_activity(self, var: int) -> None:
        activity = self.activity
        bumped = activity[var] + self.var_inc
        activity[var] = bumped
        if bumped > 1e100:
            # Uniform rescaling preserves the relative order of every
            # *other* pair; the variable just bumped still needs its sift.
            for v in range(1, len(activity)):
                activity[v] *= 1e-100
            self.var_inc *= 1e-100
        if self.branching == "vsids":
            self._order.bumped(var)

    def _decay_activity(self) -> None:
        self.var_inc /= self.var_decay

    # ------------------------------------------------------------------ #
    # Backtracking
    # ------------------------------------------------------------------ #
    def _cancel_until(self, target_level: int) -> None:
        if len(self.trail_lim) <= target_level:
            return
        boundary = self.trail_lim[target_level]
        vals = self._vals
        phase = self._phase
        reasons = self._reasons
        trail = self.trail
        order = self._order
        order_heap = order.heap
        order_pos = order.pos
        activity = self.activity
        vsids = self.branching == "vsids"
        lowest = self._static_cursor
        for index in range(len(trail) - 1, boundary - 1, -1):
            lit = trail[index]
            var = lit if lit > 0 else -lit
            phase[var] = 2 if vals[var] > 0 else 1
            vals[var] = 0
            vals[-var] = 0
            reasons[var] = -1
            if var < lowest:
                lowest = var
            if vsids and var not in order_pos:
                # Inlined _ArenaVarOrder.insert: every unassigned variable
                # re-enters the heap here, on every backtrack.
                i = len(order_heap)
                order_heap.append(var)
                av = activity[var]
                while i > 0:
                    parent = (i - 1) >> 1
                    pv = order_heap[parent]
                    pa = activity[pv]
                    if av < pa or (av == pa and var > pv):
                        break
                    order_heap[i] = pv
                    order_pos[pv] = i
                    i = parent
                order_heap[i] = var
                order_pos[var] = i
        self._static_cursor = lowest
        del trail[boundary:]
        del self.trail_lim[target_level:]
        if self.propagation_head > len(trail):
            self.propagation_head = len(trail)

    # ------------------------------------------------------------------ #
    # Branching
    # ------------------------------------------------------------------ #
    def _pick_branch_variable(self) -> Optional[int]:
        vals = self._vals
        if self.branching == "static":
            var = self._static_cursor
            num_vars = self.num_vars
            while var <= num_vars and vals[var] != 0:
                var += 1
            self._static_cursor = var
            return var if var <= num_vars else None
        # Indexed heap: pop until an unassigned variable appears (assigned
        # ones are re-inserted when the trail unwinds past them).
        order = self._order
        while True:
            var = order.pop()
            if var is None:
                break
            if vals[var] == 0:
                return var
        # Heap exhausted: fall back to a linear scan (rare).
        for var in range(1, self.num_vars + 1):
            if vals[var] == 0:
                return var
        return None

    def _restart_interval(self, restart_count: int) -> int:
        if self.restart_policy == "geometric":
            return int(self.restart_base * (1.5 ** min(restart_count - 1, 48)))
        return self.restart_base * _luby(restart_count)

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def solve(self, assumptions: Sequence[int] = ()) -> SatResult:
        """Decide the clause database under optional assumption literals.

        Repeated calls are incremental: learned clauses, variable
        activities and saved phases survive from call to call, and a
        matching assumption prefix reuses the existing trail instead of
        re-propagating it.  ``unsat`` under assumptions leaves the guilty
        assumption subset in :attr:`last_core`; ``unknown`` means the
        ``deadline`` expired or ``should_stop`` fired.

        The learned database is kept bounded by LBD-based reduction: every
        ``reduce_interval`` learned clauses, the worst half of the
        deletable clauses (highest LBD first) is deleted, protecting glue
        clauses (LBD ≤ ``max_lbd_keep``), reason clauses of currently
        assigned literals, and level-0 units.  ``reduce_interval=0``
        disables reduction (the pre-reduction unbounded behavior).
        Reduction never changes an answer — learned clauses are entailed —
        and composes with every incremental feature: post-reduce
        :meth:`add_clause`, assumption solves and :attr:`last_core` behave
        exactly as they would on an unreduced database.  Cumulative
        telemetry lives in :attr:`clauses_deleted`, :attr:`db_size_peak`,
        :attr:`db_size_floor` and :attr:`reductions`.
        """
        start = time.monotonic()
        try:
            return self._solve(assumptions, start)
        finally:
            self.solve_seconds += time.monotonic() - start

    def _solve(self, assumptions: Sequence[int], start: float) -> SatResult:
        self.solve_calls += 1
        self.last_core = None
        self.stats = SatResult(status="unknown")
        if not self._ok:
            self._cancel_until(0)
            self.stats.status = "unsat"
            self.last_core = []
            return self.stats
        if self.propagation_head < len(self.trail):
            # Clauses were added since the last call; restart cleanly from
            # the root so the pending units propagate at level 0.
            self._cancel_until(0)
        else:
            # Trail reuse: keep the longest prefix of existing decision
            # levels that matches the incoming assumptions (assumption
            # literals already implied by a kept level are skipped).  A
            # sequence of related assumption queries — e.g. the
            # lex-minimization pass growing its prefix one literal at a
            # time — then re-propagates almost nothing.
            vals = self._vals
            levels = self._levels
            keep_level = 0
            index = 0
            while index < len(assumptions):
                lit = assumptions[index]
                var = lit if lit > 0 else -lit
                if (var <= self.num_vars and vals[var] != 0
                        and levels[var] <= keep_level and vals[lit] > 0):
                    index += 1
                    continue
                if (keep_level < len(self.trail_lim)
                        and self.trail[self.trail_lim[keep_level]] == lit):
                    keep_level += 1
                    index += 1
                    continue
                break
            self._cancel_until(keep_level)

        conflict = self._propagate()
        if conflict is not None:
            if len(self.trail_lim) > 0:
                # A kept assumption level conflicts (possible only via trail
                # reuse); fall back to a clean root-level start.
                self._cancel_until(0)
                conflict = self._propagate()
            if conflict is not None:
                # Conflict at level 0: the clause database itself is unsat,
                # for this and every future call.
                self._ok = False
                self.stats.status = "unsat"
                self.last_core = []
                self.stats.time_seconds = time.monotonic() - start
                return self.stats

        for lit in assumptions:
            if lit:
                self.ensure_vars(abs(lit))
            value = self._value(lit)
            if value is False:
                self.stats.status = "unsat"
                self.last_core = self._analyze_final([-lit], extra=lit)
                self.stats.time_seconds = time.monotonic() - start
                return self.stats
            if value is None:
                self.trail_lim.append(len(self.trail))
                self._enqueue(lit, -1)
                conflict = self._propagate()
                if conflict is not None:
                    self.stats.status = "unsat"
                    self.last_core = self._analyze_final(
                        self.clause_literals(conflict))
                    self.stats.time_seconds = time.monotonic() - start
                    return self.stats
        assumption_level = len(self.trail_lim)

        restart_count = 1
        conflicts_until_restart = self._restart_interval(restart_count)
        conflicts_since_restart = 0
        check_counter = 0

        while True:
            check_counter += 1
            if check_counter % 64 == 0:
                expired = (self.deadline is not None
                           and time.monotonic() > self.deadline)
                if expired or (self.should_stop is not None and self.should_stop()):
                    self.stats.status = "unknown"
                    self.stats.time_seconds = time.monotonic() - start
                    self.total_conflicts += self.stats.conflicts
                    return self.stats

            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_since_restart += 1
                if len(self.trail_lim) <= assumption_level:
                    self.stats.status = "unsat"
                    if assumption_level == 0:
                        self._ok = False
                        self.last_core = []
                    else:
                        self.last_core = self._analyze_final(
                            self.clause_literals(conflict))
                    self.stats.time_seconds = time.monotonic() - start
                    self.total_conflicts += self.stats.conflicts
                    return self.stats
                learnt, backjump_level = self._analyze(conflict)
                lbd = self._clause_lbd(learnt)
                backjump_level = max(backjump_level, assumption_level)
                self._cancel_until(backjump_level)
                self.learned_count += 1
                if len(learnt) == 1:
                    self._enqueue(learnt[0], -1)
                else:
                    off = self._learn_clause(learnt, lbd)
                    self._enqueue(learnt[0], off)
                    if self.reduce_interval and \
                            self._learned_since_reduce >= self.reduce_interval:
                        self._reduce_db()
                self._decay_activity()
                continue

            if conflicts_since_restart >= conflicts_until_restart:
                self.stats.restarts += 1
                restart_count += 1
                conflicts_until_restart = self._restart_interval(restart_count)
                conflicts_since_restart = 0
                self._cancel_until(assumption_level)
                continue

            branch_var = self._pick_branch_variable()
            if branch_var is None:
                vals = self._vals
                assigned = {var: vals[var] > 0
                            for var in range(1, self.num_vars + 1) if vals[var]}
                self.stats.status = "sat"
                self.stats.model = complete_model(self.num_vars, assigned)
                self.stats.time_seconds = time.monotonic() - start
                self.total_conflicts += self.stats.conflicts
                return self.stats

            self.stats.decisions += 1
            self.trail_lim.append(len(self.trail))
            if self.phase_saving:
                saved = self._phase[branch_var]
                preferred_phase = saved == 2 if saved else self.default_phase
            else:
                preferred_phase = self.default_phase
            self._enqueue(branch_var if preferred_phase else -branch_var, -1)


def solve_cnf(cnf: CNF, deadline: Optional[float] = None,
              assumptions: Sequence[int] = ()) -> SatResult:
    """One-shot convenience wrapper around :class:`CDCLSolver`."""
    return CDCLSolver(cnf, deadline=deadline).solve(assumptions)
