"""Racing several SAT strategies under one deadline.

The paper runs Bitwuzla, cvc5, Yices2 and STP in parallel and takes the
first answer (§4.5).  This portfolio now really races its members: each one
runs in its own thread on its own copy of the formula, the first definitive
(non-``unknown``) answer wins, and the losers are cancelled through the
solvers' cooperative ``should_stop`` hook.  Per-member win counts are kept
for the portfolio-statistics experiment (§5.1).

Members come from the :mod:`repro.engine.backends` registry, so SAT
strategies are named, pluggable components rather than a hard-coded list.
A ``concurrent=False`` portfolio preserves the old sequential semantics
(first member to answer within the shared budget wins), which is also used
automatically for single-member portfolios.
"""

from __future__ import annotations

import threading
import time
import warnings
from collections import Counter
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.backends import (
    SolverBackend,
    backend_by_name,
    default_backend_names,
)
from repro.sat.cnf import CNF
from repro.sat.solver import SatResult

__all__ = ["PortfolioMember", "SatPortfolio", "default_portfolio"]

#: A portfolio member is just a solver backend; the alias keeps the
#: historical name used throughout the tests and benchmarks.
PortfolioMember = SolverBackend


def default_portfolio() -> List[PortfolioMember]:
    """The default strategy list (every registered default backend)."""
    return [backend_by_name(name) for name in default_backend_names()]


class SatPortfolio:
    """Race portfolio members, returning the first definitive answer."""

    def __init__(self, members: Optional[List[PortfolioMember]] = None,
                 concurrent: bool = True) -> None:
        self.members = members if members is not None else default_portfolio()
        self.concurrent = concurrent
        self.wins: Counter = Counter()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    @classmethod
    def from_names(cls, names: Sequence[str], concurrent: bool = True) -> "SatPortfolio":
        """Build a portfolio from registered backend names."""
        return cls([backend_by_name(name) for name in names], concurrent=concurrent)

    @property
    def member_names(self) -> List[str]:
        return [member.name for member in self.members]

    def win_counts(self) -> Dict[str, int]:
        """How often each member answered first (since construction)."""
        with self._lock:
            return dict(self.wins)

    def _record_win(self, name: str) -> None:
        with self._lock:
            self.wins[name] += 1

    # ------------------------------------------------------------------ #
    def solve(self, cnf: CNF, deadline: Optional[float] = None,
              assumptions: Sequence[int] = ()) -> Tuple[SatResult, str]:
        """Return ``(result, winning member name)``.

        Concurrent mode races every member and takes the first definitive
        answer; sequential mode tries members in order with the shared
        wall-clock budget (the fallback only gets budget the primary engine
        left unused).
        """
        if not self.members:
            return SatResult(status="unknown"), "none"
        if len(self.members) == 1 or not self.concurrent:
            return self._solve_sequential(cnf, deadline, assumptions)
        return self._solve_concurrent(cnf, deadline, assumptions)

    # ------------------------------------------------------------------ #
    def _solve_sequential(self, cnf: CNF, deadline: Optional[float],
                          assumptions: Sequence[int]) -> Tuple[SatResult, str]:
        return self._solve_sequential_members(self.members, cnf, deadline, assumptions)

    def _solve_sequential_members(self, members: Sequence[PortfolioMember],
                                  cnf: CNF, deadline: Optional[float],
                                  assumptions: Sequence[int]) -> Tuple[SatResult, str]:
        last_result = SatResult(status="unknown")
        for member in members:
            if deadline is not None and time.monotonic() > deadline:
                break
            result = member.solve(cnf, deadline, assumptions)
            last_result = result
            if not result.is_unknown:
                self._record_win(member.name)
                return result, member.name
        return last_result, "none"

    def _solve_concurrent(self, cnf: CNF, deadline: Optional[float],
                          assumptions: Sequence[int]) -> Tuple[SatResult, str]:
        # A member's head start is capped at half the remaining budget, so
        # staggered fallbacks still join the race on every budget scale
        # ("half the budget gone without an answer" is the signal that the
        # query is hard).
        staggers = {member.name: member.stagger for member in self.members}
        racers = self.members
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return SatResult(status="unknown"), "none"
            staggers = {member.name: min(member.stagger, remaining / 2)
                        for member in self.members}
        if len(racers) == 1:
            return self._solve_sequential_members(racers, cnf, deadline, assumptions)

        stop_event = threading.Event()
        executor = ThreadPoolExecutor(max_workers=len(racers),
                                      thread_name_prefix="sat-portfolio")
        futures = {}
        try:
            for member in racers:
                future = executor.submit(self._run_member, member, cnf,
                                         deadline, assumptions, stop_event,
                                         staggers[member.name])
                futures[future] = member

            last_result = SatResult(status="unknown")
            last_error: Optional[BaseException] = None
            produced_result = False
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    member = futures[future]
                    error = future.exception()
                    if error is not None:
                        # A crashed member loses the race, but the crash is
                        # a solver bug worth hearing about, not a timeout.
                        last_error = error
                        warnings.warn(
                            f"portfolio member {member.name!r} crashed: {error!r}",
                            RuntimeWarning, stacklevel=2)
                        continue
                    produced_result = True
                    result = future.result()
                    last_result = result
                    if not result.is_unknown:
                        stop_event.set()
                        self._record_win(member.name)
                        return result, member.name
            if not produced_result and last_error is not None:
                # Every member crashed: surface the bug instead of
                # disguising it as a timeout.
                raise last_error
            return last_result, "none"
        finally:
            stop_event.set()
            executor.shutdown(wait=False, cancel_futures=True)

    @staticmethod
    def _run_member(member: PortfolioMember, cnf: CNF, deadline: Optional[float],
                    assumptions: Sequence[int],
                    stop_event: threading.Event,
                    stagger: float) -> SatResult:
        """Run one member in the race, honouring its staggered start.

        ``stop_event.wait`` doubles as the stagger timer: if the race is
        decided during the head start, the member never does any work.  The
        wait is capped at the remaining budget so a timing-out query is not
        held hostage by a sleeping fallback member.  Backends must not
        mutate the shared ``cnf`` (the built-in engines copy internally).
        """
        if stagger > 0:
            wait_seconds = stagger
            if deadline is not None:
                wait_seconds = min(wait_seconds, max(0.0, deadline - time.monotonic()))
            if stop_event.wait(wait_seconds):
                return SatResult(status="unknown")
            if deadline is not None and time.monotonic() >= deadline:
                return SatResult(status="unknown")
        return member.solve(cnf, deadline, assumptions, stop_event.is_set)
