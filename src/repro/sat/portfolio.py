"""Racing several SAT strategies under one deadline.

The paper runs Bitwuzla, cvc5, Yices2 and STP in parallel and takes the
first answer (§4.5).  This reproduction races its own engines sequentially
with a shared wall-clock budget, which preserves the portfolio *semantics*
(first definitive answer wins, per-strategy win counts are reported in the
portfolio-statistics experiment) without requiring multiprocessing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.sat.cnf import CNF
from repro.sat.dpll import DPLLSolver
from repro.sat.solver import CDCLSolver, SatResult

__all__ = ["PortfolioMember", "SatPortfolio", "default_portfolio"]


@dataclass
class PortfolioMember:
    """A named SAT strategy."""

    name: str
    run: Callable[[CNF, Optional[float], Sequence[int]], SatResult]


def _run_cdcl(cnf: CNF, deadline: Optional[float], assumptions: Sequence[int]) -> SatResult:
    return CDCLSolver(cnf, deadline=deadline).solve(assumptions)


def _run_dpll(cnf: CNF, deadline: Optional[float], assumptions: Sequence[int]) -> SatResult:
    return DPLLSolver(cnf, deadline=deadline).solve(assumptions)


def default_portfolio() -> List[PortfolioMember]:
    """The default strategy list, ordered by expected strength."""
    return [
        PortfolioMember("cdcl", _run_cdcl),
        PortfolioMember("dpll", _run_dpll),
    ]


class SatPortfolio:
    """Race portfolio members, returning the first definitive answer."""

    def __init__(self, members: Optional[List[PortfolioMember]] = None) -> None:
        self.members = members if members is not None else default_portfolio()

    def solve(self, cnf: CNF, deadline: Optional[float] = None,
              assumptions: Sequence[int] = ()) -> Tuple[SatResult, str]:
        """Return ``(result, winning member name)``.

        Strategies are tried in order.  The DPLL fallback only gets budget
        that the primary engine left unused, mirroring a race in which the
        faster engine would have answered first anyway.
        """
        last_result = SatResult(status="unknown")
        winner = "none"
        for member in self.members:
            if deadline is not None and time.monotonic() > deadline:
                break
            result = member.run(cnf, deadline, assumptions)
            last_result = result
            if not result.is_unknown:
                winner = member.name
                return result, winner
        return last_result, winner
