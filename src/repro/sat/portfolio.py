"""Racing several SAT strategies under one deadline.

The paper runs Bitwuzla, cvc5, Yices2 and STP in parallel and takes the
first answer (§4.5).  This portfolio now really races its members: each one
runs in its own thread on its own copy of the formula, the first definitive
(non-``unknown``) answer wins, and the losers are cancelled through the
solvers' cooperative ``should_stop`` hook.  Per-member win counts are kept
for the portfolio-statistics experiment (§5.1).

Members come from the :mod:`repro.engine.backends` registry, so SAT
strategies are named, pluggable components rather than a hard-coded list.
A ``concurrent=False`` portfolio preserves the old sequential semantics
(first member to answer within the shared budget wins), which is also used
automatically for single-member portfolios.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue as queue_mod
import threading
import time
import warnings
from collections import Counter
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.backends import (
    SolverBackend,
    backend_by_name,
    default_backend_names,
)
from repro.sat.cnf import CNF
from repro.sat.solver import SatResult

__all__ = ["PortfolioMember", "SatPortfolio", "ProcessPortfolio",
           "default_portfolio", "make_portfolio"]

#: A portfolio member is just a solver backend; the alias keeps the
#: historical name used throughout the tests and benchmarks.
PortfolioMember = SolverBackend


def default_portfolio() -> List[PortfolioMember]:
    """The default strategy list (every registered default backend)."""
    return [backend_by_name(name) for name in default_backend_names()]


class SatPortfolio:
    """Race portfolio members, returning the first definitive answer."""

    def __init__(self, members: Optional[List[PortfolioMember]] = None,
                 concurrent: bool = True) -> None:
        self.members = members if members is not None else default_portfolio()
        self.concurrent = concurrent
        self.wins: Counter = Counter()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    @classmethod
    def from_names(cls, names: Sequence[str], concurrent: bool = True) -> "SatPortfolio":
        """Build a portfolio from registered backend names."""
        return cls([backend_by_name(name) for name in names], concurrent=concurrent)

    @property
    def member_names(self) -> List[str]:
        return [member.name for member in self.members]

    def win_counts(self) -> Dict[str, int]:
        """How often each member answered first (since construction)."""
        with self._lock:
            return dict(self.wins)

    def _record_win(self, name: str) -> None:
        with self._lock:
            self.wins[name] += 1

    # ------------------------------------------------------------------ #
    def solve(self, cnf: CNF, deadline: Optional[float] = None,
              assumptions: Sequence[int] = ()) -> Tuple[SatResult, str]:
        """Return ``(result, winning member name)``.

        Concurrent mode races every member and takes the first definitive
        answer; sequential mode tries members in order with the shared
        wall-clock budget (the fallback only gets budget the primary engine
        left unused).
        """
        if not self.members:
            return SatResult(status="unknown"), "none"
        if len(self.members) == 1 or not self.concurrent:
            return self._solve_sequential(cnf, deadline, assumptions)
        return self._solve_concurrent(cnf, deadline, assumptions)

    # ------------------------------------------------------------------ #
    def _solve_sequential(self, cnf: CNF, deadline: Optional[float],
                          assumptions: Sequence[int]) -> Tuple[SatResult, str]:
        return self._solve_sequential_members(self.members, cnf, deadline, assumptions)

    def _solve_sequential_members(self, members: Sequence[PortfolioMember],
                                  cnf: CNF, deadline: Optional[float],
                                  assumptions: Sequence[int]) -> Tuple[SatResult, str]:
        last_result = SatResult(status="unknown")
        for member in members:
            if deadline is not None and time.monotonic() > deadline:
                break
            result = member.solve(cnf, deadline, assumptions)
            last_result = result
            if not result.is_unknown:
                self._record_win(member.name)
                return result, member.name
        return last_result, "none"

    def _solve_concurrent(self, cnf: CNF, deadline: Optional[float],
                          assumptions: Sequence[int]) -> Tuple[SatResult, str]:
        # A member's head start is capped at half the remaining budget, so
        # staggered fallbacks still join the race on every budget scale
        # ("half the budget gone without an answer" is the signal that the
        # query is hard).
        staggers = {member.name: member.stagger for member in self.members}
        racers = self.members
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return SatResult(status="unknown"), "none"
            staggers = {member.name: min(member.stagger, remaining / 2)
                        for member in self.members}
        if len(racers) == 1:
            return self._solve_sequential_members(racers, cnf, deadline, assumptions)

        stop_event = threading.Event()
        executor = ThreadPoolExecutor(max_workers=len(racers),
                                      thread_name_prefix="sat-portfolio")
        futures = {}
        try:
            for member in racers:
                future = executor.submit(self._run_member, member, cnf,
                                         deadline, assumptions, stop_event,
                                         staggers[member.name])
                futures[future] = member

            last_result = SatResult(status="unknown")
            last_error: Optional[BaseException] = None
            produced_result = False
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    member = futures[future]
                    error = future.exception()
                    if error is not None:
                        # A crashed member loses the race, but the crash is
                        # a solver bug worth hearing about, not a timeout.
                        last_error = error
                        warnings.warn(
                            f"portfolio member {member.name!r} crashed: {error!r}",
                            RuntimeWarning, stacklevel=2)
                        continue
                    produced_result = True
                    result = future.result()
                    last_result = result
                    if not result.is_unknown:
                        stop_event.set()
                        self._record_win(member.name)
                        return result, member.name
            if not produced_result and last_error is not None:
                # Every member crashed: surface the bug instead of
                # disguising it as a timeout.
                raise last_error
            return last_result, "none"
        finally:
            stop_event.set()
            executor.shutdown(wait=False, cancel_futures=True)

    @staticmethod
    def _run_member(member: PortfolioMember, cnf: CNF, deadline: Optional[float],
                    assumptions: Sequence[int],
                    stop_event: threading.Event,
                    stagger: float) -> SatResult:
        """Run one member in the race, honouring its staggered start.

        ``stop_event.wait`` doubles as the stagger timer: if the race is
        decided during the head start, the member never does any work.  The
        wait is capped at the remaining budget so a timing-out query is not
        held hostage by a sleeping fallback member.  Backends must not
        mutate the shared ``cnf`` (the built-in engines copy internally).
        """
        if stagger > 0:
            wait_seconds = stagger
            if deadline is not None:
                wait_seconds = min(wait_seconds, max(0.0, deadline - time.monotonic()))
            if stop_event.wait(wait_seconds):
                return SatResult(status="unknown")
            if deadline is not None and time.monotonic() >= deadline:
                return SatResult(status="unknown")
        return member.solve(cnf, deadline, assumptions, stop_event.is_set)


# --------------------------------------------------------------------------- #
# Process-based racing
# --------------------------------------------------------------------------- #
def _race_in_process(member: PortfolioMember, cnf: CNF,
                     deadline: Optional[float], assumptions: Sequence[int],
                     results) -> None:
    """Child-process body of one :class:`ProcessPortfolio` race member.

    No ``should_stop`` hook is wired: losers are killed by the parent, which
    is the whole point of racing in processes.  A crash is shipped back as a
    payload so the parent can distinguish solver bugs from timeouts.
    """
    try:
        result = member.solve(cnf, deadline, assumptions)
        results.put((member.name, "result", result))
    except BaseException as error:  # noqa: BLE001 - relayed to the parent
        # Queue.put serializes in a background feeder thread, so an
        # unpicklable exception would be dropped *after* put() returned —
        # check picklability up front and relay a repr instead.
        try:
            pickle.dumps(error)
        except Exception:
            error = RuntimeError(repr(error))
        results.put((member.name, "error", error))


class ProcessPortfolio(SatPortfolio):
    """Race portfolio members in separate *processes* (no GIL contention).

    The thread portfolio staggers weaker members because CPU-bound Python
    threads time-share one core; forked processes really run in parallel,
    so every member starts immediately (``stagger`` is ignored) and losers
    are hard-killed the moment a definitive answer arrives, instead of
    cooperatively polling ``should_stop``.

    ``time.monotonic`` reads ``CLOCK_MONOTONIC``, which is system-wide on
    Linux, so absolute deadlines transfer to forked children unchanged.
    Requires the ``fork`` start method (members need not be picklable —
    children inherit them); platforms without it fall back to the thread
    race.
    """

    #: How long the parent waits on the result queue per poll; also bounds
    #: how late a deadline expiry is noticed.
    _POLL_SECONDS = 0.05

    def __init__(self, members: Optional[List[PortfolioMember]] = None) -> None:
        super().__init__(members=members, concurrent=True)
        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            self._context = None

    def _solve_concurrent(self, cnf: CNF, deadline: Optional[float],
                          assumptions: Sequence[int]) -> Tuple[SatResult, str]:
        if self._context is None:  # pragma: no cover - non-POSIX platforms
            return super()._solve_concurrent(cnf, deadline, assumptions)
        if deadline is not None and time.monotonic() >= deadline:
            return SatResult(status="unknown"), "none"

        results = self._context.Queue()
        processes: Dict[str, multiprocessing.Process] = {}
        try:
            for member in self.members:
                process = self._context.Process(
                    target=_race_in_process,
                    args=(member, cnf, deadline, assumptions, results),
                    name=f"sat-portfolio-{member.name}", daemon=True)
                process.start()
                processes[member.name] = process

            last_result = SatResult(status="unknown")
            last_error: Optional[BaseException] = None
            produced_result = False
            answered = 0
            dead_polls = 0
            while answered < len(processes):
                expired = deadline is not None and time.monotonic() >= deadline
                try:
                    if expired:
                        # Budget gone: stop waiting, but still take answers
                        # that already arrived — a member that beat the
                        # deadline must not be reported as a timeout just
                        # because the parent was mid-poll when it landed.
                        name, kind, payload = results.get_nowait()
                    else:
                        name, kind, payload = results.get(
                            timeout=self._POLL_SECONDS)
                except queue_mod.Empty:
                    if expired:
                        break
                    if any(p.is_alive() for p in processes.values()):
                        continue
                    # Every child has exited; give the queue one more full
                    # poll (a dying child's feeder thread may still be
                    # flushing its payload through the pipe), then stop.
                    dead_polls += 1
                    if dead_polls >= 2:
                        break
                answered += 1
                if kind == "error":
                    last_error = payload
                    warnings.warn(
                        f"portfolio member {name!r} crashed: {payload!r}",
                        RuntimeWarning, stacklevel=2)
                    continue
                produced_result = True
                last_result = payload
                if not payload.is_unknown:
                    self._record_win(name)
                    return payload, name
            if not produced_result and last_error is not None:
                raise last_error
            if not produced_result and last_error is None and \
                    (deadline is None or time.monotonic() < deadline):
                # A hard death (segfault, os._exit) delivers no payload at
                # all; with budget left that is a solver bug, not a timeout.
                died = [name for name, process in processes.items()
                        if process.exitcode not in (0, None)]
                if died:
                    raise RuntimeError(
                        f"portfolio member(s) {', '.join(died)} died without "
                        "reporting a result")
            return last_result, "none"
        finally:
            for process in processes.values():
                if process.is_alive():
                    process.terminate()
            for process in processes.values():
                process.join(timeout=1.0)
                if process.is_alive():  # pragma: no cover - stubborn child
                    process.kill()
                    process.join(timeout=1.0)
            results.close()
            results.cancel_join_thread()


def make_portfolio(kind: str = "thread",
                   names: Optional[Sequence[str]] = None) -> SatPortfolio:
    """Build a portfolio by racing style.

    ``kind`` is ``"thread"`` (staggered GIL-sharing race), ``"process"``
    (true-parallel race with hard kill) or ``"sequential"`` (members tried
    in order under the shared budget).  ``names`` selects registered
    backends; the default is every default-registry member.
    """
    members = [backend_by_name(name) for name in names] if names else None
    if kind == "thread":
        return SatPortfolio(members)
    if kind == "process":
        return ProcessPortfolio(members)
    if kind == "sequential":
        return SatPortfolio(members, concurrent=False)
    raise ValueError(f"unknown portfolio kind {kind!r}; "
                     "expected 'thread', 'process' or 'sequential'")
