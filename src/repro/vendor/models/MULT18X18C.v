// Lattice ECP5 18x18 multiplier block (behavioral model).  One half of the
// sysDSP slice; the ALU54A model pairs it with the output ALU.
module MULT18X18C(
  input clk,
  input [17:0] A,
  input [17:0] B,
  input REG_INA,
  input REG_INB,
  input REG_OUT,
  output [35:0] P
);
  reg [17:0] a1;
  reg [17:0] b1;
  reg [35:0] p1;
  wire [17:0] a_used; assign a_used = REG_INA ? a1 : A;
  wire [17:0] b_used; assign b_used = REG_INB ? b1 : B;
  wire [35:0] product; assign product = a_used * b_used;
  always @(posedge clk) begin
    a1 <= A;
    b1 <= B;
    p1 <= product;
  end
  assign P = REG_OUT ? p1 : product;
endmodule
