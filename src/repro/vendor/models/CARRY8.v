// Xilinx UltraScale+ 8-bit carry chain (UNISIM-style simulation model).
// S is the per-bit propagate signal (from the slice LUTs), DI the generate
// ("data in") signal, CI the chain input.  O is the sum output S ^ carry;
// CO exposes the per-bit carries.
module CARRY8(
  input [7:0] S,
  input [7:0] DI,
  input CI,
  output [7:0] O,
  output [7:0] CO
);
  wire c1; assign c1 = S[0] ? CI : DI[0];
  wire c2; assign c2 = S[1] ? c1 : DI[1];
  wire c3; assign c3 = S[2] ? c2 : DI[2];
  wire c4; assign c4 = S[3] ? c3 : DI[3];
  wire c5; assign c5 = S[4] ? c4 : DI[4];
  wire c6; assign c6 = S[5] ? c5 : DI[5];
  wire c7; assign c7 = S[6] ? c6 : DI[6];
  wire c8; assign c8 = S[7] ? c7 : DI[7];
  assign O = S ^ {c7, c6, c5, c4, c3, c2, c1, CI};
  assign CO = {c8, c7, c6, c5, c4, c3, c2, c1};
endmodule
