// Xilinx UltraScale+ DSP48E2 slice (behavioral model, UNISIM-style subset).
//
// Covers the paths the evaluation exercises: the 27x18 multiplier with the
// optional pre-adder (AD = D +/- A), the OPMODE X/Y/Z input multiplexers,
// the ALU (add / subtract / bitwise combine with Z), and the full register
// pipeline (AREG/BREG up to two stages, CREG, DREG, ADREG, MREG, PREG).
// Configuration ports (OPMODE, ALUMODE, the *REG counts and the *SEL
// selects) are modelled as inputs so semantics extraction exposes them as
// free variables; the architecture description marks them internal data.
module DSP48E2(
  input clk,
  input [26:0] A,
  input [17:0] B,
  input [47:0] C,
  input [26:0] D,
  input [8:0] OPMODE,
  input [3:0] ALUMODE,
  input CARRYIN,
  input [1:0] AREG,
  input [1:0] BREG,
  input CREG,
  input DREG,
  input ADREG,
  input MREG,
  input PREG,
  input AMULTSEL,
  input BMULTSEL,
  input PREADDINSEL,
  input USE_PREADD,
  input PREADD_SUB,
  output [47:0] P
);
  // Pipeline registers.
  reg [26:0] a1; reg [26:0] a2;
  reg [17:0] b1; reg [17:0] b2;
  reg [47:0] c1;
  reg [26:0] d1;
  reg [26:0] ad1;
  reg [44:0] m1;
  reg [47:0] p1;

  // Input register selection (0 = combinational, 1 = one stage, 2 = two).
  wire [26:0] a_used; assign a_used = (AREG == 2'd0) ? A : ((AREG == 2'd1) ? a1 : a2);
  wire [17:0] b_used; assign b_used = (BREG == 2'd0) ? B : ((BREG == 2'd1) ? b1 : b2);
  wire [47:0] c_used; assign c_used = CREG ? c1 : C;
  wire [26:0] d_used; assign d_used = DREG ? d1 : D;

  // Pre-adder: AD = D +/- A, or a bypass of A when the pre-adder is unused.
  wire [26:0] ad_comb;
  assign ad_comb = USE_PREADD ? (PREADD_SUB ? (d_used - a_used) : (d_used + a_used)) : a_used;
  wire [26:0] ad_used; assign ad_used = ADREG ? ad1 : ad_comb;

  // Multiplier: 27x18 -> 45 bits.
  wire [26:0] a_mult; assign a_mult = AMULTSEL ? ad_used : a_used;
  wire [17:0] b_mult; assign b_mult = BMULTSEL ? ad_used[17:0] : b_used;
  wire [44:0] m_comb; assign m_comb = a_mult * b_mult;
  wire [44:0] m_used; assign m_used = MREG ? m1 : m_comb;

  // OPMODE multiplexers: X = OPMODE[1:0], Y = OPMODE[3:2], Z = OPMODE[6:4].
  // The two multiplier partial products (X = Y = 01) are folded into x_val.
  wire [47:0] x_val;
  assign x_val = (OPMODE[1:0] == 2'd1) ? m_used
               : ((OPMODE[1:0] == 2'd3) ? {a_used[17:0], b_used} : 48'd0);
  wire [47:0] y_val;
  assign y_val = (OPMODE[3:2] == 2'd3) ? c_used : 48'd0;
  wire [47:0] z_val;
  assign z_val = (OPMODE[6:4] == 3'd3) ? c_used
               : ((OPMODE[6:4] == 3'd2) ? p1 : 48'd0);

  // ALU: add, subtract either way, or a bitwise combine with Z.
  wire [47:0] xy; assign xy = x_val + y_val + {47'd0, CARRYIN};
  wire [47:0] alu_out;
  assign alu_out = (ALUMODE == 4'd0) ? (z_val + xy)
                 : ((ALUMODE == 4'd1) ? (xy - z_val)
                 : ((ALUMODE == 4'd3) ? (z_val - xy)
                 : ((ALUMODE == 4'b1100) ? (z_val & xy)
                 : ((ALUMODE == 4'b1110) ? (z_val | xy)
                 : ((ALUMODE == 4'b0100) ? (z_val ^ xy)
                 : ((ALUMODE == 4'b0101) ? ~(z_val ^ xy) : (z_val + xy)))))));

  always @(posedge clk) begin
    a1 <= A; a2 <= a1;
    b1 <= B; b2 <= b1;
    c1 <= C;
    d1 <= D;
    ad1 <= ad_comb;
    m1 <= m_comb;
    p1 <= alu_out;
  end

  assign P = PREG ? p1 : alu_out;
endmodule
