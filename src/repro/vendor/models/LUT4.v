// Lattice ECP5 4-input lookup table (simulation model).
module LUT4(
  input I0, I1, I2, I3,
  input [15:0] INIT,
  output O
);
  wire [3:0] addr;
  assign addr = {I3, I2, I1, I0};
  assign O = (INIT >> addr) & 1'b1;
endmodule
