// SOFA fracturable 4-input LUT (frac_lut4 from the SOFA eFPGA IP library).
// mode 0 uses the full 16-bit sram as one LUT4; mode 1 fractures the cell
// and the low 8 sram bits implement a LUT3 over in[2:0].
module frac_lut4(
  input [3:0] in,
  input [15:0] sram,
  input mode,
  output O
);
  wire lut4_out;
  wire lut3_out;
  assign lut4_out = (sram >> in) & 1'b1;
  assign lut3_out = (sram[7:0] >> in[2:0]) & 1'b1;
  assign O = mode ? lut3_out : lut4_out;
endmodule
