// Lattice ECP5 sysDSP slice ALU (ALU54A) paired with its 18x18 multiplier
// (behavioral model).  The model includes the multiply path so that one
// instance implements the slice-level (A * B) op C forms of the evaluation:
// OPCODE 0 passes the product through, 1..6 combine it with C.
module ALU54A(
  input clk,
  input [17:0] A,
  input [17:0] B,
  input [53:0] C,
  input [2:0] OPCODE,
  input REG_INA,
  input REG_INB,
  input REG_INC,
  input REG_OUT,
  output [53:0] R
);
  reg [17:0] a1;
  reg [17:0] b1;
  reg [53:0] c1;
  reg [53:0] r1;
  wire [17:0] a_used; assign a_used = REG_INA ? a1 : A;
  wire [17:0] b_used; assign b_used = REG_INB ? b1 : B;
  wire [53:0] c_used; assign c_used = REG_INC ? c1 : C;
  wire [35:0] product; assign product = a_used * b_used;
  wire [53:0] m; assign m = product;
  wire [53:0] alu_out;
  assign alu_out = (OPCODE == 3'd0) ? m
                 : ((OPCODE == 3'd1) ? (m + c_used)
                 : ((OPCODE == 3'd2) ? (m - c_used)
                 : ((OPCODE == 3'd3) ? (c_used - m)
                 : ((OPCODE == 3'd4) ? (m & c_used)
                 : ((OPCODE == 3'd5) ? (m | c_used)
                 : ((OPCODE == 3'd6) ? (m ^ c_used) : c_used))))));
  always @(posedge clk) begin
    a1 <= A;
    b1 <= B;
    c1 <= C;
    r1 <= alu_out;
  end
  assign R = REG_OUT ? r1 : alu_out;
endmodule
