// Intel Cyclone 10 LP embedded multiplier (mac_mult block, behavioral
// model).  REG_INPUTA / REG_INPUTB / REG_OUTPUT select the optional input
// and output registers; they are modelled as inputs so extraction exposes
// them as free variables (the architecture description marks them internal
// data and the compiler re-emits them as instantiation parameters).
module cyclone10lp_mac_mult(
  input clk,
  input [17:0] dataa,
  input [17:0] datab,
  input REG_INPUTA,
  input REG_INPUTB,
  input REG_OUTPUT,
  output [35:0] dataout
);
  reg [17:0] a1;
  reg [17:0] b1;
  reg [35:0] o1;
  wire [17:0] a_used; assign a_used = REG_INPUTA ? a1 : dataa;
  wire [17:0] b_used; assign b_used = REG_INPUTB ? b1 : datab;
  wire [35:0] product; assign product = a_used * b_used;
  always @(posedge clk) begin
    a1 <= dataa;
    b1 <= datab;
    o1 <= product;
  end
  assign dataout = REG_OUTPUT ? o1 : product;
endmodule
