// Lattice ECP5 2-bit carry slice (simplified behavioral model).
// The real CCU2C feeds its propagate/generate signals from two embedded
// LUT4s; this model exposes them directly as S and DI, matching the CARRY
// primitive interface the architecture description binds.
module CCU2C(
  input [1:0] S,
  input [1:0] DI,
  input CIN,
  output [1:0] O,
  output COUT
);
  wire c1; assign c1 = S[0] ? CIN : DI[0];
  wire c2; assign c2 = S[1] ? c1 : DI[1];
  assign O = S ^ {c1, CIN};
  assign COUT = c2;
endmodule
