// Xilinx UltraScale+ 6-input lookup table (UNISIM-style simulation model).
// The INIT memory is modelled as an input so semantics extraction exposes it
// as a free variable; the architecture description marks it internal data.
module LUT6(
  input I0, I1, I2, I3, I4, I5,
  input [63:0] INIT,
  output O
);
  wire [5:0] addr;
  assign addr = {I5, I4, I3, I2, I1, I0};
  assign O = (INIT >> addr) & 1'b1;
endmodule
