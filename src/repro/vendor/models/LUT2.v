// Lattice ECP5 2-input lookup table (simulation model).
module LUT2(
  input I0, I1,
  input [3:0] INIT,
  output O
);
  assign O = (INIT >> {I1, I0}) & 1'b1;
endmodule
