"""Vendor-style primitive simulation models and their importer (§4.4).

The package pairs a directory of small behavioral Verilog models
(``models/``) with :class:`PrimitiveLibrary`, which runs each model through
the semantics-extraction pipeline and hands the resulting ℒlr program to
the sketch generator as Prim-node semantics.
"""

from repro.vendor.library import (
    KNOWN_PRIMITIVES,
    PrimitiveLibrary,
    PrimitiveModel,
    PrimitiveSpec,
    load_primitive,
    models_directory,
)

__all__ = [
    "KNOWN_PRIMITIVES",
    "PrimitiveLibrary",
    "PrimitiveModel",
    "PrimitiveSpec",
    "load_primitive",
    "models_directory",
]
