"""The vendor primitive library (Table 1 of the paper).

Each entry is a vendor-style Verilog simulation model shipped under
``models/``; loading a primitive runs the Section 4.4 semantics-extraction
pipeline (parse → elaborate → btor2-like transition system → ℒlr program)
and caches the result.  Configuration ports (LUT memories, DSP opmodes,
register counts) are modelled as module inputs so they surface as free
variables of the extracted program; architecture descriptions mark them
``internal_data`` and the sketch generator turns them into holes.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.lang import Program
from repro.hdl.btor import TransitionSystem
from repro.hdl.extract import extract_semantics

__all__ = [
    "KNOWN_PRIMITIVES",
    "PrimitiveModel",
    "PrimitiveLibrary",
    "PrimitiveSpec",
    "load_primitive",
    "models_directory",
]


def models_directory() -> Path:
    """The directory holding the vendor Verilog models."""
    return Path(__file__).resolve().parent / "models"


@dataclass(frozen=True)
class PrimitiveSpec:
    """Static metadata for one known primitive."""

    name: str
    architecture: str
    output: str
    description: str = ""


#: Every primitive the reproduction imports from vendor models, mirroring
#: the paper's Table 1 (three Xilinx, five Lattice, one Intel, one SOFA).
KNOWN_PRIMITIVES: Dict[str, PrimitiveSpec] = {
    spec.name: spec
    for spec in (
        PrimitiveSpec("DSP48E2", "xilinx-ultrascale-plus", "P",
                      "27x18 DSP slice with pre-adder, ALU and pipeline registers"),
        PrimitiveSpec("LUT6", "xilinx-ultrascale-plus", "O", "6-input lookup table"),
        PrimitiveSpec("CARRY8", "xilinx-ultrascale-plus", "O", "8-bit carry chain"),
        PrimitiveSpec("ALU54A", "lattice-ecp5", "R",
                      "sysDSP output ALU paired with an 18x18 multiplier"),
        PrimitiveSpec("MULT18X18C", "lattice-ecp5", "P", "18x18 multiplier block"),
        PrimitiveSpec("LUT2", "lattice-ecp5", "O", "2-input lookup table"),
        PrimitiveSpec("LUT4", "lattice-ecp5", "O", "4-input lookup table"),
        PrimitiveSpec("CCU2C", "lattice-ecp5", "O", "2-bit carry slice"),
        PrimitiveSpec("cyclone10lp_mac_mult", "intel-cyclone10lp", "dataout",
                      "18x18 embedded multiplier with optional registers"),
        PrimitiveSpec("frac_lut4", "sofa", "O", "fracturable 4-input LUT"),
    )
}


@dataclass
class PrimitiveModel:
    """One imported primitive: extracted semantics plus provenance."""

    name: str
    architecture: str
    semantics: Program
    system: TransitionSystem
    source_path: Path
    source_lines: int
    output_port: str

    @property
    def registers(self) -> int:
        return len(self.system.states)


class PrimitiveLibrary:
    """Loads and caches vendor primitive models.

    A library instance owns its cache; sessions create (or are handed) one
    library and share it across sketch generation and compilation.
    """

    def __init__(self, directory: Optional[Path] = None) -> None:
        self.directory = Path(directory) if directory is not None else models_directory()
        self._cache: Dict[str, PrimitiveModel] = {}

    def available(self) -> List[str]:
        """Names of every primitive this library can load."""
        return sorted(KNOWN_PRIMITIVES)

    def load(self, name: str) -> PrimitiveModel:
        """Import a primitive by name (cached after the first call)."""
        if name in self._cache:
            return self._cache[name]
        spec = KNOWN_PRIMITIVES.get(name)
        if spec is None:
            raise KeyError(
                f"unknown primitive {name!r}; known: {self.available()}")
        path = self.directory / f"{name}.v"
        source = path.read_text()
        program, system = extract_semantics(source, name, output=spec.output)
        model = PrimitiveModel(
            name=name,
            architecture=spec.architecture,
            semantics=program,
            system=system,
            source_path=path,
            source_lines=_count_sloc(source),
            output_port=spec.output,
        )
        self._cache[name] = model
        return model

    def table1_rows(self) -> List[dict]:
        """The (architecture, primitive, model SLoC) rows of Table 1."""
        rows = []
        for name in self.available():
            model = self.load(name)
            rows.append({
                "architecture": model.architecture,
                "primitive": name,
                "verilog_sloc": model.source_lines,
                "registers": model.registers,
                "nodes": model.semantics.node_count(),
            })
        rows.sort(key=lambda row: (row["architecture"], row["primitive"]))
        return rows


def _count_sloc(source: str) -> int:
    """Source lines excluding blanks and comments (the Table 1 metric)."""
    count = 0
    in_block = False
    for raw_line in source.splitlines():
        line = raw_line.strip()
        if in_block:
            if "*/" in line:
                in_block = False
                line = line.split("*/", 1)[1].strip()
            else:
                continue
        if line.startswith("/*"):
            in_block = "*/" not in line
            continue
        if not line or line.startswith("//"):
            continue
        count += 1
    return count


_DEFAULT_LIBRARY: Optional[PrimitiveLibrary] = None


def load_primitive(name: str, library: Optional[PrimitiveLibrary] = None) -> PrimitiveModel:
    """Convenience loader against a lazily created default library."""
    global _DEFAULT_LIBRARY
    if library is not None:
        return library.load(name)
    if _DEFAULT_LIBRARY is None:
        _DEFAULT_LIBRARY = PrimitiveLibrary()
    return _DEFAULT_LIBRARY.load(name)
