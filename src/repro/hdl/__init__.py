"""Verilog-subset frontend and semantics extraction.

This subpackage plays Yosys's role in the original Lakeroad toolchain:

* :mod:`repro.hdl.lexer` / :mod:`repro.hdl.parser` / :mod:`repro.hdl.ast` --
  a Verilog-2005 subset sufficient for the vendor simulation models shipped
  in :mod:`repro.vendor` and for the behavioral microbenchmark modules;
* :mod:`repro.hdl.elaborate` -- width inference and module elaboration into
  a word-level netlist;
* :mod:`repro.hdl.btor` -- a btor2-style word-level transition-system IR
  (sorts, inputs, states, next functions), mirroring the paper's
  Yosys→btor2 step;
* :mod:`repro.hdl.extract` -- semantics extraction: Verilog module →
  transition system → behavioral ℒlr program (what the paper's §4.4 does
  with btor2→Racket);
* :mod:`repro.hdl.behavioral` -- import of behavioral design fragments into
  ℒbeh (the "input 1" path);
* :mod:`repro.hdl.simulator` -- a cycle-accurate simulator used for
  post-synthesis validation (the paper's Verilator step).
"""

from repro.hdl.ast import ModuleDecl
from repro.hdl.behavioral import verilog_to_behavioral
from repro.hdl.extract import extract_semantics
from repro.hdl.parser import parse_verilog
from repro.hdl.simulator import Simulator

__all__ = [
    "ModuleDecl",
    "parse_verilog",
    "extract_semantics",
    "verilog_to_behavioral",
    "Simulator",
]
