"""Semantics extraction from HDL (Section 4.4 of the paper).

Given a Verilog module (typically a vendor-provided simulation model), this
module produces a *behavioral ℒlr program* whose free variables are the
module's input ports and whose root is the module's output, with registers
captured as ``Reg`` nodes.  The pipeline is the paper's, with our own
substrates standing in for Yosys:

    Verilog text --parse--> AST --elaborate--> transition system (btor2-like)
                 --convert--> ℒbeh program

The resulting program is exactly what a Prim node carries as its semantics,
so "importing a primitive" is a single call to :func:`extract_semantics`.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.bv.ast import BVExpr
from repro.core.lang import Program, ProgramBuilder
from repro.hdl.btor import TransitionSystem
from repro.hdl.elaborate import elaborate
from repro.hdl.parser import parse_module

__all__ = ["extract_semantics", "transition_system_to_program", "expr_to_nodes"]


def expr_to_nodes(expr: BVExpr, builder: ProgramBuilder,
                  leaves: Mapping[str, int],
                  cache: Optional[Dict[BVExpr, int]] = None) -> int:
    """Convert a solver bitvector expression into ℒlr nodes.

    ``leaves`` maps variable names to existing node ids (inputs or register
    nodes).  Returns the id of the node representing ``expr``.
    """
    if cache is None:
        cache = {}
    for node in expr.iter_dag():
        if node in cache:
            continue
        if node.op == "const":
            cache[node] = builder.const(node.value, node.width)
        elif node.op == "var":
            if node.name not in leaves:
                raise KeyError(f"expression references unknown signal {node.name!r}")
            cache[node] = leaves[node.name]
        elif node.op == "extract":
            hi, lo = node.params
            cache[node] = builder.op("extract", [cache[node.args[0]]], node.width,
                                     params=(hi, lo))
        else:
            operand_ids = [cache[arg] for arg in node.args]
            cache[node] = builder.op(node.op, operand_ids, node.width)
    return cache[expr]


def transition_system_to_program(system: TransitionSystem,
                                 output: Optional[str] = None) -> Program:
    """Convert a transition system into a behavioral ℒlr program.

    Registers become ``Reg`` nodes whose data inputs are the next-state
    expressions; the chosen output becomes the program root.
    """
    builder = ProgramBuilder()
    leaves: Dict[str, int] = {}

    # Inputs become Var nodes.
    for name, width in system.inputs.items():
        leaves[name] = builder.var(name, width)

    # States become Reg nodes.  A register's data input is its next-state
    # expression, which may reference other registers (including itself), so
    # we allocate placeholder constants first and patch the Reg nodes after
    # all next-state expressions have been converted.
    from repro.core.lang import RegNode

    state_ids: Dict[str, int] = {}
    for name, (width, init) in system.states.items():
        # Temporarily allocate the Reg with a dummy data input pointing at a
        # constant; we patch it below once the real data node exists.
        placeholder = builder.const(init, width)
        reg_id = builder.reg(placeholder, init, width)
        state_ids[name] = reg_id
        leaves[name] = reg_id

    cache: Dict[BVExpr, int] = {}
    for name, (width, init) in system.states.items():
        data_id = expr_to_nodes(system.next_functions[name], builder, leaves, cache)
        reg_id = state_ids[name]
        builder.nodes[reg_id] = RegNode(data_id, init, width)

    output_expr = system.output(output)
    root = expr_to_nodes(output_expr, builder, leaves, cache)
    return _prune_unreachable(builder.build(root))


def _prune_unreachable(program: Program) -> Program:
    """Drop nodes not reachable from the root (unused inputs such as ``clk``,
    and the placeholder constants used while wiring register feedback)."""
    reachable = set()
    stack = [program.root]
    while stack:
        node_id = stack.pop()
        if node_id in reachable:
            continue
        reachable.add(node_id)
        stack.extend(program[node_id].inputs())
    kept = {node_id: node for node_id, node in program.nodes.items() if node_id in reachable}
    return Program(program.root, kept)


def extract_semantics(verilog_source: str, module_name: Optional[str] = None,
                      output: Optional[str] = None,
                      parameter_overrides: Optional[Mapping[str, int]] = None
                      ) -> Tuple[Program, TransitionSystem]:
    """Extract solver-ready semantics from a Verilog module.

    Returns both the behavioral ℒlr program (for use as Prim semantics) and
    the intermediate transition system (for inspection/testing, mirroring
    the paper's btor2 artifact).
    """
    module = parse_module(verilog_source, module_name)
    system = elaborate(module, parameter_overrides)
    program = transition_system_to_program(system, output)
    return program, system
