"""Abstract syntax tree for the supported Verilog subset.

The subset covers what the vendor simulation models and the behavioral
microbenchmark modules need: ANSI-style module headers, parameters,
wire/reg declarations, continuous assignments, and ``always @(posedge clk)``
blocks with non-blocking assignments and ``if``/``else``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = [
    "Expr", "Number", "Identifier", "Unary", "Binary", "Ternary", "Concat",
    "Replicate", "Select", "Statement", "NonBlockingAssign", "BlockingAssign",
    "IfStatement", "Port", "Parameter", "NetDecl", "ContinuousAssign",
    "AlwaysBlock", "ModuleDecl", "SourceFile",
]


# --------------------------------------------------------------------------- #
# Expressions
# --------------------------------------------------------------------------- #
class Expr:
    """Base class for expressions."""


@dataclass(frozen=True)
class Number(Expr):
    """A literal, e.g. ``16'h00ff`` (width is None for unsized decimals)."""

    value: int
    width: Optional[int] = None


@dataclass(frozen=True)
class Identifier(Expr):
    name: str


@dataclass(frozen=True)
class Unary(Expr):
    op: str  # ~ - ! & | ^
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    op: str  # + - * & | ^ ~^ << >> >>> < <= > >= == != && ||
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Ternary(Expr):
    condition: Expr
    if_true: Expr
    if_false: Expr


@dataclass(frozen=True)
class Concat(Expr):
    parts: Tuple[Expr, ...]


@dataclass(frozen=True)
class Replicate(Expr):
    count: int
    operand: Expr


@dataclass(frozen=True)
class Select(Expr):
    """Bit or part select: ``x[hi:lo]`` (``hi == lo`` for a bit select)."""

    operand: Expr
    high: Expr
    low: Expr


# --------------------------------------------------------------------------- #
# Statements (inside always blocks)
# --------------------------------------------------------------------------- #
class Statement:
    """Base class for procedural statements."""


@dataclass(frozen=True)
class NonBlockingAssign(Statement):
    target: str
    value: Expr


@dataclass(frozen=True)
class BlockingAssign(Statement):
    target: str
    value: Expr


@dataclass(frozen=True)
class IfStatement(Statement):
    condition: Expr
    then_body: Tuple[Statement, ...]
    else_body: Tuple[Statement, ...] = ()


# --------------------------------------------------------------------------- #
# Module items
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Port:
    name: str
    direction: str  # "input" or "output"
    width: int
    is_reg: bool = False
    is_signed: bool = False


@dataclass(frozen=True)
class Parameter:
    name: str
    default: int
    width: int = 32


@dataclass(frozen=True)
class NetDecl:
    kind: str  # "wire" or "reg"
    name: str
    width: int
    init: Optional[Expr] = None
    is_signed: bool = False


@dataclass(frozen=True)
class ContinuousAssign:
    target: str
    value: Expr
    # Optional part-select on the target, e.g. ``assign y[3:0] = ...``.
    high: Optional[int] = None
    low: Optional[int] = None


@dataclass(frozen=True)
class AlwaysBlock:
    """``always @(posedge <clock>) begin ... end``."""

    clock: str
    body: Tuple[Statement, ...]


@dataclass
class ModuleDecl:
    """A parsed Verilog module."""

    name: str
    ports: List[Port] = field(default_factory=list)
    parameters: List[Parameter] = field(default_factory=list)
    nets: List[NetDecl] = field(default_factory=list)
    assigns: List[ContinuousAssign] = field(default_factory=list)
    always_blocks: List[AlwaysBlock] = field(default_factory=list)
    source_lines: int = 0

    def port(self, name: str) -> Port:
        for port in self.ports:
            if port.name == name:
                return port
        raise KeyError(f"module {self.name} has no port {name!r}")

    def input_ports(self) -> List[Port]:
        return [p for p in self.ports if p.direction == "input"]

    def output_ports(self) -> List[Port]:
        return [p for p in self.ports if p.direction == "output"]


@dataclass
class SourceFile:
    """All modules parsed from one source text."""

    modules: List[ModuleDecl] = field(default_factory=list)

    def module(self, name: str) -> ModuleDecl:
        for module in self.modules:
            if module.name == name:
                return module
        raise KeyError(f"no module named {name!r}")
