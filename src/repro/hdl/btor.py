"""A btor2-style word-level transition-system IR.

The original Lakeroad pipeline converts vendor Verilog to the btor2 format
with Yosys and then translates btor2 to Rosette bitvector expressions 1:1
(§4.4).  This module provides the equivalent intermediate representation:
a :class:`TransitionSystem` with inputs, states (registers), next-state
functions and named outputs, all over :class:`~repro.bv.ast.BVExpr`, plus a
textual btor2 emitter so the intermediate artifact can be inspected and
tested exactly like the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.bv.ast import BVExpr

__all__ = ["TransitionSystem", "to_btor2_text"]


@dataclass
class TransitionSystem:
    """A word-level sequential circuit.

    Attributes:
        name: module name.
        inputs: input name -> width.
        states: state (register) name -> (width, initial value).
        next_functions: state name -> expression over inputs and *current*
            state variables giving the state's value after the clock edge.
        outputs: output name -> expression over inputs and current states.

    Expressions refer to inputs and states by plain variable name
    (``bvvar(name, width)``).
    """

    name: str
    inputs: Dict[str, int] = field(default_factory=dict)
    states: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    next_functions: Dict[str, BVExpr] = field(default_factory=dict)
    outputs: Dict[str, BVExpr] = field(default_factory=dict)

    def output(self, name: str | None = None) -> BVExpr:
        """An output expression by name; defaults to the first declared output."""
        if not self.outputs:
            raise ValueError(f"transition system {self.name!r} has no outputs")
        if name is None:
            return next(iter(self.outputs.values()))
        return self.outputs[name]

    def is_combinational(self) -> bool:
        return not self.states


# --------------------------------------------------------------------------- #
# btor2 emission
# --------------------------------------------------------------------------- #
_BTOR_OPS = {
    "add": "add", "sub": "sub", "mul": "mul", "and": "and", "or": "or",
    "xor": "xor", "xnor": "xnor", "not": "not", "neg": "neg",
    "shl": "sll", "lshr": "srl", "ashr": "sra",
    "eq": "eq", "ne": "neq", "ult": "ult", "ule": "ulte", "ugt": "ugt",
    "uge": "ugte", "slt": "slt", "sle": "slte", "sgt": "sgt", "sge": "sgte",
    "concat": "concat", "ite": "ite", "redand": "redand", "redor": "redor",
}


def to_btor2_text(system: TransitionSystem) -> str:
    """Serialise a transition system in (a faithful subset of) btor2 syntax.

    The output uses ``sort``, ``input``, ``state``, ``init``, ``next``,
    ``output`` and the standard operator node forms.  It exists to expose
    the same intermediate artifact the paper's flow produces; the rest of
    the toolchain consumes the :class:`TransitionSystem` object directly.
    """
    lines: List[str] = []
    next_id = 1
    sort_ids: Dict[int, int] = {}
    node_ids: Dict[object, int] = {}

    def fresh() -> int:
        nonlocal next_id
        value = next_id
        next_id += 1
        return value

    def sort(width: int) -> int:
        if width not in sort_ids:
            sort_id = fresh()
            sort_ids[width] = sort_id
            lines.append(f"{sort_id} sort bitvec {width}")
        return sort_ids[width]

    def emit_expr(expr: BVExpr) -> int:
        if expr in node_ids:
            return node_ids[expr]
        if expr.op == "const":
            node_id = fresh()
            lines.append(f"{node_id} constd {sort(expr.width)} {expr.value}")
        elif expr.op == "var":
            # Variables must have been declared as inputs or states already.
            raise KeyError(f"variable {expr.name!r} was not declared in the system")
        elif expr.op == "extract":
            hi, lo = expr.params
            arg = emit_expr(expr.args[0])
            node_id = fresh()
            lines.append(f"{node_id} slice {sort(expr.width)} {arg} {hi} {lo}")
        else:
            arg_ids = [emit_expr(arg) for arg in expr.args]
            btor_op = _BTOR_OPS.get(expr.op)
            if btor_op is None:
                raise ValueError(f"operator {expr.op!r} has no btor2 equivalent")
            node_id = fresh()
            operands = " ".join(str(a) for a in arg_ids)
            lines.append(f"{node_id} {btor_op} {sort(expr.width)} {operands}")
        node_ids[expr] = node_id
        return node_id

    # Declare inputs and states first so variable references resolve.
    from repro.bv import bvvar  # local import to avoid a cycle at module load

    for name, width in system.inputs.items():
        node_id = fresh()
        lines.append(f"{node_id} input {sort(width)} {name}")
        node_ids[bvvar(name, width)] = node_id
    for name, (width, init) in system.states.items():
        node_id = fresh()
        lines.append(f"{node_id} state {sort(width)} {name}")
        node_ids[bvvar(name, width)] = node_id
        const_id = fresh()
        lines.append(f"{const_id} constd {sort(width)} {init}")
        init_id = fresh()
        lines.append(f"{init_id} init {sort(width)} {node_id} {const_id}")

    for name, (width, _) in system.states.items():
        next_expr_id = emit_expr(system.next_functions[name])
        next_id_line = fresh()
        state_id = node_ids[bvvar(name, width)]
        lines.append(f"{next_id_line} next {sort(width)} {state_id} {next_expr_id}")

    for name, expr in system.outputs.items():
        expr_id = emit_expr(expr)
        out_id = fresh()
        lines.append(f"{out_id} output {expr_id} {name}")

    return "\n".join(lines) + "\n"
