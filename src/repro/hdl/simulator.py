"""Cycle-accurate simulation of elaborated Verilog modules.

This is the reproduction's stand-in for Verilator: the evaluation validates
every Lakeroad-compiled design by simulating it against the behavioral
input over many consecutive cycles (§5.1).  The simulator runs directly on
the word-level transition system produced by elaboration, so it shares no
code with the ℒlr interpreter it is checking against.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.bv.eval import evaluate
from repro.hdl.ast import ModuleDecl
from repro.hdl.btor import TransitionSystem
from repro.hdl.elaborate import elaborate
from repro.hdl.parser import parse_module

__all__ = ["Simulator", "simulate_verilog"]


class Simulator:
    """Step-by-step simulation of a :class:`TransitionSystem`."""

    def __init__(self, system: TransitionSystem) -> None:
        self.system = system
        self.state: Dict[str, int] = {name: init for name, (width, init) in system.states.items()}
        self.cycle = 0

    # ------------------------------------------------------------------ #
    @classmethod
    def from_verilog(cls, source: str, module_name: Optional[str] = None) -> "Simulator":
        module = parse_module(source, module_name)
        return cls(elaborate(module))

    @classmethod
    def from_module(cls, module: ModuleDecl) -> "Simulator":
        return cls(elaborate(module))

    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Return every register to its initial value."""
        self.state = {name: init for name, (width, init) in self.system.states.items()}
        self.cycle = 0

    def _environment(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        env = dict(self.state)
        for name, width in self.system.inputs.items():
            env[name] = inputs.get(name, 0) & ((1 << width) - 1)
        return env

    def outputs(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        """Combinational outputs for the given inputs in the current state."""
        env = self._environment(inputs)
        return {name: evaluate(expr, env) for name, expr in self.system.outputs.items()}

    def step(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        """Advance one clock cycle; returns the outputs sampled *before* the edge."""
        env = self._environment(inputs)
        sampled = {name: evaluate(expr, env) for name, expr in self.system.outputs.items()}
        next_state = {name: evaluate(expr, env)
                      for name, expr in self.system.next_functions.items()}
        self.state.update(next_state)
        self.cycle += 1
        return sampled

    def run(self, input_streams: Mapping[str, Sequence[int]], cycles: int,
            output: Optional[str] = None) -> List[int]:
        """Simulate ``cycles`` cycles; returns the chosen output per cycle.

        ``input_streams`` maps input names to per-cycle value sequences;
        missing cycles reuse the last provided value.
        """
        trace: List[int] = []
        output_name = output
        if output_name is None:
            output_name = next(iter(self.system.outputs))
        for cycle in range(cycles):
            inputs = {}
            for name, stream in input_streams.items():
                index = min(cycle, len(stream) - 1) if len(stream) else 0
                inputs[name] = stream[index] if len(stream) else 0
            sampled = self.step(inputs)
            trace.append(sampled[output_name])
        return trace


def simulate_verilog(source: str, input_streams: Mapping[str, Sequence[int]],
                     cycles: int, module_name: Optional[str] = None,
                     output: Optional[str] = None) -> List[int]:
    """One-shot helper: parse, elaborate and simulate a module."""
    simulator = Simulator.from_verilog(source, module_name)
    return simulator.run(input_streams, cycles, output)
