"""Importing behavioral design fragments ("input 1") into ℒbeh.

The behavioral import path is the same extraction pipeline used for vendor
models — parse, elaborate, convert — because a behavioral design is just a
Verilog module without primitive instantiations.  The only extra work here
is picking the output port and reporting the design's pipeline depth (the
number of register stages between inputs and the output), which the
Lakeroad driver uses as the default synthesis timestep ``t``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.lang import Program, RegNode
from repro.core.sublang import is_behavioral
from repro.core.wellformed import check_well_formed
from repro.hdl.extract import extract_semantics

__all__ = ["BehavioralDesign", "verilog_to_behavioral", "pipeline_depth"]


@dataclass
class BehavioralDesign:
    """A behavioral design imported from Verilog."""

    name: str
    program: Program
    input_widths: Dict[str, int]
    output_name: str
    output_width: int
    pipeline_depth: int
    verilog: str


def pipeline_depth(program: Program) -> int:
    """The longest chain of registers from any input to the root.

    This is the number of clock cycles after which the design's output
    first reflects its inputs, and therefore the natural choice of ``t``
    for ``f_lr``.
    """
    depth_cache: Dict[int, int] = {}

    def depth(node_id: int) -> int:
        if node_id in depth_cache:
            return depth_cache[node_id]
        node = program[node_id]
        if isinstance(node, RegNode):
            # Mark before recursing so register feedback loops terminate.
            depth_cache[node_id] = 0
            value = 1 + depth(node.data)
        else:
            inputs = node.inputs()
            value = max((depth(i) for i in inputs), default=0)
        depth_cache[node_id] = value
        return value

    return depth(program.root)


def verilog_to_behavioral(source: str, module_name: Optional[str] = None,
                          output: Optional[str] = None) -> BehavioralDesign:
    """Parse and import a behavioral Verilog module into ℒbeh."""
    program, system = extract_semantics(source, module_name, output)
    if not is_behavioral(program):
        raise ValueError("the imported design is not in the behavioral fragment ℒbeh")
    check_well_formed(program)

    output_names = list(system.outputs)
    chosen_output = output if output is not None else output_names[0]
    output_width = program[program.root].width
    # The design's inputs exclude the clock (registers model clocking).
    input_widths = {name: width for name, width in system.inputs.items()
                    if name.lower() not in ("clk", "clock")}
    return BehavioralDesign(
        name=system.name,
        program=program,
        input_widths=input_widths,
        output_name=chosen_output,
        output_width=output_width,
        pipeline_depth=pipeline_depth(program),
        verilog=source,
    )
