"""Tokenizer for the supported Verilog subset."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

__all__ = ["Token", "tokenize", "LexError"]


class LexError(ValueError):
    """Raised on an unrecognised character sequence."""


@dataclass(frozen=True)
class Token:
    kind: str   # "id", "number", "sized_number", "string", "symbol", "keyword"
    text: str
    line: int


KEYWORDS = {
    "module", "endmodule", "input", "output", "inout", "wire", "reg", "signed",
    "parameter", "localparam", "assign", "always", "posedge", "negedge",
    "begin", "end", "if", "else", "case", "endcase", "default", "integer",
    "generate", "endgenerate", "genvar", "for", "initial", "function",
    "endfunction",
}

# Multi-character symbols, longest first so the regex prefers them.
_SYMBOLS = [
    "<<<", ">>>", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "~^", "^~",
    "**", "+:", "-:",
    "(", ")", "[", "]", "{", "}", ";", ",", ".", ":", "?", "@", "#", "=",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">",
]

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<attr>\(\*.*?\*\))
  | (?P<sized>\d*\s*'\s*[sS]?[bodhBODH]\s*[0-9a-fA-FxXzZ_?]+)
  | (?P<number>\d[\d_]*)
  | (?P<string>"[^"]*")
  | (?P<id>[A-Za-z_$][A-Za-z0-9_$]*|\\[^\s]+)
  | (?P<symbol>""" + "|".join(re.escape(s) for s in _SYMBOLS) + r""")
  | (?P<ws>\s+)
    """,
    re.VERBOSE | re.DOTALL,
)


def tokenize(text: str) -> List[Token]:
    """Tokenize Verilog source text; comments and attributes are discarded."""
    tokens: List[Token] = []
    position = 0
    line = 1
    length = len(text)
    while position < length:
        match = _TOKEN_RE.match(text, position)
        if match is None:
            snippet = text[position:position + 20]
            raise LexError(f"line {line}: cannot tokenize near {snippet!r}")
        kind = match.lastgroup
        value = match.group()
        line += value.count("\n")
        position = match.end()
        if kind in ("ws", "comment", "attr"):
            continue
        if kind == "sized":
            tokens.append(Token("sized_number", value.replace(" ", ""), line))
        elif kind == "number":
            tokens.append(Token("number", value, line))
        elif kind == "string":
            tokens.append(Token("string", value[1:-1], line))
        elif kind == "id":
            text_value = value[1:] if value.startswith("\\") else value
            token_kind = "keyword" if text_value in KEYWORDS else "id"
            tokens.append(Token(token_kind, text_value, line))
        else:
            tokens.append(Token("symbol", value, line))
    return tokens


def parse_sized_number(text: str) -> tuple[int, int]:
    """Parse a sized literal like ``16'h00ff`` into ``(value, width)``.

    ``x``/``z`` digits are converted to 0, matching the paper's requirement
    that models be adjusted to 2-state logic before extraction.
    """
    match = re.match(r"(\d*)'[sS]?([bodhBODH])([0-9a-fA-FxXzZ_?]+)", text)
    if match is None:
        raise LexError(f"malformed sized literal: {text!r}")
    width_text, base_char, digits = match.groups()
    digits = digits.replace("_", "").replace("?", "0")
    digits = re.sub(r"[xXzZ]", "0", digits)
    base = {"b": 2, "o": 8, "d": 10, "h": 16}[base_char.lower()]
    value = int(digits, base) if digits else 0
    width = int(width_text) if width_text else 32
    return value & ((1 << width) - 1), width
