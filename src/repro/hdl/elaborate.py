"""Elaboration: a parsed Verilog module into a word-level transition system.

Elaboration resolves signal widths, evaluates continuous assignments and
``always @(posedge clk)`` blocks, and produces a
:class:`~repro.hdl.btor.TransitionSystem` whose expressions are solver
bitvector terms.  Non-blocking assignments become register next-state
functions; blocking assignments inside always blocks act as combinational
temporaries; ``if``/``else`` chains become nested word-level muxes.

Width handling follows Verilog's context-determined sizing closely enough
for the supported subset: operands of arithmetic and bitwise operators are
extended to the assignment context width (sign-extended when declared
``signed``), comparisons and reductions are self-determined 1-bit results,
and assignments truncate or extend to the target width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.bv import (
    bv,
    bvadd,
    bvand,
    bvashr,
    bvconcat,
    bveq,
    bvextract,
    bvite,
    bvlshr,
    bvmul,
    bvne,
    bvneg,
    bvnot,
    bvor,
    bvredand,
    bvredor,
    bvsge,
    bvsgt,
    bvshl,
    bvsle,
    bvslt,
    bvsub,
    bvuge,
    bvugt,
    bvule,
    bvult,
    bvvar,
    bvxnor,
    bvxor,
    sign_extend,
    zero_extend,
)
from repro.bv.ast import BVExpr
from repro.hdl.ast import (
    AlwaysBlock,
    Binary,
    BlockingAssign,
    Concat,
    Expr,
    Identifier,
    IfStatement,
    ModuleDecl,
    NonBlockingAssign,
    Number,
    Replicate,
    Select,
    Statement,
    Ternary,
    Unary,
)
from repro.hdl.btor import TransitionSystem

__all__ = ["ElaborationError", "elaborate"]


class ElaborationError(ValueError):
    """Raised when a module cannot be elaborated."""


@dataclass
class _Signal:
    name: str
    width: int
    kind: str  # "input", "wire", "reg", "output_wire", "output_reg"
    is_signed: bool = False
    init: int = 0


class _LazyWireEnv:
    """A lazy mapping from signal name to resolved wire expression.

    Passing this to :meth:`_Elaborator.build` lets wire-to-wire references
    resolve on demand with memoisation (instead of eagerly materialising
    every wire for every lookup, which would be quadratic or worse).
    Signals that are not driven wires fall through to the caller's default
    (a plain variable), which is exactly what registers and inputs need.
    """

    def __init__(self, elaborator: "_Elaborator") -> None:
        self._elaborator = elaborator

    def get(self, name: str, default: Optional[BVExpr] = None) -> Optional[BVExpr]:
        if name in self._elaborator.wire_defs:
            return self._elaborator._wire_expression(name)
        return default

    def __contains__(self, name: str) -> bool:
        return name in self._elaborator.wire_defs


class _Elaborator:
    def __init__(self, module: ModuleDecl,
                 parameter_overrides: Optional[Mapping[str, int]] = None) -> None:
        self.module = module
        self.signals: Dict[str, _Signal] = {}
        self.parameters: Dict[str, int] = {p.name: p.default for p in module.parameters}
        if parameter_overrides:
            for name, value in parameter_overrides.items():
                if name not in self.parameters:
                    raise ElaborationError(f"module {module.name} has no parameter {name!r}")
                self.parameters[name] = value
        #: wire name -> defining expression (continuous assigns & blocking temps)
        self.wire_defs: Dict[str, Expr] = {}
        #: register name -> next-value HDL expression (after merging always blocks)
        self.reg_next: Dict[str, Expr] = {}
        self._wire_cache: Dict[str, BVExpr] = {}
        self._wire_visiting: set = set()
        self._lazy_env = _LazyWireEnv(self)
        self._collect_signals()

    # ------------------------------------------------------------------ #
    # Signal table
    # ------------------------------------------------------------------ #
    def _collect_signals(self) -> None:
        for port in self.module.ports:
            kind = "input" if port.direction == "input" else (
                "output_reg" if port.is_reg else "output_wire")
            self.signals[port.name] = _Signal(port.name, port.width, kind, port.is_signed)
        for net in self.module.nets:
            if net.name in self.signals:
                # A net declaration can re-declare a port as reg/wire.
                existing = self.signals[net.name]
                if net.kind == "reg" and existing.kind == "output_wire":
                    existing.kind = "output_reg"
                if net.width > 1 and existing.width == 1:
                    existing.width = net.width
                existing.is_signed = existing.is_signed or net.is_signed
                continue
            kind = "reg" if net.kind == "reg" else "wire"
            self.signals[net.name] = _Signal(net.name, net.width, kind, net.is_signed)

    def _signal(self, name: str) -> _Signal:
        if name in self.signals:
            return self.signals[name]
        raise ElaborationError(f"unknown identifier {name!r} in module {self.module.name}")

    # ------------------------------------------------------------------ #
    # Width computation
    # ------------------------------------------------------------------ #
    def self_width(self, expr: Expr) -> int:
        if isinstance(expr, Number):
            return expr.width if expr.width is not None else 32
        if isinstance(expr, Identifier):
            if expr.name in self.parameters:
                return 32
            return self._signal(expr.name).width
        if isinstance(expr, Unary):
            if expr.op in ("!", "&", "|", "^"):
                return 1
            return self.self_width(expr.operand)
        if isinstance(expr, Binary):
            if expr.op in ("==", "!=", "<", "<=", ">", ">=", "&&", "||"):
                return 1
            if expr.op in ("<<", ">>", ">>>"):
                return self.self_width(expr.left)
            return max(self.self_width(expr.left), self.self_width(expr.right))
        if isinstance(expr, Ternary):
            return max(self.self_width(expr.if_true), self.self_width(expr.if_false))
        if isinstance(expr, Concat):
            return sum(self.self_width(part) for part in expr.parts)
        if isinstance(expr, Replicate):
            return expr.count * self.self_width(expr.operand)
        if isinstance(expr, Select):
            high = self._const(expr.high)
            low = self._const(expr.low)
            return abs(high - low) + 1
        raise ElaborationError(f"cannot determine width of {expr!r}")

    def _is_signed(self, expr: Expr) -> bool:
        if isinstance(expr, Identifier) and expr.name in self.signals:
            return self.signals[expr.name].is_signed
        if isinstance(expr, (Unary,)):
            return expr.op in ("-", "~") and self._is_signed(expr.operand)
        if isinstance(expr, Binary) and expr.op in ("+", "-", "*", "&", "|", "^"):
            return self._is_signed(expr.left) and self._is_signed(expr.right)
        return False

    def _const(self, expr: Expr) -> int:
        if isinstance(expr, Number):
            return expr.value
        if isinstance(expr, Identifier) and expr.name in self.parameters:
            return self.parameters[expr.name]
        if isinstance(expr, Binary):
            left, right = self._const(expr.left), self._const(expr.right)
            table = {"+": left + right, "-": left - right, "*": left * right,
                     "/": left // right if right else 0}
            if expr.op in table:
                return table[expr.op]
        raise ElaborationError(f"expected a constant expression, got {expr!r}")

    # ------------------------------------------------------------------ #
    # Expression building
    # ------------------------------------------------------------------ #
    def _resize(self, value: BVExpr, width: int, signed: bool) -> BVExpr:
        if value.width == width:
            return value
        if value.width > width:
            return bvextract(width - 1, 0, value)
        extra = width - value.width
        return sign_extend(value, extra) if signed else zero_extend(value, extra)

    def build(self, expr: Expr, width: int, env: Mapping[str, BVExpr]) -> BVExpr:
        """Build a solver expression of exactly ``width`` bits for ``expr``.

        Verilog's context-determined sizing means an expression is evaluated
        at the *larger* of the assignment width and its own self-determined
        width, and only then truncated or extended to the target.  We apply
        that rule here so that e.g. ``assign o = (INIT >> addr) & 1'b1;``
        with a 1-bit ``o`` still evaluates the shift at the width of
        ``INIT``.
        """
        self_width = self.self_width(expr)
        if self_width > width:
            wide = self._build_core(expr, self_width, env)
            return self._resize(wide, width, self._is_signed(expr))
        return self._build_core(expr, width, env)

    def _build_core(self, expr: Expr, width: int, env: Mapping[str, BVExpr]) -> BVExpr:
        if isinstance(expr, Number):
            return bv(expr.value, width)
        if isinstance(expr, Identifier):
            if expr.name in self.parameters:
                return bv(self.parameters[expr.name], width)
            signal = self._signal(expr.name)
            base = env.get(expr.name, bvvar(expr.name, signal.width))
            return self._resize(base, width, signal.is_signed)
        if isinstance(expr, Unary):
            return self._build_unary(expr, width, env)
        if isinstance(expr, Binary):
            return self._build_binary(expr, width, env)
        if isinstance(expr, Ternary):
            condition = self._condition(expr.condition, env)
            return bvite(condition,
                         self.build(expr.if_true, width, env),
                         self.build(expr.if_false, width, env))
        if isinstance(expr, Concat):
            parts = [self.build(part, self.self_width(part), env) for part in expr.parts]
            return self._resize(bvconcat(*parts), width, signed=False)
        if isinstance(expr, Replicate):
            part_width = self.self_width(expr.operand)
            part = self.build(expr.operand, part_width, env)
            return self._resize(bvconcat(*([part] * expr.count)), width, signed=False)
        if isinstance(expr, Select):
            high, low = self._const(expr.high), self._const(expr.low)
            operand = self.build(expr.operand, self.self_width(expr.operand), env)
            return self._resize(bvextract(high, low, operand), width, signed=False)
        raise ElaborationError(f"unsupported expression {expr!r}")

    def _condition(self, expr: Expr, env: Mapping[str, BVExpr]) -> BVExpr:
        value = self.build(expr, self.self_width(expr), env)
        if value.width == 1:
            return value
        return bvredor(value)

    def _build_unary(self, expr: Unary, width: int, env: Mapping[str, BVExpr]) -> BVExpr:
        if expr.op == "~":
            return bvnot(self.build(expr.operand, width, env))
        if expr.op == "-":
            return bvneg(self.build(expr.operand, width, env))
        if expr.op == "!":
            inner = self._condition(expr.operand, env)
            return self._resize(bvnot(inner), width, signed=False)
        operand = self.build(expr.operand, self.self_width(expr.operand), env)
        if expr.op == "&":
            return self._resize(bvredand(operand), width, signed=False)
        if expr.op == "|":
            return self._resize(bvredor(operand), width, signed=False)
        if expr.op == "^":
            result = bvextract(0, 0, operand)
            for index in range(1, operand.width):
                result = bvxor(result, bvextract(index, index, operand))
            return self._resize(result, width, signed=False)
        raise ElaborationError(f"unsupported unary operator {expr.op!r}")

    def _build_binary(self, expr: Binary, width: int, env: Mapping[str, BVExpr]) -> BVExpr:
        op = expr.op
        if op in ("+", "-", "*", "&", "|", "^", "~^", "^~"):
            left = self.build(expr.left, width, env)
            right = self.build(expr.right, width, env)
            table = {"+": bvadd, "-": bvsub, "*": bvmul, "&": bvand, "|": bvor,
                     "^": bvxor, "~^": bvxnor, "^~": bvxnor}
            return table[op](left, right)
        if op in ("<<", ">>", ">>>"):
            left = self.build(expr.left, width, env)
            shift_width = self.self_width(expr.right)
            right = self.build(expr.right, shift_width, env)
            right = self._resize(right, width, signed=False)
            table = {"<<": bvshl, ">>": bvlshr, ">>>": bvashr}
            return table[op](left, right)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            operand_width = max(self.self_width(expr.left), self.self_width(expr.right))
            signed = self._is_signed(expr.left) and self._is_signed(expr.right)
            left = self.build(expr.left, operand_width, env)
            right = self.build(expr.right, operand_width, env)
            if signed:
                table = {"==": bveq, "!=": bvne, "<": bvslt, "<=": bvsle,
                         ">": bvsgt, ">=": bvsge}
            else:
                table = {"==": bveq, "!=": bvne, "<": bvult, "<=": bvule,
                         ">": bvugt, ">=": bvuge}
            return self._resize(table[op](left, right), width, signed=False)
        if op in ("&&", "||"):
            left = self._condition(expr.left, env)
            right = self._condition(expr.right, env)
            combined = bvand(left, right) if op == "&&" else bvor(left, right)
            return self._resize(combined, width, signed=False)
        raise ElaborationError(f"unsupported binary operator {op!r}")

    # ------------------------------------------------------------------ #
    # Module evaluation
    # ------------------------------------------------------------------ #
    def _wire_expression(self, name: str) -> BVExpr:
        """The defining expression of a wire, with wire-to-wire references
        resolved recursively and memoised (combinational loops are rejected)."""
        cache = self._wire_cache
        if name in cache:
            return cache[name]
        if name in self._wire_visiting:
            raise ElaborationError(f"combinational loop through wire {name!r}")
        signal = self._signal(name)
        definition = self.wire_defs.get(name)
        if definition is None:
            # Undriven wire: treat as an input-like free variable.
            result = bvvar(name, signal.width)
        else:
            self._wire_visiting.add(name)
            try:
                result = self.build(definition, signal.width, self._lazy_env)
            finally:
                self._wire_visiting.discard(name)
        cache[name] = result
        return result

    def run(self) -> TransitionSystem:
        module = self.module

        # Continuous assignments define wires (possibly by slices).
        sliced: Dict[str, List[Tuple[int, int, Expr]]] = {}
        for assign in module.assigns:
            if assign.high is None:
                if assign.target in self.wire_defs:
                    raise ElaborationError(f"wire {assign.target!r} assigned twice")
                self.wire_defs[assign.target] = assign.value
            else:
                sliced.setdefault(assign.target, []).append(
                    (assign.high, assign.low, assign.value))
        # Initialised net declarations behave like continuous assigns.
        for net in module.nets:
            if net.init is not None and net.kind == "wire":
                self.wire_defs[net.name] = net.init

        if sliced:
            raise ElaborationError("part-select assignment targets are not supported")

        # Always blocks: gather next-value expressions for registers.
        for block in module.always_blocks:
            self._process_always(block)

        # Resolve everything into a transition system.
        system = TransitionSystem(name=module.name)
        for port in module.input_ports():
            system.inputs[port.name] = port.width

        env = self._lazy_env

        register_names = set(self.reg_next)
        for name in register_names:
            signal = self._signal(name)
            system.states[name] = (signal.width, signal.init)
        for name, next_hdl_expr in self.reg_next.items():
            signal = self._signal(name)
            system.next_functions[name] = self.build(next_hdl_expr, signal.width, env)

        for port in module.output_ports():
            signal = self._signal(port.name)
            if port.name in register_names:
                system.outputs[port.name] = bvvar(port.name, signal.width)
            elif port.name in self.wire_defs:
                system.outputs[port.name] = self._wire_expression(port.name)
            else:
                raise ElaborationError(f"output {port.name!r} is never driven")
        return system

    # ------------------------------------------------------------------ #
    def _process_always(self, block: AlwaysBlock) -> None:
        """Convert one always block into register next-value expressions."""
        # Blocking assignments act as combinational temporaries local to the
        # block; we track them in a symbolic environment of HDL expressions
        # by substituting eagerly (sufficient for the supported subset).
        updates: Dict[str, Expr] = {}
        self._process_statements(block.body, condition=None, updates=updates)
        for target, expression in updates.items():
            if target in self.reg_next:
                raise ElaborationError(f"register {target!r} driven from two always blocks")
            self.reg_next[target] = expression

    def _process_statements(self, statements: Tuple[Statement, ...],
                            condition: Optional[Expr],
                            updates: Dict[str, Expr]) -> None:
        for statement in statements:
            if isinstance(statement, (NonBlockingAssign, BlockingAssign)):
                value = statement.value
                previous = updates.get(statement.target, Identifier(statement.target))
                if condition is not None:
                    value = Ternary(condition, value, previous)
                updates[statement.target] = value
            elif isinstance(statement, IfStatement):
                then_condition = statement.condition if condition is None else \
                    Binary("&&", condition, statement.condition)
                self._process_statements(statement.then_body, then_condition, updates)
                if statement.else_body:
                    not_condition = Unary("!", statement.condition)
                    else_condition = not_condition if condition is None else \
                        Binary("&&", condition, not_condition)
                    self._process_statements(statement.else_body, else_condition, updates)
            else:
                raise ElaborationError(f"unsupported statement {statement!r}")


def elaborate(module: ModuleDecl,
              parameter_overrides: Optional[Mapping[str, int]] = None) -> TransitionSystem:
    """Elaborate a parsed module into a word-level transition system."""
    return _Elaborator(module, parameter_overrides).run()
