"""Recursive-descent parser for the supported Verilog subset."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.hdl.ast import (
    AlwaysBlock,
    Binary,
    BlockingAssign,
    Concat,
    ContinuousAssign,
    Expr,
    Identifier,
    IfStatement,
    ModuleDecl,
    NetDecl,
    NonBlockingAssign,
    Number,
    Parameter,
    Port,
    Replicate,
    Select,
    SourceFile,
    Statement,
    Ternary,
    Unary,
)
from repro.hdl.lexer import Token, parse_sized_number, tokenize

__all__ = ["ParseError", "parse_verilog", "parse_module"]


class ParseError(ValueError):
    """Raised on a syntax error in the Verilog source."""


class _Parser:
    def __init__(self, tokens: List[Token], source: str) -> None:
        self.tokens = tokens
        self.position = 0
        self.source = source
        # Constant environment for evaluating widths (parameters/localparams).
        self.constants: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Token helpers
    # ------------------------------------------------------------------ #
    def peek(self, offset: int = 0) -> Optional[Token]:
        index = self.position + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def at_end(self) -> bool:
        return self.position >= len(self.tokens)

    def advance(self) -> Token:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self.position += 1
        return token

    def check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self.peek()
        if token is None or token.kind != kind:
            return False
        return text is None or token.text == text

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.peek()
        if not self.check(kind, text):
            where = f"line {token.line}: got {token.kind} {token.text!r}" if token else "end of input"
            raise ParseError(f"expected {text or kind}, {where}")
        return self.advance()

    # ------------------------------------------------------------------ #
    # Top level
    # ------------------------------------------------------------------ #
    def parse_source(self) -> SourceFile:
        source = SourceFile()
        while not self.at_end():
            if self.check("keyword", "module"):
                source.modules.append(self.parse_module())
            else:
                token = self.advance()
                raise ParseError(f"line {token.line}: unexpected {token.text!r} at top level")
        return source

    def parse_module(self) -> ModuleDecl:
        self.expect("keyword", "module")
        name = self.expect("id").text
        module = ModuleDecl(name=name)
        module.source_lines = _count_source_lines(self.source)
        self.constants = {}

        if self.accept("symbol", "#"):
            self.expect("symbol", "(")
            self._parse_parameter_list(module)
            self.expect("symbol", ")")

        if self.accept("symbol", "("):
            self._parse_port_list(module)
            self.expect("symbol", ")")
        self.expect("symbol", ";")

        while not self.check("keyword", "endmodule"):
            self._parse_module_item(module)
        self.expect("keyword", "endmodule")
        return module

    # ------------------------------------------------------------------ #
    # Header pieces
    # ------------------------------------------------------------------ #
    def _parse_parameter_list(self, module: ModuleDecl) -> None:
        while True:
            self.expect("keyword", "parameter")
            self._parse_range_opt()
            while True:
                pname = self.expect("id").text
                self.expect("symbol", "=")
                default = self._const_expr()
                module.parameters.append(Parameter(pname, default))
                self.constants[pname] = default
                if not self.accept("symbol", ","):
                    return
                if self.check("keyword", "parameter"):
                    break

    def _parse_range_opt(self) -> int:
        """Parse an optional ``[hi:lo]`` range, returning the width (default 1)."""
        if not self.accept("symbol", "["):
            return 1
        high = self._const_expr()
        self.expect("symbol", ":")
        low = self._const_expr()
        self.expect("symbol", "]")
        return abs(high - low) + 1

    def _parse_port_list(self, module: ModuleDecl) -> None:
        direction = None
        is_reg = False
        is_signed = False
        width = 1
        while True:
            if self.check("symbol", ")"):
                return
            if self.check("keyword") and self.peek().text in ("input", "output", "inout"):
                direction = self.advance().text
                is_reg = bool(self.accept("keyword", "reg"))
                self.accept("keyword", "wire")
                is_signed = bool(self.accept("keyword", "signed"))
                width = self._parse_range_opt()
            if direction is None:
                raise ParseError("port list without a direction keyword")
            port_name = self.expect("id").text
            module.ports.append(Port(port_name, direction, width, is_reg, is_signed))
            if not self.accept("symbol", ","):
                return

    # ------------------------------------------------------------------ #
    # Module items
    # ------------------------------------------------------------------ #
    def _parse_module_item(self, module: ModuleDecl) -> None:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input inside module")
        if self.check("keyword", "parameter") or self.check("keyword", "localparam"):
            self.advance()
            self._parse_range_opt()
            while True:
                pname = self.expect("id").text
                self.expect("symbol", "=")
                value = self._const_expr()
                module.parameters.append(Parameter(pname, value))
                self.constants[pname] = value
                if not self.accept("symbol", ","):
                    break
            self.expect("symbol", ";")
            return
        if self.check("keyword", "wire") or self.check("keyword", "reg") or \
                self.check("keyword", "integer"):
            kind = self.advance().text
            if kind == "integer":
                kind, width, is_signed = "reg", 32, True
            else:
                is_signed = bool(self.accept("keyword", "signed"))
                width = self._parse_range_opt()
            while True:
                net_name = self.expect("id").text
                init: Optional[Expr] = None
                if self.accept("symbol", "="):
                    init = self.parse_expression()
                module.nets.append(NetDecl(kind, net_name, width, init, is_signed))
                if not self.accept("symbol", ","):
                    break
            self.expect("symbol", ";")
            return
        if self.check("keyword", "input") or self.check("keyword", "output"):
            # Non-ANSI port declaration in the body.
            direction = self.advance().text
            is_reg = bool(self.accept("keyword", "reg"))
            is_signed = bool(self.accept("keyword", "signed"))
            width = self._parse_range_opt()
            while True:
                port_name = self.expect("id").text
                replaced = False
                for index, existing in enumerate(module.ports):
                    if existing.name == port_name:
                        module.ports[index] = Port(port_name, direction, width, is_reg, is_signed)
                        replaced = True
                if not replaced:
                    module.ports.append(Port(port_name, direction, width, is_reg, is_signed))
                if not self.accept("symbol", ","):
                    break
            self.expect("symbol", ";")
            return
        if self.check("keyword", "assign"):
            self.advance()
            target = self.expect("id").text
            high = low = None
            if self.accept("symbol", "["):
                high = self._const_expr()
                if self.accept("symbol", ":"):
                    low = self._const_expr()
                else:
                    low = high
                self.expect("symbol", "]")
            self.expect("symbol", "=")
            value = self.parse_expression()
            self.expect("symbol", ";")
            module.assigns.append(ContinuousAssign(target, value, high, low))
            return
        if self.check("keyword", "always"):
            self.advance()
            self.expect("symbol", "@")
            self.expect("symbol", "(")
            self.expect("keyword", "posedge")
            clock = self.expect("id").text
            self.expect("symbol", ")")
            body = self._parse_statement_block()
            module.always_blocks.append(AlwaysBlock(clock, tuple(body)))
            return
        raise ParseError(f"line {token.line}: unsupported module item starting with {token.text!r}")

    # ------------------------------------------------------------------ #
    # Statements
    # ------------------------------------------------------------------ #
    def _parse_statement_block(self) -> List[Statement]:
        if self.accept("keyword", "begin"):
            statements: List[Statement] = []
            while not self.check("keyword", "end"):
                statements.append(self._parse_statement())
            self.expect("keyword", "end")
            return statements
        return [self._parse_statement()]

    def _parse_statement(self) -> Statement:
        if self.check("keyword", "if"):
            self.advance()
            self.expect("symbol", "(")
            condition = self.parse_expression()
            self.expect("symbol", ")")
            then_body = self._parse_statement_block()
            else_body: List[Statement] = []
            if self.accept("keyword", "else"):
                else_body = self._parse_statement_block()
            return IfStatement(condition, tuple(then_body), tuple(else_body))
        target = self.expect("id").text
        if self.accept("symbol", "<="):
            value = self.parse_expression()
            self.expect("symbol", ";")
            return NonBlockingAssign(target, value)
        self.expect("symbol", "=")
        value = self.parse_expression()
        self.expect("symbol", ";")
        return BlockingAssign(target, value)

    # ------------------------------------------------------------------ #
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------ #
    def parse_expression(self) -> Expr:
        return self._ternary()

    def _ternary(self) -> Expr:
        condition = self._logical_or()
        if self.accept("symbol", "?"):
            if_true = self._ternary()
            self.expect("symbol", ":")
            if_false = self._ternary()
            return Ternary(condition, if_true, if_false)
        return condition

    def _binary_level(self, operators: Tuple[str, ...], next_level) -> Expr:
        left = next_level()
        while True:
            token = self.peek()
            if token is None or token.kind != "symbol" or token.text not in operators:
                return left
            op = self.advance().text
            right = next_level()
            left = Binary(op, left, right)

    def _logical_or(self) -> Expr:
        return self._binary_level(("||",), self._logical_and)

    def _logical_and(self) -> Expr:
        return self._binary_level(("&&",), self._bitor)

    def _bitor(self) -> Expr:
        return self._binary_level(("|",), self._bitxor)

    def _bitxor(self) -> Expr:
        return self._binary_level(("^", "~^", "^~"), self._bitand)

    def _bitand(self) -> Expr:
        return self._binary_level(("&",), self._equality)

    def _equality(self) -> Expr:
        return self._binary_level(("==", "!="), self._relational)

    def _relational(self) -> Expr:
        return self._binary_level(("<", "<=", ">", ">="), self._shift)

    def _shift(self) -> Expr:
        return self._binary_level(("<<", ">>", ">>>"), self._additive)

    def _additive(self) -> Expr:
        return self._binary_level(("+", "-"), self._multiplicative)

    def _multiplicative(self) -> Expr:
        return self._binary_level(("*", "/", "%"), self._unary)

    def _unary(self) -> Expr:
        token = self.peek()
        if token is not None and token.kind == "symbol" and token.text in ("~", "-", "!", "&", "|", "^", "+"):
            op = self.advance().text
            operand = self._unary()
            if op == "+":
                return operand
            return Unary(op, operand)
        return self._postfix()

    def _postfix(self) -> Expr:
        expr = self._primary()
        while self.check("symbol", "["):
            self.advance()
            high = self.parse_expression()
            if self.accept("symbol", ":"):
                low = self.parse_expression()
            else:
                low = high
            self.expect("symbol", "]")
            expr = Select(expr, high, low)
        return expr

    def _primary(self) -> Expr:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input in expression")
        if token.kind == "sized_number":
            self.advance()
            value, width = parse_sized_number(token.text)
            return Number(value, width)
        if token.kind == "number":
            self.advance()
            return Number(int(token.text.replace("_", "")), None)
        if token.kind == "string":
            # Strings become bitvectors (8 bits per character), matching the
            # paper's "strings should be converted to bitvectors" adjustment.
            self.advance()
            value = 0
            for char in token.text:
                value = (value << 8) | ord(char)
            return Number(value, max(8 * len(token.text), 1))
        if token.kind == "id":
            self.advance()
            return Identifier(token.text)
        if self.accept("symbol", "("):
            inner = self.parse_expression()
            self.expect("symbol", ")")
            return inner
        if self.accept("symbol", "{"):
            first = self.parse_expression()
            # Replication: {N{expr}}
            if self.check("symbol", "{"):
                count = self._expr_to_const(first)
                self.advance()
                operand = self.parse_expression()
                self.expect("symbol", "}")
                self.expect("symbol", "}")
                return Replicate(count, operand)
            parts = [first]
            while self.accept("symbol", ","):
                parts.append(self.parse_expression())
            self.expect("symbol", "}")
            return Concat(tuple(parts))
        raise ParseError(f"line {token.line}: unexpected token {token.text!r} in expression")

    # ------------------------------------------------------------------ #
    # Constant expressions (for widths and parameters)
    # ------------------------------------------------------------------ #
    def _const_expr(self) -> int:
        return self._expr_to_const(self.parse_expression())

    def _expr_to_const(self, expr: Expr) -> int:
        if isinstance(expr, Number):
            return expr.value
        if isinstance(expr, Identifier):
            if expr.name in self.constants:
                return self.constants[expr.name]
            raise ParseError(f"cannot evaluate identifier {expr.name!r} as a constant")
        if isinstance(expr, Unary):
            value = self._expr_to_const(expr.operand)
            return {"-": -value, "~": ~value, "!": int(not value)}[expr.op]
        if isinstance(expr, Binary):
            left = self._expr_to_const(expr.left)
            right = self._expr_to_const(expr.right)
            operations = {
                "+": left + right, "-": left - right, "*": left * right,
                "/": left // right if right else 0, "%": left % right if right else 0,
                "<<": left << right, ">>": left >> right,
                "==": int(left == right), "!=": int(left != right),
                "<": int(left < right), ">": int(left > right),
                "<=": int(left <= right), ">=": int(left >= right),
                "&": left & right, "|": left | right, "^": left ^ right,
            }
            return operations[expr.op]
        if isinstance(expr, Ternary):
            return (self._expr_to_const(expr.if_true)
                    if self._expr_to_const(expr.condition)
                    else self._expr_to_const(expr.if_false))
        raise ParseError(f"expression {expr!r} is not constant")


def _count_source_lines(source: str) -> int:
    """Source lines of code excluding comments and blank lines (Table 1)."""
    count = 0
    in_block_comment = False
    for raw_line in source.splitlines():
        line = raw_line.strip()
        if in_block_comment:
            if "*/" in line:
                in_block_comment = False
                line = line.split("*/", 1)[1].strip()
            else:
                continue
        if line.startswith("/*"):
            if "*/" not in line:
                in_block_comment = True
            continue
        if not line or line.startswith("//"):
            continue
        count += 1
    return count


def parse_verilog(source: str) -> SourceFile:
    """Parse Verilog source text into a :class:`SourceFile`."""
    tokens = tokenize(source)
    return _Parser(tokens, source).parse_source()


def parse_module(source: str, name: Optional[str] = None) -> ModuleDecl:
    """Parse source text and return one module (the only one, or by name)."""
    parsed = parse_verilog(source)
    if not parsed.modules:
        raise ParseError("no modules found in source")
    if name is None:
        if len(parsed.modules) > 1:
            raise ParseError("multiple modules found; specify a name")
        return parsed.modules[0]
    return parsed.module(name)
