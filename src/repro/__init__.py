"""Reproduction of "FPGA Technology Mapping Using Sketch-Guided Program Synthesis".

This package re-implements the Lakeroad FPGA technology mapper (ASPLOS 2024)
and every substrate it depends on, in pure Python:

* :mod:`repro.bv`   -- word-level bitvector expression IR with rewriting.
* :mod:`repro.sat`  -- CDCL / DPLL SAT solvers.
* :mod:`repro.smt`  -- QF_BV solving, equivalence checking, CEGIS synthesis.
* :mod:`repro.hdl`  -- Verilog-subset frontend, semantics extraction, emission.
* :mod:`repro.vendor` -- vendor-style primitive simulation models.
* :mod:`repro.arch` -- architecture descriptions and their loader.
* :mod:`repro.core` -- the Lakeroad IR, sketch templates and synthesis engine.
* :mod:`repro.engine` -- the mapping-engine layer: budgets, solver-backend
  registry, synthesis cache and the :class:`~repro.engine.MappingSession`
  that owns the map-one-design lifecycle.
* :mod:`repro.baselines` -- yosys-like and simulated proprietary mappers.
* :mod:`repro.workloads` -- the paper's microbenchmark enumeration.
* :mod:`repro.harness` -- experiment runners for every table and figure.

The user-facing entry point mirrors the ``lakeroad`` command line tool::

    from repro import lakeroad
    result = lakeroad.map_design(design, template="dsp",
                                 arch="xilinx-ultrascale-plus")
"""

__version__ = "1.0.0"

__all__ = [
    "lakeroad",
    "map_design",
    "map_verilog",
    "LakeroadResult",
    "MappingSession",
    "__version__",
]


def __getattr__(name):
    """Lazily expose the top-level API without importing the full stack."""
    if name in ("lakeroad", "map_design", "map_verilog", "LakeroadResult"):
        import importlib

        module = importlib.import_module("repro.lakeroad")
        if name == "lakeroad":
            return module
        return getattr(module, name)
    if name == "MappingSession":
        from repro.engine.session import MappingSession

        return MappingSession
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
