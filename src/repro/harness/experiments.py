"""Reproduction entry points for every table and figure in the evaluation.

Each function regenerates one artifact of Section 5 (see DESIGN.md's
experiment index) and returns plain data structures; the ``render_*``
helpers turn them into the text tables / bar rows the paper prints.  The
functions accept the benchmark list to run so callers choose between the
full enumeration (paper scale) and the stratified subsample (default).
"""

from __future__ import annotations

import statistics
from collections import Counter, defaultdict
from typing import Dict, List, Optional, Sequence

from repro.arch import available_architectures, load_architecture
from repro.baselines.common import analyze_design
from repro.harness.runner import ExperimentConfig, MappingRecord, run_baselines, run_lakeroad
from repro.vendor.library import PrimitiveLibrary
from repro.workloads.generator import (
    Microbenchmark,
    enumerate_workloads,
    sample_workloads,
    workload_counts,
)

__all__ = [
    "figure6_completeness",
    "figure6_timing",
    "figure7_histogram",
    "table1_primitives",
    "resource_reduction",
    "extensibility",
    "portfolio_stats",
    "portfolio_win_counts",
    "render_completeness_table",
    "render_timing_table",
    "render_table1",
    "default_benchmarks",
]

#: Paper-reported values, recorded so EXPERIMENTS.md and the harness can
#: print paper-vs-measured side by side.
PAPER_FIGURE6 = {
    "xilinx-ultrascale-plus": {"lakeroad_vs_yosys": 44.0, "lakeroad_vs_sota": 2.1,
                               "total": 1320},
    "lattice-ecp5": {"lakeroad_vs_yosys": 6.0, "lakeroad_vs_sota": 3.6, "total": 396},
    "intel-cyclone10lp": {"lakeroad_vs_yosys": float("inf"), "lakeroad_vs_sota": 3.0,
                          "total": 66},
}

PAPER_TIMING = {
    ("xilinx-ultrascale-plus", "lakeroad"): (14.99, 2.99, 127.70),
    ("xilinx-ultrascale-plus", "sota"): (261.61, 227.82, 598.67),
    ("xilinx-ultrascale-plus", "yosys"): (14.97, 6.66, 21.10),
    ("lattice-ecp5", "lakeroad"): (9.49, 6.70, 55.23),
    ("lattice-ecp5", "sota"): (2.32, 0.95, 4.52),
    ("lattice-ecp5", "yosys"): (2.31, 0.90, 4.01),
    ("intel-cyclone10lp", "lakeroad"): (2.92, 2.12, 4.13),
    ("intel-cyclone10lp", "sota"): (38.73, 19.11, 43.49),
    ("intel-cyclone10lp", "yosys"): (0.96, 0.48, 1.88),
}

PAPER_TABLE1 = {
    "DSP48E2": 896, "LUT6": 88, "CARRY8": 23,
    "ALU54A": 1642, "MULT18X18C": 795, "LUT2": 5, "LUT4": 7, "CCU2C": 60,
    "cyclone10lp_mac_mult": 319, "frac_lut4": 69,
}

PAPER_ARCH_SLOC = {"sofa": 20, "xilinx-ultrascale-plus": 185,
                   "lattice-ecp5": 240, "intel-cyclone10lp": 178}


def default_benchmarks(architecture: str, count: int = 8,
                       max_width: Optional[int] = 10, seed: int = 0) -> List[Microbenchmark]:
    """The stratified subsample the default harness runs (laptop scale)."""
    return sample_workloads(architecture, count, seed=seed, max_width=max_width)


# --------------------------------------------------------------------------- #
# Figure 6 (top): completeness
# --------------------------------------------------------------------------- #
def figure6_completeness(benchmarks_by_arch: Dict[str, Sequence[Microbenchmark]],
                         config: Optional[ExperimentConfig] = None,
                         include_lakeroad: bool = True,
                         session=None,
                         workers: Optional[int] = None) -> Dict[str, dict]:
    """Fraction of microbenchmarks each tool maps to a single DSP.

    ``session`` (a :class:`repro.engine.MappingSession`) is shared across
    every Lakeroad run so repeated sweeps hit the synthesis cache.
    ``workers`` > 1 shards each architecture's sweep across worker
    processes instead (set ``config.cache_dir`` so the workers share the
    persistent synthesis cache); it defaults to ``config.workers``.
    """
    config = config or ExperimentConfig()
    results: Dict[str, dict] = {}
    for architecture, benchmarks in benchmarks_by_arch.items():
        records: List[MappingRecord] = []
        if include_lakeroad:
            records.extend(run_lakeroad(benchmarks, config, session=session,
                                        workers=workers))
        records.extend(run_baselines(benchmarks))
        per_tool: Dict[str, Counter] = defaultdict(Counter)
        for record in records:
            per_tool[record.tool][record.outcome] += 1
        total = len(benchmarks)
        arch_summary = {"total": total, "tools": {}, "records": records}
        for tool, outcomes in per_tool.items():
            mapped = outcomes.get("success", 0)
            arch_summary["tools"][tool] = {
                "mapped": mapped,
                "unsat": outcomes.get("unsat", 0),
                "timeout": outcomes.get("timeout", 0),
                "failed": outcomes.get("fail", 0),
                "fraction": mapped / total if total else 0.0,
            }
        lakeroad_mapped = arch_summary["tools"].get("lakeroad", {}).get("mapped", 0)
        for other in ("sota", "yosys"):
            other_mapped = arch_summary["tools"].get(other, {}).get("mapped", 0)
            ratio = (lakeroad_mapped / other_mapped) if other_mapped else float("inf")
            arch_summary[f"lakeroad_vs_{other}"] = ratio
        arch_summary["paper"] = PAPER_FIGURE6.get(architecture, {})
        results[architecture] = arch_summary
    return results


# --------------------------------------------------------------------------- #
# Figure 6 (bottom): timing table
# --------------------------------------------------------------------------- #
def figure6_timing(records_by_arch: Dict[str, Sequence[MappingRecord]]) -> List[dict]:
    """Median / min / max mapping time per (architecture, tool)."""
    rows: List[dict] = []
    for architecture, records in records_by_arch.items():
        per_tool: Dict[str, List[float]] = defaultdict(list)
        for record in records:
            per_tool[record.tool].append(record.time_seconds)
        for tool, times in sorted(per_tool.items()):
            paper = PAPER_TIMING.get((architecture, tool))
            rows.append({
                "architecture": architecture,
                "tool": tool,
                "median": statistics.median(times),
                "min": min(times),
                "max": max(times),
                "count": len(times),
                "paper_median": paper[0] if paper else None,
                "paper_min": paper[1] if paper else None,
                "paper_max": paper[2] if paper else None,
            })
    return rows


# --------------------------------------------------------------------------- #
# Figure 7: runtime histogram
# --------------------------------------------------------------------------- #
def figure7_histogram(records: Sequence[MappingRecord], bins: int = 12,
                      timeout_seconds: Optional[float] = None) -> dict:
    """Histogram of Lakeroad synthesis runtimes for terminating runs."""
    terminating = [r.time_seconds for r in records
                   if r.tool == "lakeroad" and r.outcome in ("success", "unsat")]
    if not terminating:
        return {"bin_edges": [], "counts": [], "terminating": 0, "timeouts": 0}
    low, high = 0.0, max(terminating)
    width = (high - low) / bins if high > low else 1.0
    edges = [low + i * width for i in range(bins + 1)]
    counts = [0] * bins
    for value in terminating:
        index = min(int((value - low) / width), bins - 1) if width else 0
        counts[index] += 1
    timeouts = sum(1 for r in records if r.tool == "lakeroad" and r.outcome == "timeout")
    return {"bin_edges": edges, "counts": counts, "terminating": len(terminating),
            "timeouts": timeouts, "timeout_threshold": timeout_seconds}


# --------------------------------------------------------------------------- #
# Table 1: primitives imported from vendor models
# --------------------------------------------------------------------------- #
def table1_primitives(library: Optional[PrimitiveLibrary] = None) -> List[dict]:
    """Primitives imported automatically, with model SLoC (ours vs paper's)."""
    library = library or PrimitiveLibrary()
    rows = library.table1_rows()
    for row in rows:
        row["paper_verilog_sloc"] = PAPER_TABLE1.get(row["primitive"])
    return rows


# --------------------------------------------------------------------------- #
# §5.1 resource reduction
# --------------------------------------------------------------------------- #
def resource_reduction(records: Sequence[MappingRecord]) -> Dict[str, dict]:
    """Average LEs / registers saved by Lakeroad versus each baseline."""
    by_benchmark: Dict[tuple, Dict[str, MappingRecord]] = defaultdict(dict)
    for record in records:
        by_benchmark[(record.architecture, record.benchmark)][record.tool] = record
    accumulators: Dict[str, dict] = defaultdict(lambda: {"le_savings": [], "reg_savings": []})
    for tools in by_benchmark.values():
        lakeroad = tools.get("lakeroad")
        if lakeroad is None or lakeroad.outcome != "success":
            continue
        for tool_name, record in tools.items():
            if tool_name == "lakeroad":
                continue
            key = f"{record.architecture}:{tool_name}"
            accumulators[key]["le_savings"].append(record.luts - lakeroad.luts)
            accumulators[key]["reg_savings"].append(record.registers - lakeroad.registers)
    summary: Dict[str, dict] = {}
    for key, data in accumulators.items():
        if not data["le_savings"]:
            continue
        summary[key] = {
            "avg_les_saved": statistics.mean(data["le_savings"]),
            "avg_registers_saved": statistics.mean(data["reg_savings"]),
            "benchmarks": len(data["le_savings"]),
        }
    return summary


# --------------------------------------------------------------------------- #
# §5.2 extensibility
# --------------------------------------------------------------------------- #
def extensibility() -> List[dict]:
    """Architecture-description sizes (ours vs the paper's)."""
    rows = []
    for name in available_architectures():
        description = load_architecture(name)
        rows.append({
            "architecture": name,
            "description_sloc": description.source_lines,
            "paper_description_sloc": PAPER_ARCH_SLOC.get(name),
            "interfaces_implemented": [impl.interface for impl in description.implementations],
        })
    return rows


# --------------------------------------------------------------------------- #
# §5.1 solver-portfolio statistics
# --------------------------------------------------------------------------- #
def portfolio_stats(records_with_strategies: Sequence[dict]) -> Dict[str, int]:
    """Which decision strategy answered first, across synthesis queries.

    The paper reports Bitwuzla 671 / STP 519 / Yices2 464 / cvc5 64; our
    portfolio members are ``normalise`` (word-level rewriting), ``simulate``
    (random probing), ``sat:cdcl`` and ``sat:dpll``.
    """
    counter: Counter = Counter()
    for entry in records_with_strategies:
        counter[entry.get("candidate_strategy", "unknown")] += 1
        counter[entry.get("verify_strategy", "unknown")] += 0  # tracked separately
    return dict(counter)


def portfolio_win_counts(session) -> Dict[str, int]:
    """Per-member first-answer win counts from a session's SAT portfolio.

    This is the direct analogue of the paper's Bitwuzla/STP/Yices2/cvc5
    table: the concurrent race records which registered backend answered
    first for every query that reached the bit-blasting layer.
    """
    return session.portfolio_wins()


# --------------------------------------------------------------------------- #
# Rendering helpers
# --------------------------------------------------------------------------- #
def render_completeness_table(results: Dict[str, dict]) -> str:
    lines = ["architecture                 tool      mapped  unsat  timeout  failed  fraction"]
    for architecture, summary in results.items():
        for tool, data in sorted(summary["tools"].items()):
            lines.append(
                f"{architecture:28s} {tool:9s} {data['mapped']:6d} {data['unsat']:6d} "
                f"{data['timeout']:8d} {data['failed']:7d}  {data['fraction']:.2f}")
        for other in ("sota", "yosys"):
            ratio = summary.get(f"lakeroad_vs_{other}")
            paper_ratio = summary.get("paper", {}).get(f"lakeroad_vs_{other}")
            lines.append(f"  lakeroad vs {other}: {ratio:.2f}x (paper: {paper_ratio}x)")
    return "\n".join(lines)


def render_timing_table(rows: List[dict]) -> str:
    lines = ["architecture                 tool      median    min      max     (paper median)"]
    for row in rows:
        paper = f"{row['paper_median']:.2f}" if row.get("paper_median") else "-"
        lines.append(
            f"{row['architecture']:28s} {row['tool']:9s} {row['median']:7.2f} "
            f"{row['min']:7.2f} {row['max']:8.2f}   ({paper})")
    return "\n".join(lines)


def render_table1(rows: List[dict]) -> str:
    lines = ["architecture          primitive              model SLoC   paper SLoC"]
    for row in rows:
        paper = row.get("paper_verilog_sloc")
        lines.append(f"{row['architecture']:21s} {row['primitive']:22s} "
                     f"{row['verilog_sloc']:10d}   {paper if paper else '-'}")
    return "\n".join(lines)
