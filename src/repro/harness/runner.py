"""Running tools over microbenchmarks and collecting per-run records."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.baselines import YosysLikeMapper, sota_for
from repro.engine import budget as budget_mod
from repro.engine.session import MappingSession, default_session
from repro.hdl.behavioral import verilog_to_behavioral
from repro.workloads.generator import Microbenchmark

__all__ = [
    "ExperimentConfig",
    "MappingRecord",
    "record_from_result",
    "map_benchmark",
    "run_lakeroad",
    "run_baselines",
    "records_to_jsonl",
    "records_from_jsonl",
]


@dataclass
class ExperimentConfig:
    """Knobs for an experiment run.

    The paper's full-scale settings are ``timeout_seconds`` of 120/40/20 for
    Xilinx/Lattice/Intel and the complete enumeration; the defaults are the
    laptop-scale budgets derived from the one table in
    :mod:`repro.engine.budget` (see EXPERIMENTS.md for the mapping between
    the two scales).  Architectures missing from ``timeout_seconds`` fall
    back to the engine's canonical (paper-scale) table rather than a flat
    constant, so partial overrides only change the architectures they name.
    """

    timeout_seconds: Dict[str, float] = field(default_factory=budget_mod.laptop_timeouts)
    extra_cycles: int = 1
    validate: bool = False
    template: str = "dsp"
    #: Timing experiments set this to False: a cached result reports the
    #: cache-lookup time, not the synthesis time being measured.  None
    #: defers to the session's own ``enable_cache`` setting.
    use_cache: Optional[bool] = None
    #: Worker processes for the sweep.  1 runs in-process (the historical
    #: serial behavior); >1 shards the benchmark list across a process pool
    #: (see :mod:`repro.engine.parallel`).
    workers: int = 1
    #: Directory for the persistent synthesis cache shared by every worker
    #: (and by later runs); None keeps the cache in-memory and per-process.
    cache_dir: Optional[str] = None
    #: SAT racing style for the sessions this config builds:
    #: ``"thread"``, ``"process"`` or ``"sequential"``.
    portfolio: str = "thread"
    #: Run the CEGIS candidate step on one persistent solver session per
    #: design (learned clauses reused across iterations).  Statuses and
    #: hole values are identical to from-scratch mode.
    incremental: bool = False
    #: Run the CEGIS verification step on one persistent assumption-gated
    #: miter session per design (sketch blasted once, hole values bound as
    #: assumptions, failure cores pruning the candidate space).  Statuses,
    #: hole values and iteration counts are identical to the portfolio
    #: verifier.
    incremental_verify: bool = False
    #: Random-probe budget for the packed (64-lane word-parallel) fast
    #: layers in the solver and the CEGIS candidate step; see
    #: :mod:`repro.bv.bitsim`.  0 disables random probing entirely.
    random_probes: int = 32

    def timeout_for(self, architecture: str) -> float:
        return budget_mod.timeout_for(architecture, self.timeout_seconds)

    def to_dict(self) -> dict:
        """A plain-dict form (JSON-able); the distributed coordinator
        ships this so every worker runs the exact same knobs."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentConfig":
        """Rebuild from :meth:`to_dict` output, ignoring unknown keys so
        configs from newer coordinators still load."""
        known = {f.name for f in fields(cls)}
        kwargs = {key: value for key, value in data.items() if key in known}
        timeouts = kwargs.get("timeout_seconds")
        if isinstance(timeouts, dict):
            kwargs["timeout_seconds"] = {str(arch): float(value)
                                         for arch, value in timeouts.items()}
        return cls(**kwargs)


@dataclass
class MappingRecord:
    """One (tool, microbenchmark) data point."""

    tool: str
    architecture: str
    benchmark: str
    form: str
    width: int
    stages: int
    signed: bool
    outcome: str              # "success", "unsat", "timeout", "fail"
    time_seconds: float
    dsps: int = 0
    luts: int = 0
    registers: int = 0
    cache_hit: bool = False
    #: The concrete mapper that produced the record (e.g. ``sota-lattice``)
    #: when ``tool`` is a family label like ``sota``; empty otherwise.
    tool_variant: str = ""
    #: Whether synthesis ran on a persistent (incremental) solver session,
    #: and the per-run incremental statistics (zero in from-scratch mode).
    incremental: bool = False
    clauses_retained: int = 0
    solver_restarts: int = 0
    #: Whether verification ran on a persistent assumption-gated miter
    #: session, and its per-run statistics (zero in portfolio mode).
    incremental_verify: bool = False
    verify_clauses_retained: int = 0
    cores_pruned: int = 0
    #: Clause-DB reduction telemetry from the persistent solver sessions
    #: (zero when neither incremental mode ran).
    clauses_deleted: int = 0
    db_size_peak: int = 0
    #: Propagation telemetry from the run's warm solver sessions: trail
    #: literals propagated, watcher entries examined, and wall seconds
    #: spent inside the SAT solver (the propagation-throughput numerators
    #: and denominator).
    propagations: int = 0
    watcher_visits: int = 0
    solver_solve_seconds: float = 0.0
    #: Bit-parallel probing telemetry: packed random-probe assignments
    #: evaluated across the candidate and verification steps, probe batches
    #: that found a satisfying lane, and verification counterexamples the
    #: packed pre-filter caught before any bit-blasting.
    probe_lanes_evaluated: int = 0
    probe_hits: int = 0
    prefilter_cex_found: int = 0

    @property
    def mapped(self) -> bool:
        return self.outcome == budget_mod.SUCCESS

    @property
    def propagations_per_second(self) -> float:
        """Propagation throughput over this run's SAT-solving seconds."""
        if self.solver_solve_seconds <= 0:
            return 0.0
        return self.propagations / self.solver_solve_seconds

    @property
    def watcher_visits_per_propagation(self) -> float:
        """Mean watcher entries examined per propagated literal."""
        if not self.propagations:
            return 0.0
        return self.watcher_visits / self.propagations

    def to_dict(self) -> dict:
        """A plain-dict form (JSON-able; the cross-process wire format)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "MappingRecord":
        """Rebuild a record from :meth:`to_dict` output.

        Unknown keys are ignored so records written by a newer schema still
        load (forward compatibility for archived JSONL dumps).
        """
        known = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})


def records_to_jsonl(records: Sequence[MappingRecord], path) -> Path:
    """Dump records to a JSON-lines file (one record per line)."""
    path = Path(path)
    path.write_text("".join(json.dumps(record.to_dict()) + "\n"
                            for record in records))
    return path


def records_from_jsonl(path) -> List[MappingRecord]:
    """Load records written by :func:`records_to_jsonl`."""
    records: List[MappingRecord] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            records.append(MappingRecord.from_dict(json.loads(line)))
    return records


def record_from_result(result, *, architecture: str, benchmark: str,
                       form: str = "", width: int = 0, stages: int = 0,
                       signed: bool = False) -> MappingRecord:
    """Build a :class:`MappingRecord` from a session's ``LakeroadResult``.

    The record is the outcome-derived fields of the result stamped with the
    caller's benchmark metadata.  The split matters because results are
    shared across requests (cache hits, and the service front door's
    coalesced duplicates): sign twins share a canonical fingerprint, so the
    same underlying result can legitimately be served under several
    (benchmark, signed) labels.
    """
    resources = result.resources
    synthesis = result.synthesis
    return MappingRecord(
        tool="lakeroad",
        architecture=architecture,
        benchmark=benchmark,
        form=form,
        width=width,
        stages=stages,
        signed=signed,
        outcome=result.status,
        time_seconds=result.time_seconds,
        dsps=resources.dsps if resources else 0,
        luts=resources.luts if resources else 0,
        registers=resources.registers if resources else 0,
        cache_hit=result.cache_hit,
        incremental=synthesis.incremental if synthesis else False,
        clauses_retained=synthesis.clauses_retained if synthesis else 0,
        solver_restarts=synthesis.solver_restarts if synthesis else 0,
        incremental_verify=synthesis.incremental_verify if synthesis else False,
        verify_clauses_retained=synthesis.verify_clauses_retained if synthesis else 0,
        cores_pruned=synthesis.cores_pruned if synthesis else 0,
        clauses_deleted=synthesis.clauses_deleted if synthesis else 0,
        db_size_peak=synthesis.db_size_peak if synthesis else 0,
        propagations=synthesis.propagations if synthesis else 0,
        watcher_visits=synthesis.watcher_visits if synthesis else 0,
        solver_solve_seconds=synthesis.solver_solve_seconds if synthesis else 0.0,
        probe_lanes_evaluated=synthesis.probe_lanes_evaluated if synthesis else 0,
        probe_hits=synthesis.probe_hits if synthesis else 0,
        prefilter_cex_found=synthesis.prefilter_cex_found if synthesis else 0,
    )


def map_benchmark(session: MappingSession, benchmark: Microbenchmark,
                  config: Optional[ExperimentConfig] = None) -> MappingRecord:
    """Map one microbenchmark on a session and record the data point.

    This is the per-item unit of work the serial sweep, the sharded worker
    processes and the service workers all run, so parallel and served
    results are serial results by construction.
    """
    config = config or ExperimentConfig()
    design = verilog_to_behavioral(benchmark.verilog)
    result = session.map_design(
        design,
        template=config.template,
        arch=benchmark.architecture,
        timeout_seconds=config.timeout_for(benchmark.architecture),
        extra_cycles=config.extra_cycles,
        validate=config.validate,
        use_cache=config.use_cache,
    )
    return record_from_result(result,
                              architecture=benchmark.architecture,
                              benchmark=benchmark.name,
                              form=benchmark.form.name,
                              width=benchmark.width,
                              stages=benchmark.stages,
                              signed=benchmark.signed)


def run_lakeroad(benchmarks: Sequence[Microbenchmark],
                 config: Optional[ExperimentConfig] = None,
                 session: Optional[MappingSession] = None,
                 workers: Optional[int] = None) -> List[MappingRecord]:
    """Run the Lakeroad mapper over microbenchmarks.

    With ``workers`` of 1 (the default) all runs share one
    :class:`MappingSession` (the process default unless one is supplied),
    so repeated sweeps over the same workloads hit the session's synthesis
    cache instead of re-synthesizing.  With ``workers`` > 1 the benchmark
    list is sharded across worker processes (each with its own session —
    pass ``config.cache_dir`` to share results through the persistent
    cache); the serial run is literally the ``workers=1`` case of that
    sharded code path.
    """
    config = config or ExperimentConfig()
    if workers is None:
        workers = config.workers
    if workers is not None and workers > 1:
        if session is not None:
            raise ValueError(
                "an in-memory session cannot be shared across worker "
                "processes; pass config.cache_dir to share the synthesis "
                "cache instead")
        from repro.engine.parallel import run_lakeroad_parallel

        return run_lakeroad_parallel(benchmarks, config, workers=workers)
    if session is None:
        if config.cache_dir is not None or config.portfolio != "thread" \
                or config.incremental or config.incremental_verify \
                or config.random_probes != 32:
            # The config asks for a non-default session; honour it instead
            # of silently dropping the knobs on the serial path.  The
            # session is ours, so release its disk-cache handle when done.
            from repro.engine.parallel import SessionSpec

            with SessionSpec.from_config(config).build() as session:
                return [map_benchmark(session, benchmark, config)
                        for benchmark in benchmarks]
        session = default_session()
    return [map_benchmark(session, benchmark, config) for benchmark in benchmarks]


def run_baselines(benchmarks: Sequence[Microbenchmark],
                  tools: Sequence[str] = ("sota", "yosys")) -> List[MappingRecord]:
    """Run the baseline mappers over microbenchmarks.

    Records carry the mapper's own labels: ``tool`` is the family the
    figures aggregate by (``sota`` / ``yosys``) and ``tool_variant`` the
    concrete mapper (e.g. ``sota-lattice``), so attribution follows the
    mapper object rather than its position in a hard-coded list.
    """
    records: List[MappingRecord] = []
    yosys = YosysLikeMapper()
    for benchmark in benchmarks:
        design = verilog_to_behavioral(benchmark.verilog)
        mappers = []
        if "sota" in tools:
            mappers.append(sota_for(benchmark.architecture))
        if "yosys" in tools:
            mappers.append(yosys)
        for mapper in mappers:
            result = mapper.map(design, benchmark.architecture, is_signed=benchmark.signed)
            records.append(MappingRecord(
                tool=mapper.family,
                tool_variant=mapper.name,
                architecture=benchmark.architecture,
                benchmark=benchmark.name,
                form=benchmark.form.name,
                width=benchmark.width,
                stages=benchmark.stages,
                signed=benchmark.signed,
                outcome="success" if result.mapped_to_single_dsp else "fail",
                time_seconds=result.time_seconds,
                dsps=result.resources.dsps,
                luts=result.resources.luts,
                registers=result.resources.registers,
            ))
    return records
