"""Running tools over microbenchmarks and collecting per-run records."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.baselines import YosysLikeMapper, sota_for
from repro.hdl.behavioral import verilog_to_behavioral
from repro.lakeroad import map_design
from repro.workloads.generator import Microbenchmark

__all__ = ["ExperimentConfig", "MappingRecord", "run_lakeroad", "run_baselines"]


@dataclass
class ExperimentConfig:
    """Knobs for an experiment run.

    The paper's full-scale settings are ``timeout_seconds`` of 120/40/20 for
    Xilinx/Lattice/Intel and the complete enumeration; the defaults here are
    sized for a laptop-scale run (see EXPERIMENTS.md for the mapping between
    the two).
    """

    timeout_seconds: Dict[str, float] = field(default_factory=lambda: {
        "xilinx-ultrascale-plus": 60.0,
        "lattice-ecp5": 20.0,
        "intel-cyclone10lp": 10.0,
    })
    extra_cycles: int = 1
    validate: bool = False
    template: str = "dsp"

    def timeout_for(self, architecture: str) -> float:
        return self.timeout_seconds.get(architecture, 60.0)


@dataclass
class MappingRecord:
    """One (tool, microbenchmark) data point."""

    tool: str
    architecture: str
    benchmark: str
    form: str
    width: int
    stages: int
    signed: bool
    outcome: str              # "success", "unsat", "timeout", "fail"
    time_seconds: float
    dsps: int = 0
    luts: int = 0
    registers: int = 0

    @property
    def mapped(self) -> bool:
        return self.outcome == "success"


def run_lakeroad(benchmarks: Sequence[Microbenchmark],
                 config: Optional[ExperimentConfig] = None) -> List[MappingRecord]:
    """Run the Lakeroad mapper over microbenchmarks."""
    config = config or ExperimentConfig()
    records: List[MappingRecord] = []
    for benchmark in benchmarks:
        design = verilog_to_behavioral(benchmark.verilog)
        result = map_design(
            design,
            template=config.template,
            arch=benchmark.architecture,
            timeout_seconds=config.timeout_for(benchmark.architecture),
            extra_cycles=config.extra_cycles,
            validate=config.validate,
        )
        resources = result.resources
        records.append(MappingRecord(
            tool="lakeroad",
            architecture=benchmark.architecture,
            benchmark=benchmark.name,
            form=benchmark.form.name,
            width=benchmark.width,
            stages=benchmark.stages,
            signed=benchmark.signed,
            outcome=result.status if result.status != "success" else "success",
            time_seconds=result.time_seconds,
            dsps=resources.dsps if resources else 0,
            luts=resources.luts if resources else 0,
            registers=resources.registers if resources else 0,
        ))
    return records


def run_baselines(benchmarks: Sequence[Microbenchmark],
                  tools: Sequence[str] = ("sota", "yosys")) -> List[MappingRecord]:
    """Run the baseline mappers over microbenchmarks."""
    records: List[MappingRecord] = []
    yosys = YosysLikeMapper()
    for benchmark in benchmarks:
        design = verilog_to_behavioral(benchmark.verilog)
        mappers = []
        if "sota" in tools:
            mappers.append(sota_for(benchmark.architecture))
        if "yosys" in tools:
            mappers.append(yosys)
        for mapper in mappers:
            result = mapper.map(design, benchmark.architecture, is_signed=benchmark.signed)
            records.append(MappingRecord(
                tool="sota" if mapper is not yosys else "yosys",
                architecture=benchmark.architecture,
                benchmark=benchmark.name,
                form=benchmark.form.name,
                width=benchmark.width,
                stages=benchmark.stages,
                signed=benchmark.signed,
                outcome="success" if result.mapped_to_single_dsp else "fail",
                time_seconds=result.time_seconds,
                dsps=result.resources.dsps,
                luts=result.resources.luts,
                registers=result.resources.registers,
            ))
    return records
