"""Running tools over microbenchmarks and collecting per-run records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.baselines import YosysLikeMapper, sota_for
from repro.engine import budget as budget_mod
from repro.engine.session import MappingSession, default_session
from repro.hdl.behavioral import verilog_to_behavioral
from repro.workloads.generator import Microbenchmark

__all__ = ["ExperimentConfig", "MappingRecord", "run_lakeroad", "run_baselines"]


@dataclass
class ExperimentConfig:
    """Knobs for an experiment run.

    The paper's full-scale settings are ``timeout_seconds`` of 120/40/20 for
    Xilinx/Lattice/Intel and the complete enumeration; the defaults are the
    laptop-scale budgets derived from the one table in
    :mod:`repro.engine.budget` (see EXPERIMENTS.md for the mapping between
    the two scales).  Architectures missing from ``timeout_seconds`` fall
    back to the engine's canonical (paper-scale) table rather than a flat
    constant, so partial overrides only change the architectures they name.
    """

    timeout_seconds: Dict[str, float] = field(default_factory=budget_mod.laptop_timeouts)
    extra_cycles: int = 1
    validate: bool = False
    template: str = "dsp"
    #: Timing experiments set this to False: a cached result reports the
    #: cache-lookup time, not the synthesis time being measured.  None
    #: defers to the session's own ``enable_cache`` setting.
    use_cache: Optional[bool] = None

    def timeout_for(self, architecture: str) -> float:
        return budget_mod.timeout_for(architecture, self.timeout_seconds)


@dataclass
class MappingRecord:
    """One (tool, microbenchmark) data point."""

    tool: str
    architecture: str
    benchmark: str
    form: str
    width: int
    stages: int
    signed: bool
    outcome: str              # "success", "unsat", "timeout", "fail"
    time_seconds: float
    dsps: int = 0
    luts: int = 0
    registers: int = 0
    cache_hit: bool = False

    @property
    def mapped(self) -> bool:
        return self.outcome == budget_mod.SUCCESS


def run_lakeroad(benchmarks: Sequence[Microbenchmark],
                 config: Optional[ExperimentConfig] = None,
                 session: Optional[MappingSession] = None) -> List[MappingRecord]:
    """Run the Lakeroad mapper over microbenchmarks.

    All runs share one :class:`MappingSession` (the process default unless
    one is supplied), so repeated sweeps over the same workloads hit the
    session's synthesis cache instead of re-synthesizing.
    """
    config = config or ExperimentConfig()
    session = session if session is not None else default_session()
    records: List[MappingRecord] = []
    for benchmark in benchmarks:
        design = verilog_to_behavioral(benchmark.verilog)
        result = session.map_design(
            design,
            template=config.template,
            arch=benchmark.architecture,
            timeout_seconds=config.timeout_for(benchmark.architecture),
            extra_cycles=config.extra_cycles,
            validate=config.validate,
            use_cache=config.use_cache,
        )
        resources = result.resources
        records.append(MappingRecord(
            tool="lakeroad",
            architecture=benchmark.architecture,
            benchmark=benchmark.name,
            form=benchmark.form.name,
            width=benchmark.width,
            stages=benchmark.stages,
            signed=benchmark.signed,
            outcome=result.status,
            time_seconds=result.time_seconds,
            dsps=resources.dsps if resources else 0,
            luts=resources.luts if resources else 0,
            registers=resources.registers if resources else 0,
            cache_hit=result.cache_hit,
        ))
    return records


def run_baselines(benchmarks: Sequence[Microbenchmark],
                  tools: Sequence[str] = ("sota", "yosys")) -> List[MappingRecord]:
    """Run the baseline mappers over microbenchmarks."""
    records: List[MappingRecord] = []
    yosys = YosysLikeMapper()
    for benchmark in benchmarks:
        design = verilog_to_behavioral(benchmark.verilog)
        mappers = []
        if "sota" in tools:
            mappers.append(sota_for(benchmark.architecture))
        if "yosys" in tools:
            mappers.append(yosys)
        for mapper in mappers:
            result = mapper.map(design, benchmark.architecture, is_signed=benchmark.signed)
            records.append(MappingRecord(
                tool="sota" if mapper is not yosys else "yosys",
                architecture=benchmark.architecture,
                benchmark=benchmark.name,
                form=benchmark.form.name,
                width=benchmark.width,
                stages=benchmark.stages,
                signed=benchmark.signed,
                outcome="success" if result.mapped_to_single_dsp else "fail",
                time_seconds=result.time_seconds,
                dsps=result.resources.dsps,
                luts=result.resources.luts,
                registers=result.resources.registers,
            ))
    return records
