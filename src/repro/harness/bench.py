"""``lakeroad bench``: a one-command performance snapshot.

The bench harness measures the numbers ROADMAP experiments and CI trend
lines care about and writes them to ``BENCH_<rev>.json`` (``<rev>`` is the
short git revision, or ``unknown`` outside a checkout):

* **probe throughput** — scalar ``evaluate`` versus the packed 64-lane
  :class:`~repro.bv.bitsim.PackedEvaluator` on a representative synthesis
  miter, in assignments/second (no early exit on either side, so the ratio
  is a pure engine comparison);
* **end-to-end sweep** — a cold mapping pass over sampled tier-1 workloads
  followed by a warm re-run, reporting wall time, solved rate, cache hit
  rate and the per-phase candidate/verify breakdown with the bit-parallel
  probing telemetry.

Snapshots are additive — each revision writes its own file — so comparing
two checkouts is ``diff BENCH_a.json BENCH_b.json``.
"""

from __future__ import annotations

import json
import random
import subprocess
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.bv import (
    bvadd,
    bvand,
    bvextract,
    bvite,
    bvmul,
    bvor,
    bvredor,
    bvvar,
    bvxor,
    evaluate,
    var_widths,
    zero_extend,
)
from repro.bv.bitsim import PROBE_LANES, PackedEvaluator

__all__ = ["git_revision", "probe_throughput", "run_bench", "write_snapshot"]


def git_revision(repo_root: Optional[Path] = None) -> str:
    """The short git revision of the checkout (``unknown`` when not a repo)."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo_root, capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    revision = completed.stdout.strip()
    return revision if completed.returncode == 0 and revision else "unknown"


def _representative_formula():
    """A miter-shaped formula exercising the op mix probe queries see.

    Built deterministically (fixed seed) so every bench run times the same
    DAG, and shaped like a tier-1 DSP-template equivalence query: 8-bit
    inputs, a multiply-add spec cone, a sketch cone of hole-selected muxes
    over word ops and arithmetic, and an xor-reduce miter root.
    """
    rng = random.Random(0xBEEF)
    width = 8
    a, b, c = (bvvar(name, width) for name in ("a", "b", "c"))
    spec = bvextract(
        width - 1, 0,
        bvadd(bvmul(zero_extend(a, width), zero_extend(b, width)),
              zero_extend(c, width)))
    pool = [a, b, c]
    for i in range(40):
        x, y = rng.choice(pool), rng.choice(pool)
        op = rng.choice((bvadd, bvand, bvor, bvxor, bvadd, bvxor))
        node = op(x, y)
        if rng.random() < 0.3:
            select = bvvar(f"h{i}", 1)
            node = bvite(select, node, bvxor(x, y))
        pool.append(node)
    sketch = bvadd(bvmul(pool[-1], pool[-2]), pool[-3])
    return bvredor(bvxor(spec, sketch))


def probe_throughput(assignments: int = 4096) -> Dict[str, float]:
    """Scalar vs packed evaluation throughput on the representative miter.

    Both sides evaluate exactly ``assignments`` random assignments drawn
    from the same seeded stream, with no early exit, and report
    assignments/second.  ``speedup`` is packed over scalar.
    """
    formula = _representative_formula()
    widths = var_widths(formula)
    items = list(widths.items())
    rng = random.Random(1)
    batch = [{name: rng.getrandbits(w) for name, w in items}
             for _ in range(assignments)]

    start = time.perf_counter()
    for assignment in batch:
        evaluate(formula, assignment)
    scalar_seconds = time.perf_counter() - start

    evaluator = PackedEvaluator(formula)
    start = time.perf_counter()
    for base in range(0, assignments, PROBE_LANES):
        evaluator.evaluate_batch(batch[base:base + PROBE_LANES])
    packed_seconds = time.perf_counter() - start

    scalar_rate = assignments / scalar_seconds if scalar_seconds else 0.0
    packed_rate = assignments / packed_seconds if packed_seconds else 0.0
    return {
        "assignments": float(assignments),
        "scalar_seconds": scalar_seconds,
        "packed_seconds": packed_seconds,
        "scalar_assignments_per_second": scalar_rate,
        "packed_assignments_per_second": packed_rate,
        "speedup": packed_rate / scalar_rate if scalar_rate else 0.0,
    }


def run_bench(architectures: Optional[Sequence[str]] = None,
              count: int = 4, seed: int = 0, max_width: int = 8,
              template: str = "dsp", random_probes: int = 32,
              throughput_assignments: int = 4096) -> dict:
    """Run the bench suite and return the snapshot payload."""
    from repro.engine.session import MappingSession
    from repro.harness.runner import ExperimentConfig
    from repro.hdl.behavioral import verilog_to_behavioral
    from repro.workloads.generator import ARCHITECTURE_WORKLOADS, sample_workloads

    if architectures is None:
        architectures = sorted(ARCHITECTURE_WORKLOADS)
    benchmarks = []
    for architecture in architectures:
        benchmarks.extend(sample_workloads(architecture, count, seed=seed,
                                           max_width=max_width))

    config = ExperimentConfig(template=template, random_probes=random_probes)
    designs: List[dict] = []
    phases = {"candidate_seconds": 0.0, "verify_seconds": 0.0}
    probes = {"probe_lanes_evaluated": 0, "probe_hits": 0,
              "prefilter_cex_found": 0}
    with MappingSession(random_probes=random_probes) as session:
        cold_start = time.perf_counter()
        for benchmark in benchmarks:
            design = verilog_to_behavioral(benchmark.verilog)
            result = session.map_design(
                design, template=template, arch=benchmark.architecture,
                timeout_seconds=config.timeout_for(benchmark.architecture))
            synthesis = result.synthesis
            designs.append({
                "benchmark": benchmark.name,
                "architecture": benchmark.architecture,
                "outcome": result.status,
                "time_seconds": result.time_seconds,
                "probe_lanes_evaluated":
                    synthesis.probe_lanes_evaluated if synthesis else 0,
                "probe_hits": synthesis.probe_hits if synthesis else 0,
                "prefilter_cex_found":
                    synthesis.prefilter_cex_found if synthesis else 0,
            })
            if synthesis is not None:
                phases["candidate_seconds"] += synthesis.candidate_time_seconds
                phases["verify_seconds"] += synthesis.verify_time_seconds
                probes["probe_lanes_evaluated"] += synthesis.probe_lanes_evaluated
                probes["probe_hits"] += synthesis.probe_hits
                probes["prefilter_cex_found"] += synthesis.prefilter_cex_found
        cold_seconds = time.perf_counter() - cold_start

        warm_start = time.perf_counter()
        warm_hits = 0
        for benchmark in benchmarks:
            design = verilog_to_behavioral(benchmark.verilog)
            result = session.map_design(
                design, template=template, arch=benchmark.architecture,
                timeout_seconds=config.timeout_for(benchmark.architecture))
            warm_hits += 1 if result.cache_hit else 0
        warm_seconds = time.perf_counter() - warm_start
        cache_stats = session.cache_stats()

    solved = sum(1 for design in designs if design["outcome"] == "success")
    throughput = probe_throughput(throughput_assignments)
    return {
        "revision": git_revision(),
        "tool": "lakeroad bench",
        "config": {
            "architectures": list(architectures),
            "count": count,
            "seed": seed,
            "max_width": max_width,
            "template": template,
            "random_probes": random_probes,
        },
        "totals": {
            "benchmarks": len(designs),
            "solved": solved,
            "solved_rate": solved / len(designs) if designs else 0.0,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "warm_cache_hit_rate": warm_hits / len(designs) if designs else 0.0,
            "cache": cache_stats,
        },
        "phases": phases,
        "probes": probes,
        "probe_throughput": throughput,
        "designs": designs,
    }


def write_snapshot(snapshot: dict, out_dir=".") -> Path:
    """Write ``snapshot`` to ``<out_dir>/BENCH_<rev>.json`` and return the path."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{snapshot['revision']}.json"
    path.write_text(json.dumps(snapshot, indent=2) + "\n")
    return path
