"""``lakeroad bench``: a one-command performance snapshot.

The bench harness measures the numbers ROADMAP experiments and CI trend
lines care about and writes them to ``BENCH_<rev>.json`` (``<rev>`` is the
short git revision, or ``unknown`` outside a checkout):

* **probe throughput** — scalar ``evaluate`` versus the packed 64-lane
  :class:`~repro.bv.bitsim.PackedEvaluator` on a representative synthesis
  miter, in assignments/second (no early exit on either side, so the ratio
  is a pure engine comparison);
* **end-to-end sweep** — a cold mapping pass over sampled tier-1 workloads
  followed by a warm re-run, reporting wall time, solved rate, cache hit
  rate, the per-phase candidate/verify breakdown with the bit-parallel
  probing telemetry, SAT propagation throughput
  (``totals.propagations_per_second``) and a ``memory`` section with the
  process peak RSS and the clause-database high-water mark;
* **serve throughput** — the warm service (:mod:`repro.engine.service`)
  against per-request cold-start: one ``lakeroad map`` subprocess per query
  versus a pipelined burst through ``lakeroad serve``, in requests/second
  with p50/p95 latency.  Saturated-throughput numbers, not single-query
  latency, are the figure of merit for the service (the Rucci et al.
  reporting style — see PAPERS.md);
* **distributed sweep** — the TCP coordinator/worker path
  (:mod:`repro.engine.distributed`) over loopback with two worker
  processes, against the serial in-process sweep on the same grid:
  wall times, records/second, and ``records_equal`` asserting the
  distributed merge reproduced the serial records exactly.

Snapshots are additive — each revision writes its own file — and
:func:`diff_snapshots` (``lakeroad bench --diff OLD.json NEW.json``)
compares two of them with per-metric regression thresholds.
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
import time

try:  # Unix only; the bench degrades gracefully elsewhere.
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.bv import (
    bvadd,
    bvand,
    bvextract,
    bvite,
    bvmul,
    bvor,
    bvredor,
    bvvar,
    bvxor,
    evaluate,
    var_widths,
    zero_extend,
)
from repro.bv.bitsim import PROBE_LANES, PackedEvaluator

__all__ = ["git_revision", "probe_throughput", "bench_serve",
           "bench_qos", "bench_distributed", "run_bench", "write_snapshot",
           "diff_snapshots", "DEFAULT_DIFF_THRESHOLDS"]


def git_revision(repo_root: Optional[Path] = None) -> str:
    """The short git revision of the checkout (``unknown`` when not a repo)."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo_root, capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    revision = completed.stdout.strip()
    return revision if completed.returncode == 0 and revision else "unknown"


def _peak_rss_kb() -> float:
    """Peak resident set size of this process in kilobytes (0.0 if unknown).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalise to
    kilobytes so snapshots diff cleanly across machines.
    """
    if resource is None:
        return 0.0
    peak = float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        peak /= 1024.0
    return peak


def _representative_formula():
    """A miter-shaped formula exercising the op mix probe queries see.

    Built deterministically (fixed seed) so every bench run times the same
    DAG, and shaped like a tier-1 DSP-template equivalence query: 8-bit
    inputs, a multiply-add spec cone, a sketch cone of hole-selected muxes
    over word ops and arithmetic, and an xor-reduce miter root.
    """
    rng = random.Random(0xBEEF)
    width = 8
    a, b, c = (bvvar(name, width) for name in ("a", "b", "c"))
    spec = bvextract(
        width - 1, 0,
        bvadd(bvmul(zero_extend(a, width), zero_extend(b, width)),
              zero_extend(c, width)))
    pool = [a, b, c]
    for i in range(40):
        x, y = rng.choice(pool), rng.choice(pool)
        op = rng.choice((bvadd, bvand, bvor, bvxor, bvadd, bvxor))
        node = op(x, y)
        if rng.random() < 0.3:
            select = bvvar(f"h{i}", 1)
            node = bvite(select, node, bvxor(x, y))
        pool.append(node)
    sketch = bvadd(bvmul(pool[-1], pool[-2]), pool[-3])
    return bvredor(bvxor(spec, sketch))


def probe_throughput(assignments: int = 4096) -> Dict[str, float]:
    """Scalar vs packed evaluation throughput on the representative miter.

    Both sides evaluate exactly ``assignments`` random assignments drawn
    from the same seeded stream, with no early exit, and report
    assignments/second.  ``speedup`` is packed over scalar.
    """
    formula = _representative_formula()
    widths = var_widths(formula)
    items = list(widths.items())
    rng = random.Random(1)
    batch = [{name: rng.getrandbits(w) for name, w in items}
             for _ in range(assignments)]

    start = time.perf_counter()
    for assignment in batch:
        evaluate(formula, assignment)
    scalar_seconds = time.perf_counter() - start

    evaluator = PackedEvaluator(formula)
    start = time.perf_counter()
    for base in range(0, assignments, PROBE_LANES):
        evaluator.evaluate_batch(batch[base:base + PROBE_LANES])
    packed_seconds = time.perf_counter() - start

    scalar_rate = assignments / scalar_seconds if scalar_seconds else 0.0
    packed_rate = assignments / packed_seconds if packed_seconds else 0.0
    return {
        "assignments": float(assignments),
        "scalar_seconds": scalar_seconds,
        "packed_seconds": packed_seconds,
        "scalar_assignments_per_second": scalar_rate,
        "packed_assignments_per_second": packed_rate,
        "speedup": packed_rate / scalar_rate if scalar_rate else 0.0,
    }


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


def _cold_process_baseline(benchmarks, template: str,
                           cold_requests: int) -> Dict[str, float]:
    """Requests/second of one ``lakeroad map`` subprocess per query.

    This is what every request costs without the service: full interpreter
    start, imports, vendor-library load and a from-scratch solve.  The
    subprocess inherits this interpreter's ``sys.path`` so the measurement
    works from a source checkout as well as an installed package.
    """
    import tempfile

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    seconds = 0.0
    ran = 0
    with tempfile.TemporaryDirectory(prefix="lakeroad-bench-") as tmp:
        sources = []
        for index, benchmark in enumerate(benchmarks):
            path = Path(tmp) / f"query_{index}.v"
            path.write_text(benchmark.verilog)
            sources.append((path, benchmark.architecture))
        start = time.perf_counter()
        for index in range(cold_requests):
            path, arch = sources[index % len(sources)]
            completed = subprocess.run(
                [sys.executable, "-m", "repro.cli", "map", str(path),
                 "--arch-desc", arch, "--template", template,
                 "--no-validate"],
                env=env, capture_output=True, timeout=600)
            if completed.returncode in (0, 2, 3):
                ran += 1
        seconds = time.perf_counter() - start
    rate = ran / seconds if seconds and ran else 0.0
    return {"requests": float(ran), "seconds": seconds,
            "requests_per_second": rate}


def bench_serve(architectures: Optional[Sequence[str]] = None,
                count: int = 4, seed: int = 0, max_width: int = 8,
                template: str = "dsp", random_probes: int = 32,
                requests: int = 32, workers: int = 2,
                cold_requests: int = 4) -> dict:
    """Measure ``lakeroad serve`` against per-request cold-start.

    Three phases: the subprocess-per-request baseline (``cold_requests``
    runs), a cold pass through the service (every unique query solved
    once), then a pipelined burst of ``requests`` queries against the warm
    pool with client-side p50/p95 latencies.  ``speedup_vs_cold`` — warm
    serve requests/second over the subprocess baseline — is the number the
    CI gate holds at ≥5×.
    """
    import tempfile

    from repro.engine.parallel import SessionSpec
    from repro.engine.service import ServerThread, ServiceClient, SolverService
    from repro.workloads.generator import ARCHITECTURE_WORKLOADS, sample_workloads

    if architectures is None:
        architectures = sorted(ARCHITECTURE_WORKLOADS)
    benchmarks = []
    for architecture in architectures:
        benchmarks.extend(sample_workloads(architecture, count, seed=seed,
                                           max_width=max_width))
    if not benchmarks:
        raise ValueError("the serve bench needs at least one benchmark")

    cold_process = _cold_process_baseline(benchmarks, template, cold_requests)

    spec = SessionSpec(random_probes=random_probes)
    latencies: List[float] = []
    with tempfile.TemporaryDirectory(prefix="lakeroad-serve-") as tmp:
        socket_path = Path(tmp) / "bench.sock"
        with SolverService(spec, workers=workers) as service:
            with ServerThread(service, socket_path):
                with ServiceClient(socket_path) as client:
                    # Cold serve: each unique query pays its one solve.
                    cold_start = time.perf_counter()
                    for benchmark in benchmarks:
                        client.map_verilog(benchmark.verilog,
                                           arch=benchmark.architecture,
                                           template=template,
                                           benchmark=benchmark.name,
                                           timeout=600)
                    serve_cold_seconds = time.perf_counter() - cold_start

                    # Warm burst: pipelined, saturating the pool.
                    burst_start = time.perf_counter()
                    futures = []
                    for index in range(requests):
                        benchmark = benchmarks[index % len(benchmarks)]
                        sent_at = time.perf_counter()
                        future = client.submit({
                            "op": "map", "verilog": benchmark.verilog,
                            "arch": benchmark.architecture,
                            "template": template,
                            "benchmark": benchmark.name})
                        future.add_done_callback(
                            lambda _, sent_at=sent_at: latencies.append(
                                time.perf_counter() - sent_at))
                        futures.append(future)
                    responses = [future.result(timeout=600)
                                 for future in futures]
                    warm_seconds = time.perf_counter() - burst_start
                    failed = sum(1 for r in responses if not r.get("ok"))
                    stats = client.stats()

    latencies.sort()
    warm_rate = requests / warm_seconds if warm_seconds else 0.0
    cold_rate = cold_process["requests_per_second"]
    serve_cold_rate = len(benchmarks) / serve_cold_seconds \
        if serve_cold_seconds else 0.0
    return {
        "workers": workers,
        "unique_queries": len(benchmarks),
        "cold_process": cold_process,
        "serve_cold": {"requests": float(len(benchmarks)),
                       "seconds": serve_cold_seconds,
                       "requests_per_second": serve_cold_rate},
        "serve_warm": {"requests": float(requests),
                       "seconds": warm_seconds,
                       "requests_per_second": warm_rate,
                       "p50_latency_seconds": _percentile(latencies, 0.50),
                       "p95_latency_seconds": _percentile(latencies, 0.95),
                       "failed": failed},
        "warm_hit_rate": stats.get("warm_hit_rate", 0.0),
        "speedup_vs_cold": warm_rate / cold_rate if cold_rate else 0.0,
        "service_stats": stats,
    }


def _qos_design(index: int, flavor: str = "a") -> str:
    """A tiny distinct-by-construction Verilog module for load generation.

    Width and the two operators cycle independently, so the first 64
    indices of each flavor produce 64 distinct program fingerprints —
    distinct synthesis keys, which is what a load generator needs (repeats
    of one design would coalesce into a single solve and carry no load).
    """
    width = 2 + (index % 4)
    ops = ("&", "|", "^", "+")
    op1 = ops[(index // 4) % 4]
    op2 = ops[(index // 16) % 4]
    tail = "a" if flavor == "a" else "b"
    return (f"module q{flavor}{index}(input [{width - 1}:0] a, b, "
            f"output [{width - 1}:0] out); "
            f"assign out = (a {op1} b) {op2} {tail}; endmodule")


def bench_qos(seed: int = 0, flood_requests: int = 32,
              steady_requests: int = 8, steady_clients: int = 2,
              workers: int = 1, max_workers: int = 3,
              max_pending: int = 8, client_queue: int = 6,
              arch: str = "intel-cyclone10lp",
              template: str = "dsp") -> dict:
    """Measure the service QoS layer under a mixed flooder/steady load.

    One flooding client pipelines ``flood_requests`` distinct queries
    while ``steady_clients`` polite clients send theirs one at a time;
    the pool is elastic (``workers`` … ``max_workers``) with tight
    admission caps, so the run exercises fair scheduling, structured
    ``overloaded`` rejections and both resize directions.  Reported:
    per-class p50/p95 latency (plus an uncontended steady baseline and
    the contended/uncontended ``fairness_ratio``), the flooder's
    rejection rate, and the resize counters.
    """
    import tempfile
    import threading

    from repro.engine.parallel import SessionSpec
    from repro.engine.service import ServerThread, ServiceClient, SolverService

    rng = random.Random(seed)
    spec = SessionSpec(enable_cache=False, random_probes=8)
    service = SolverService(spec, workers=workers,
                            min_workers=workers, max_workers=max_workers,
                            max_pending=max_pending,
                            client_queue=client_queue,
                            scale_up_after=0.05,
                            idle_retire_seconds=0.25)
    steady_latencies: List[float] = []
    baseline_latencies: List[float] = []
    flood_latencies: List[float] = []
    rejected = 0
    flood_errors = 0
    lock = threading.Lock()
    thread_errors: List[BaseException] = []

    def guarded(target, *args):
        """Capture a worker thread's exception; a bare Thread would
        swallow it and the benchmark would silently report partial
        latencies."""
        def run() -> None:
            try:
                target(*args)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                with lock:
                    thread_errors.append(exc)
        return run

    def steady_pass(client: ServiceClient, tag: str, base: int,
                    sink: List[float]) -> None:
        for i in range(steady_requests):
            start = time.perf_counter()
            response = client.map_verilog(
                _qos_design(base + i, "b"), timeout=120,
                retry_overloaded=8, arch=arch, template=template,
                client=tag, use_cache=False)
            elapsed = time.perf_counter() - start
            with lock:
                sink.append(elapsed)
            if not response.get("ok"):
                raise RuntimeError(f"steady request failed: {response}")
            time.sleep(0.005 + rng.random() * 0.01)

    with tempfile.TemporaryDirectory(prefix="lakeroad-qos-") as tmp:
        socket_path = Path(tmp) / "qos.sock"
        with service, ServerThread(service, socket_path):
            # Uncontended baseline: one steady client, empty service.
            with ServiceClient(socket_path) as client:
                steady_pass(client, "baseline", 200, baseline_latencies)

            # Mixed load: the flooder pipelines everything at once.
            def flood() -> None:
                nonlocal rejected, flood_errors
                with ServiceClient(socket_path) as client:
                    sent = time.perf_counter()
                    futures = [client.submit({
                        "op": "map", "verilog": _qos_design(i, "a"),
                        "arch": arch, "template": template,
                        "client": "flooder", "use_cache": False})
                        for i in range(flood_requests)]
                    for future in futures:
                        response = future.result(timeout=120)
                        with lock:
                            flood_latencies.append(
                                time.perf_counter() - sent)
                        if response.get("error") == "overloaded":
                            rejected += 1
                        elif not response.get("ok"):
                            flood_errors += 1

            threads = [threading.Thread(target=guarded(flood))]
            steady_sockets = [ServiceClient(socket_path)
                              for _ in range(steady_clients)]
            for index, client in enumerate(steady_sockets):
                threads.append(threading.Thread(
                    target=guarded(steady_pass, client, f"steady-{index}",
                                   300 + 50 * index, steady_latencies)))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            for client in steady_sockets:
                client.close()
            if thread_errors:
                raise thread_errors[0]

            # Let the idle-retirement clock run the pool back down.
            shrink_deadline = time.monotonic() + 5.0
            while time.monotonic() < shrink_deadline:
                if service.stats()["workers"] <= workers:
                    break
                time.sleep(0.05)
            stats = service.stats()

    steady_latencies.sort()
    baseline_latencies.sort()
    flood_latencies.sort()
    baseline_p95 = _percentile(baseline_latencies, 0.95)
    contended_p95 = _percentile(steady_latencies, 0.95)
    return {
        "workers": workers,
        "max_workers": max_workers,
        "max_pending": max_pending,
        "client_queue": client_queue,
        "steady_uncontended": {
            "requests": float(len(baseline_latencies)),
            "p50_latency_seconds": _percentile(baseline_latencies, 0.50),
            "p95_latency_seconds": baseline_p95,
        },
        "steady_contended": {
            "requests": float(len(steady_latencies)),
            "p50_latency_seconds": _percentile(steady_latencies, 0.50),
            "p95_latency_seconds": contended_p95,
        },
        "fairness_ratio": contended_p95 / baseline_p95
        if baseline_p95 else 0.0,
        "flooder": {
            "requests": float(flood_requests),
            "rejected": float(rejected),
            "rejection_rate": rejected / flood_requests
            if flood_requests else 0.0,
            "errors": float(flood_errors),
            "p95_latency_seconds": _percentile(flood_latencies, 0.95),
        },
        "scale_ups": float(stats["scale_ups"]),
        "scale_downs": float(stats["scale_downs"]),
        "pool_peak": float(stats["pool_peak"]),
        "service_stats": stats,
    }


def _comparable_records(records) -> List[dict]:
    """Record dicts with the wall-clock fields dropped.

    ``time_seconds``/``solver_solve_seconds`` vary run to run and
    ``cache_hit`` depends on which process solved first, so record
    equality between the serial and distributed sweeps is judged on
    everything else (outcome, mapping, counters).
    """
    comparable = []
    for record in records:
        data = dict(record.to_dict())
        for key in ("time_seconds", "solver_solve_seconds", "cache_hit"):
            data.pop(key, None)
        comparable.append(data)
    return comparable


def bench_distributed(architectures: Optional[Sequence[str]] = None,
                      count: int = 4, seed: int = 0, max_width: int = 8,
                      template: str = "dsp", random_probes: int = 32,
                      workers: int = 2, shard_size: int = 2) -> dict:
    """Measure the distributed sweep against the serial baseline.

    Runs the same benchmark grid twice: once through the in-process
    :func:`~repro.engine.parallel.run_sweep` (workers=1, the ground
    truth) and once through :func:`~repro.engine.distributed.
    run_distributed_sweep` with ``workers`` loopback worker processes.
    ``records_equal`` is 1.0 when the distributed merge reproduced the
    serial records exactly (modulo wall-clock fields) — the determinism
    property the CI gate holds at 1.0.
    """
    from repro.engine.distributed import run_distributed_sweep
    from repro.engine.parallel import SessionSpec, run_sweep
    from repro.harness.runner import ExperimentConfig
    from repro.workloads.generator import ARCHITECTURE_WORKLOADS, sample_workloads

    if architectures is None:
        architectures = sorted(ARCHITECTURE_WORKLOADS)
    benchmarks = []
    for architecture in architectures:
        benchmarks.extend(sample_workloads(architecture, count, seed=seed,
                                           max_width=max_width))
    if not benchmarks:
        raise ValueError("the distributed bench needs at least one benchmark")

    config = ExperimentConfig(template=template, random_probes=random_probes)
    spec = SessionSpec(enable_cache=False, random_probes=random_probes)

    serial_start = time.perf_counter()
    serial = run_sweep(benchmarks, config, workers=1, session_spec=spec)
    serial_seconds = time.perf_counter() - serial_start

    distributed_start = time.perf_counter()
    distributed = run_distributed_sweep(benchmarks, config, workers=workers,
                                        session_spec=spec,
                                        shard_size=shard_size)
    distributed_seconds = time.perf_counter() - distributed_start

    records_equal = (_comparable_records(serial.records)
                     == _comparable_records(distributed.records))
    rate = len(distributed.records) / distributed_seconds \
        if distributed_seconds else 0.0
    return {
        "workers": workers,
        "shard_size": shard_size,
        "benchmarks": len(benchmarks),
        "serial_seconds": serial_seconds,
        "distributed_seconds": distributed_seconds,
        "records_per_second": rate,
        "speedup_vs_serial": serial_seconds / distributed_seconds
        if distributed_seconds else 0.0,
        "records_equal": 1.0 if records_equal else 0.0,
        "telemetry": distributed.telemetry,
    }


def run_bench(architectures: Optional[Sequence[str]] = None,
              count: int = 4, seed: int = 0, max_width: int = 8,
              template: str = "dsp", random_probes: int = 32,
              throughput_assignments: int = 4096,
              serve: bool = True, serve_requests: int = 32,
              serve_workers: int = 2,
              serve_cold_requests: int = 4,
              qos: bool = True,
              distributed: bool = True,
              distributed_workers: int = 2) -> dict:
    """Run the bench suite and return the snapshot payload."""
    from repro.engine.session import MappingSession
    from repro.harness.runner import ExperimentConfig
    from repro.hdl.behavioral import verilog_to_behavioral
    from repro.workloads.generator import ARCHITECTURE_WORKLOADS, sample_workloads

    if architectures is None:
        architectures = sorted(ARCHITECTURE_WORKLOADS)
    benchmarks = []
    for architecture in architectures:
        benchmarks.extend(sample_workloads(architecture, count, seed=seed,
                                           max_width=max_width))

    config = ExperimentConfig(template=template, random_probes=random_probes)
    designs: List[dict] = []
    phases = {"candidate_seconds": 0.0, "verify_seconds": 0.0}
    probes = {"probe_lanes_evaluated": 0, "probe_hits": 0,
              "prefilter_cex_found": 0}
    propagations = 0
    watcher_visits = 0
    solver_solve_seconds = 0.0
    clause_db_peak = 0
    with MappingSession(random_probes=random_probes) as session:
        cold_start = time.perf_counter()
        for benchmark in benchmarks:
            design = verilog_to_behavioral(benchmark.verilog)
            result = session.map_design(
                design, template=template, arch=benchmark.architecture,
                timeout_seconds=config.timeout_for(benchmark.architecture))
            synthesis = result.synthesis
            designs.append({
                "benchmark": benchmark.name,
                "architecture": benchmark.architecture,
                "outcome": result.status,
                "time_seconds": result.time_seconds,
                "probe_lanes_evaluated":
                    synthesis.probe_lanes_evaluated if synthesis else 0,
                "probe_hits": synthesis.probe_hits if synthesis else 0,
                "prefilter_cex_found":
                    synthesis.prefilter_cex_found if synthesis else 0,
            })
            if synthesis is not None:
                phases["candidate_seconds"] += synthesis.candidate_time_seconds
                phases["verify_seconds"] += synthesis.verify_time_seconds
                probes["probe_lanes_evaluated"] += synthesis.probe_lanes_evaluated
                probes["probe_hits"] += synthesis.probe_hits
                probes["prefilter_cex_found"] += synthesis.prefilter_cex_found
                propagations += synthesis.propagations
                watcher_visits += synthesis.watcher_visits
                solver_solve_seconds += synthesis.solver_solve_seconds
                clause_db_peak = max(clause_db_peak, synthesis.db_size_peak)
        cold_seconds = time.perf_counter() - cold_start

        warm_start = time.perf_counter()
        warm_hits = 0
        for benchmark in benchmarks:
            design = verilog_to_behavioral(benchmark.verilog)
            result = session.map_design(
                design, template=template, arch=benchmark.architecture,
                timeout_seconds=config.timeout_for(benchmark.architecture))
            warm_hits += 1 if result.cache_hit else 0
        warm_seconds = time.perf_counter() - warm_start
        cache_stats = session.cache_stats()

    solved = sum(1 for design in designs if design["outcome"] == "success")
    throughput = probe_throughput(throughput_assignments)
    serve_section = bench_serve(architectures=architectures, count=count,
                                seed=seed, max_width=max_width,
                                template=template,
                                random_probes=random_probes,
                                requests=serve_requests,
                                workers=serve_workers,
                                cold_requests=serve_cold_requests) \
        if serve else None
    qos_section = bench_qos(seed=seed, template=template) if qos else None
    distributed_section = bench_distributed(
        architectures=architectures, count=count, seed=seed,
        max_width=max_width, template=template,
        random_probes=random_probes,
        workers=distributed_workers) if distributed else None
    return {
        "revision": git_revision(),
        "tool": "lakeroad bench",
        "config": {
            "architectures": list(architectures),
            "count": count,
            "seed": seed,
            "max_width": max_width,
            "template": template,
            "random_probes": random_probes,
        },
        "totals": {
            "benchmarks": len(designs),
            "solved": solved,
            "solved_rate": solved / len(designs) if designs else 0.0,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "warm_cache_hit_rate": warm_hits / len(designs) if designs else 0.0,
            "cache": cache_stats,
            "propagations": propagations,
            "watcher_visits": watcher_visits,
            "solver_solve_seconds": solver_solve_seconds,
            "propagations_per_second":
                propagations / solver_solve_seconds
                if solver_solve_seconds > 0 else 0.0,
        },
        "memory": {
            "peak_rss_kb": _peak_rss_kb(),
            "clause_db_peak": clause_db_peak,
        },
        "phases": phases,
        "probes": probes,
        "probe_throughput": throughput,
        "serve": serve_section,
        "qos": qos_section,
        "distributed": distributed_section,
        "designs": designs,
    }


def write_snapshot(snapshot: dict, out_dir=".") -> Path:
    """Write ``snapshot`` to ``<out_dir>/BENCH_<rev>.json`` and return the path."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{snapshot['revision']}.json"
    path.write_text(json.dumps(snapshot, indent=2) + "\n")
    return path


# --------------------------------------------------------------------------- #
# Snapshot comparison (``lakeroad bench --diff OLD.json NEW.json``)
# --------------------------------------------------------------------------- #
#: Metric path -> (direction, allowed fractional regression).  ``higher``
#: metrics regress when ``new < old * (1 - allowed)``; ``lower`` metrics
#: (wall times, latencies) when ``new > old * (1 + allowed)``.  Wall-clock
#: metrics get generous margins — CI machines are noisy and the diff gate
#: must catch collapses, not jitter.
DEFAULT_DIFF_THRESHOLDS: Dict[str, tuple] = {
    "totals.solved_rate": ("higher", 0.0),
    "totals.warm_cache_hit_rate": ("higher", 0.05),
    "totals.cold_seconds": ("lower", 1.0),
    "totals.warm_seconds": ("lower", 1.0),
    "totals.propagations_per_second": ("higher", 0.5),
    "memory.peak_rss_kb": ("lower", 0.5),
    "memory.clause_db_peak": ("lower", 1.0),
    "probe_throughput.speedup": ("higher", 0.5),
    "probe_throughput.packed_assignments_per_second": ("higher", 0.5),
    "serve.warm_hit_rate": ("higher", 0.05),
    "serve.speedup_vs_cold": ("higher", 0.5),
    "serve.serve_warm.requests_per_second": ("higher", 0.5),
    "serve.serve_warm.p95_latency_seconds": ("lower", 2.0),
    "qos.steady_contended.p50_latency_seconds": ("lower", 2.0),
    "qos.steady_contended.p95_latency_seconds": ("lower", 2.0),
    "distributed.records_equal": ("higher", 0.0),
    "distributed.records_per_second": ("higher", 0.5),
}


def _lookup(snapshot: dict, path: str):
    value = snapshot
    for part in path.split("."):
        if not isinstance(value, dict) or part not in value:
            return None
        value = value[part]
    return value if isinstance(value, (int, float)) else None


def diff_snapshots(old: dict, new: dict,
                   thresholds: Optional[Dict[str, tuple]] = None
                   ) -> List[dict]:
    """Compare two bench snapshots; return the per-metric verdict list.

    Each entry carries ``metric``, ``old``, ``new``, ``change`` (signed
    fraction, positive = increased) and ``regressed``.  Metrics missing
    from either snapshot (e.g. a pre-service snapshot with no ``serve``
    section) are skipped, so old archives stay comparable.
    """
    thresholds = thresholds if thresholds is not None \
        else DEFAULT_DIFF_THRESHOLDS
    results: List[dict] = []
    for metric, (direction, allowed) in sorted(thresholds.items()):
        old_value = _lookup(old, metric)
        new_value = _lookup(new, metric)
        if old_value is None or new_value is None:
            continue
        change = (new_value - old_value) / old_value if old_value else 0.0
        if direction == "higher":
            regressed = new_value < old_value * (1.0 - allowed)
        else:
            regressed = new_value > old_value * (1.0 + allowed)
        results.append({"metric": metric, "direction": direction,
                        "allowed": allowed, "old": old_value,
                        "new": new_value, "change": change,
                        "regressed": regressed})
    return results
