"""Experiment harness: runners and per-figure/table reproduction entry points."""

from repro.harness.runner import (
    ExperimentConfig,
    MappingRecord,
    map_benchmark,
    records_from_jsonl,
    records_to_jsonl,
    run_baselines,
    run_lakeroad,
)
from repro.harness import experiments

__all__ = [
    "ExperimentConfig",
    "MappingRecord",
    "map_benchmark",
    "records_to_jsonl",
    "records_from_jsonl",
    "run_lakeroad",
    "run_baselines",
    "experiments",
]
