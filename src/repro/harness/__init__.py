"""Experiment harness: runners and per-figure/table reproduction entry points."""

from repro.harness.runner import ExperimentConfig, MappingRecord, run_lakeroad, run_baselines
from repro.harness import experiments

__all__ = [
    "ExperimentConfig",
    "MappingRecord",
    "run_lakeroad",
    "run_baselines",
    "experiments",
]
