"""Smart constructors for bitvector expressions.

Every constructor performs local rewriting before interning the node:
constant folding, identity/annihilator elimination, mux collapsing, and
pushing extracts through concats and extensions.  This keeps the DAGs that
reach the bit-blaster small and — crucially for the synthesis workload —
lets a fully configured FPGA primitive (whose control inputs are concrete)
collapse down to the plain arithmetic datapath it implements, so that the
equivalence checker can often discharge queries structurally.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.bv.ast import BVExpr, COMMUTATIVE_OPS
from repro.bv.ops import apply_op, mask, truncate

__all__ = [
    "bv",
    "bvvar",
    "bvadd",
    "bvsub",
    "bvmul",
    "bvneg",
    "bvnot",
    "bvand",
    "bvor",
    "bvxor",
    "bvxnor",
    "bvshl",
    "bvlshr",
    "bvashr",
    "bvconcat",
    "bvextract",
    "bvite",
    "bveq",
    "bvne",
    "bvult",
    "bvule",
    "bvugt",
    "bvuge",
    "bvslt",
    "bvsle",
    "bvsgt",
    "bvsge",
    "bvredand",
    "bvredor",
    "zero_extend",
    "sign_extend",
]


# --------------------------------------------------------------------------- #
# Leaves
# --------------------------------------------------------------------------- #
def bv(value: int, width: int) -> BVExpr:
    """A constant bitvector of the given width (value is masked)."""
    return BVExpr("const", width, value=truncate(value, width))


def bvvar(name: str, width: int) -> BVExpr:
    """A free bitvector variable."""
    if not name:
        raise ValueError("variable name must be non-empty")
    return BVExpr("var", width, name=name)


def _check_same_width(*exprs: BVExpr) -> int:
    width = exprs[0].width
    for e in exprs[1:]:
        if e.width != width:
            raise ValueError(
                f"width mismatch: {width} vs {e.width} in {[x.to_sexpr(2) for x in exprs]}"
            )
    return width


def _is_const_mux_tree(expr: BVExpr, depth: int = 6) -> bool:
    """True if ``expr`` is a constant, or an ite whose branches are
    (recursively) constant mux trees.

    These appear whenever a primitive's datapath is evaluated on *concrete*
    inputs with *symbolic* configuration holes — the CEGIS candidate step.
    Distributing operators over such trees lets the arithmetic fold away to
    constants, so candidate queries stay small mux networks over hole bits
    instead of symbolic multipliers.
    """
    if depth <= 0:
        return False
    if expr.is_const():
        return True
    if expr.op == "ite":
        return (_is_const_mux_tree(expr.args[1], depth - 1)
                and _is_const_mux_tree(expr.args[2], depth - 1))
    return False


def _distribute_over_mux(op: str, width: int, args: Sequence[BVExpr], params) -> Optional[BVExpr]:
    """If some argument is a constant mux tree (and not a plain constant),
    distribute the operator over its ite; returns None when the rule does
    not apply."""
    for index, arg in enumerate(args):
        if arg.op == "ite" and _is_const_mux_tree(arg):
            condition, on_true, on_false = arg.args
            left = list(args)
            right = list(args)
            left[index] = on_true
            right[index] = on_false
            return bvite(condition,
                         _fold(op, width, left, params),
                         _fold(op, width, right, params))
    return None


def _fold(op: str, width: int, args: Sequence[BVExpr], params=()) -> BVExpr:
    """Build a node, constant-folding if every argument is constant."""
    if all(a.is_const() for a in args):
        value = apply_op(op, width, [a.value for a in args], [a.width for a in args], params)
        return bv(value, width)
    if op == "mul":
        # Only multiplication is worth distributing over constant mux trees:
        # it is by far the most expensive operator to bit-blast, and the
        # CEGIS candidate step (concrete data, symbolic configuration holes)
        # otherwise produces a symbolic multiplier per example.  Cheaper
        # operators are left alone to avoid duplicating sub-DAGs.
        distributed = _distribute_over_mux(op, width, args, params)
        if distributed is not None:
            return distributed
    ordered = tuple(args)
    if op in COMMUTATIVE_OPS:
        # Canonicalise argument order so that commuted expressions intern to
        # the same node (constants last, then by hash — which is
        # process-independent, see repro.bv.ast._string_hash, so the order
        # and every downstream program fingerprint agree across processes).
        ordered = tuple(sorted(args, key=lambda a: (a.is_const(), a._hash)))
    return BVExpr(op, width, ordered, params=params)


# --------------------------------------------------------------------------- #
# Arithmetic
# --------------------------------------------------------------------------- #
def bvadd(*args: BVExpr) -> BVExpr:
    width = _check_same_width(*args)
    consts = [a for a in args if a.is_const()]
    rest = [a for a in args if not a.is_const()]
    const_sum = truncate(sum(c.value for c in consts), width) if consts else 0
    if not rest:
        return bv(const_sum, width)
    if const_sum != 0:
        rest.append(bv(const_sum, width))
    if len(rest) == 1:
        return rest[0]
    return _fold("add", width, rest)


def bvsub(a: BVExpr, b: BVExpr) -> BVExpr:
    width = _check_same_width(a, b)
    if b.is_zero():
        return a
    if a is b:
        return bv(0, width)
    return _fold("sub", width, (a, b))


def bvmul(*args: BVExpr) -> BVExpr:
    width = _check_same_width(*args)
    if any(a.is_zero() for a in args):
        return bv(0, width)
    rest = [a for a in args if not (a.is_const() and a.value == 1)]
    if not rest:
        return bv(1, width)
    if len(rest) == 1:
        return rest[0]
    return _fold("mul", width, rest)


def bvneg(a: BVExpr) -> BVExpr:
    if a.is_const():
        return bv(-a.value, a.width)
    return _fold("neg", a.width, (a,))


# --------------------------------------------------------------------------- #
# Bitwise logic
# --------------------------------------------------------------------------- #
def bvnot(a: BVExpr) -> BVExpr:
    if a.is_const():
        return bv(~a.value, a.width)
    if a.op == "not":
        return a.args[0]
    return _fold("not", a.width, (a,))


def bvand(*args: BVExpr) -> BVExpr:
    width = _check_same_width(*args)
    if any(a.is_zero() for a in args):
        return bv(0, width)
    rest = [a for a in args if not a.is_ones()]
    if not rest:
        return bv(mask(width), width)
    if len(rest) == 1:
        return rest[0]
    if len(set(rest)) == 1:
        return rest[0]
    return _fold("and", width, tuple(dict.fromkeys(rest)))


def bvor(*args: BVExpr) -> BVExpr:
    width = _check_same_width(*args)
    if any(a.is_ones() for a in args):
        return bv(mask(width), width)
    rest = [a for a in args if not a.is_zero()]
    if not rest:
        return bv(0, width)
    if len(rest) == 1:
        return rest[0]
    if len(set(rest)) == 1:
        return rest[0]
    return _fold("or", width, tuple(dict.fromkeys(rest)))


def bvxor(*args: BVExpr) -> BVExpr:
    width = _check_same_width(*args)
    rest = [a for a in args if not a.is_zero()]
    if not rest:
        return bv(0, width)
    if len(rest) == 1:
        return rest[0]
    if len(rest) == 2 and rest[0] is rest[1]:
        return bv(0, width)
    return _fold("xor", width, rest)


def bvxnor(a: BVExpr, b: BVExpr) -> BVExpr:
    width = _check_same_width(a, b)
    if a is b:
        return bv(mask(width), width)
    return _fold("xnor", width, (a, b))


# --------------------------------------------------------------------------- #
# Shifts
# --------------------------------------------------------------------------- #
def bvshl(a: BVExpr, amount: BVExpr) -> BVExpr:
    if amount.is_zero():
        return a
    return _fold("shl", a.width, (a, amount))


def bvlshr(a: BVExpr, amount: BVExpr) -> BVExpr:
    if amount.is_zero():
        return a
    return _fold("lshr", a.width, (a, amount))


def bvashr(a: BVExpr, amount: BVExpr) -> BVExpr:
    if amount.is_zero():
        return a
    return _fold("ashr", a.width, (a, amount))


# --------------------------------------------------------------------------- #
# Structure: concat / extract / extension
# --------------------------------------------------------------------------- #
def bvconcat(*args: BVExpr) -> BVExpr:
    """Concatenate bitvectors; the first argument becomes the most significant."""
    if not args:
        raise ValueError("concat requires at least one argument")
    flat: list[BVExpr] = []
    for a in args:
        if a.op == "concat":
            flat.extend(a.args)
        else:
            flat.append(a)
    # Merge adjacent constants.
    merged: list[BVExpr] = []
    for a in flat:
        if merged and merged[-1].is_const() and a.is_const():
            prev = merged.pop()
            merged.append(bv((prev.value << a.width) | a.value, prev.width + a.width))
        else:
            merged.append(a)
    if len(merged) == 1:
        return merged[0]
    width = sum(a.width for a in merged)
    return BVExpr("concat", width, tuple(merged))


def bvextract(hi: int, lo: int, a: BVExpr) -> BVExpr:
    """Extract bits ``hi`` down to ``lo`` (inclusive, 0-indexed from the LSB)."""
    if not (0 <= lo <= hi < a.width):
        raise ValueError(f"bad extract [{hi}:{lo}] from width {a.width}")
    width = hi - lo + 1
    if width == a.width:
        return a
    if a.is_const():
        return bv((a.value >> lo) & mask(width), width)
    if a.op == "extract":
        _inner_hi, inner_lo = a.params
        return bvextract(inner_lo + hi, inner_lo + lo, a.args[0])
    if a.op in ("and", "or", "xor", "xnor", "not"):
        # Bitwise operators commute with extraction.
        return _apply(a.op, [bvextract(hi, lo, arg) for arg in a.args])
    if a.op == "ite":
        return bvite(a.args[0], bvextract(hi, lo, a.args[1]), bvextract(hi, lo, a.args[2]))
    if lo == 0 and a.op in ("add", "sub", "mul", "neg"):
        # The low bits of modular arithmetic depend only on the low bits of
        # the operands, so a low-part extract can be pushed inside.  This is
        # the rule that collapses a zero-extended DSP datapath back down to
        # the narrow specification width.
        return _apply(a.op, [bvextract(hi, 0, arg) for arg in a.args])
    if a.op == "concat":
        # Walk the concat parts from the least-significant end.
        parts = list(a.args)
        pieces: list[BVExpr] = []
        offset = 0
        for part in reversed(parts):
            part_lo, part_hi = offset, offset + part.width - 1
            if part_hi < lo or part_lo > hi:
                offset += part.width
                continue
            take_lo = max(lo, part_lo) - part_lo
            take_hi = min(hi, part_hi) - part_lo
            pieces.append(bvextract(take_hi, take_lo, part))
            offset += part.width
        pieces.reverse()
        return bvconcat(*pieces)
    return BVExpr("extract", width, (a,), params=(hi, lo))


def zero_extend(a: BVExpr, extra_bits: int) -> BVExpr:
    """Extend ``a`` with ``extra_bits`` zero bits at the top."""
    if extra_bits < 0:
        raise ValueError("extra_bits must be non-negative")
    if extra_bits == 0:
        return a
    return bvconcat(bv(0, extra_bits), a)


def sign_extend(a: BVExpr, extra_bits: int) -> BVExpr:
    """Extend ``a`` with ``extra_bits`` copies of its sign bit at the top."""
    if extra_bits < 0:
        raise ValueError("extra_bits must be non-negative")
    if extra_bits == 0:
        return a
    sign = bvextract(a.width - 1, a.width - 1, a)
    if sign.is_const():
        fill = bv(mask(extra_bits) if sign.value else 0, extra_bits)
        return bvconcat(fill, a)
    replicated = bvconcat(*([sign] * extra_bits))
    return bvconcat(replicated, a)


# --------------------------------------------------------------------------- #
# Selection and predicates
# --------------------------------------------------------------------------- #
def bvite(cond: BVExpr, then_e: BVExpr, else_e: BVExpr) -> BVExpr:
    """Word-level if-then-else; ``cond`` must be a 1-bit expression."""
    if cond.width != 1:
        raise ValueError(f"ite condition must be 1-bit, got width {cond.width}")
    _check_same_width(then_e, else_e)
    if cond.is_const():
        return then_e if cond.value else else_e
    if then_e is else_e:
        return then_e
    return BVExpr("ite", then_e.width, (cond, then_e, else_e))


def _predicate(op: str, a: BVExpr, b: BVExpr) -> BVExpr:
    _check_same_width(a, b)
    if a.is_const() and b.is_const():
        return bv(apply_op(op, 1, [a.value, b.value], [a.width, b.width]), 1)
    if a is b:
        if op in ("eq", "ule", "uge", "sle", "sge"):
            return bv(1, 1)
        if op in ("ne", "ult", "ugt", "slt", "sgt"):
            return bv(0, 1)
    return _fold(op, 1, (a, b))


def bveq(a: BVExpr, b: BVExpr) -> BVExpr:
    return _predicate("eq", a, b)


def bvne(a: BVExpr, b: BVExpr) -> BVExpr:
    return _predicate("ne", a, b)


def bvult(a: BVExpr, b: BVExpr) -> BVExpr:
    return _predicate("ult", a, b)


def bvule(a: BVExpr, b: BVExpr) -> BVExpr:
    return _predicate("ule", a, b)


def bvugt(a: BVExpr, b: BVExpr) -> BVExpr:
    return _predicate("ugt", a, b)


def bvuge(a: BVExpr, b: BVExpr) -> BVExpr:
    return _predicate("uge", a, b)


def bvslt(a: BVExpr, b: BVExpr) -> BVExpr:
    return _predicate("slt", a, b)


def bvsle(a: BVExpr, b: BVExpr) -> BVExpr:
    return _predicate("sle", a, b)


def bvsgt(a: BVExpr, b: BVExpr) -> BVExpr:
    return _predicate("sgt", a, b)


def bvsge(a: BVExpr, b: BVExpr) -> BVExpr:
    return _predicate("sge", a, b)


def _apply(op: str, args: Sequence[BVExpr]) -> BVExpr:
    """Dispatch to the smart constructor for ``op`` (used by rewrite rules)."""
    constructors = {
        "add": bvadd,
        "sub": bvsub,
        "mul": bvmul,
        "neg": bvneg,
        "not": bvnot,
        "and": bvand,
        "or": bvor,
        "xor": bvxor,
        "xnor": bvxnor,
    }
    return constructors[op](*args)


def bvredand(a: BVExpr) -> BVExpr:
    if a.is_const():
        return bv(1 if a.value == mask(a.width) else 0, 1)
    if a.width == 1:
        return a
    return _fold("redand", 1, (a,))


def bvredor(a: BVExpr) -> BVExpr:
    if a.is_const():
        return bv(1 if a.value else 0, 1)
    if a.width == 1:
        return a
    return _fold("redor", 1, (a,))
