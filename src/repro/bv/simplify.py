"""Whole-DAG rewriting: substitution and re-simplification.

The smart constructors in :mod:`repro.bv.builder` simplify *locally* as
expressions are built.  :func:`substitute` and :func:`simplify` rebuild a
whole DAG bottom-up through those constructors, which re-runs every local
rule after leaves have been replaced — this is how a sketch with concrete
hole values collapses to its underlying datapath.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.bv import builder
from repro.bv.ast import BVExpr

__all__ = ["substitute", "simplify", "rebuild"]


def _rebuild_node(node: BVExpr, new_args: list) -> BVExpr:
    """Rebuild a single non-leaf node through the smart constructors."""
    op = node.op
    if op == "extract":
        hi, lo = node.params
        return builder.bvextract(hi, lo, new_args[0])
    if op == "concat":
        return builder.bvconcat(*new_args)
    if op == "ite":
        return builder.bvite(*new_args)
    simple = {
        "add": builder.bvadd,
        "sub": builder.bvsub,
        "mul": builder.bvmul,
        "neg": builder.bvneg,
        "not": builder.bvnot,
        "and": builder.bvand,
        "or": builder.bvor,
        "xor": builder.bvxor,
        "xnor": builder.bvxnor,
        "shl": builder.bvshl,
        "lshr": builder.bvlshr,
        "ashr": builder.bvashr,
        "eq": builder.bveq,
        "ne": builder.bvne,
        "ult": builder.bvult,
        "ule": builder.bvule,
        "ugt": builder.bvugt,
        "uge": builder.bvuge,
        "slt": builder.bvslt,
        "sle": builder.bvsle,
        "sgt": builder.bvsgt,
        "sge": builder.bvsge,
        "redand": builder.bvredand,
        "redor": builder.bvredor,
    }
    if op in simple:
        return simple[op](*new_args)
    raise ValueError(f"cannot rebuild node with operator {op!r}")


def rebuild(expr: BVExpr, leaf_map: Mapping[BVExpr, BVExpr]) -> BVExpr:
    """Rebuild ``expr`` bottom-up, replacing any node found in ``leaf_map``.

    Replacement applies to arbitrary nodes (not only variables), which the
    sketch-filling machinery uses to splice solved hole values into a sketch.
    """
    cache: Dict[BVExpr, BVExpr] = {}
    for node in expr.iter_dag():
        if node in leaf_map:
            replacement = leaf_map[node]
            if replacement.width != node.width:
                raise ValueError(
                    f"replacement width {replacement.width} != node width {node.width}"
                )
            cache[node] = replacement
        elif node.op in ("const", "var"):
            cache[node] = node
        else:
            cache[node] = _rebuild_node(node, [cache[a] for a in node.args])
    return cache[expr]


def substitute(expr: BVExpr, bindings: Mapping[str, BVExpr]) -> BVExpr:
    """Replace free variables by expressions and re-simplify the DAG."""
    leaf_map: Dict[BVExpr, BVExpr] = {}
    for node in expr.iter_dag():
        if node.op == "var" and node.name in bindings:
            leaf_map[node] = bindings[node.name]
    if not leaf_map:
        return simplify(expr)
    return rebuild(expr, leaf_map)


def simplify(expr: BVExpr) -> BVExpr:
    """Rebuild the DAG through the smart constructors (fixed-point pass)."""
    previous = None
    current = expr
    # Local rules usually converge in one pass; cap the iteration defensively.
    for _ in range(4):
        if current is previous:
            break
        previous = current
        current = rebuild(current, {})
    return current
