"""Concrete evaluation of bitvector expressions."""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping

from repro.bv.ast import BVExpr
from repro.bv.ops import apply_op

__all__ = ["evaluate", "free_vars"]


def evaluate(expr: BVExpr, env: Mapping[str, int]) -> int:
    """Evaluate ``expr`` under ``env`` (variable name -> unsigned int value).

    Raises :class:`KeyError` if a free variable has no binding.
    """
    cache: Dict[BVExpr, int] = {}
    for node in expr.iter_dag():
        if node.op == "const":
            cache[node] = node.value
        elif node.op == "var":
            value = env[node.name]
            cache[node] = value & ((1 << node.width) - 1)
        else:
            arg_values = [cache[a] for a in node.args]
            arg_widths = [a.width for a in node.args]
            cache[node] = apply_op(node.op, node.width, arg_values, arg_widths, node.params)
    return cache[expr]


def free_vars(expr: BVExpr) -> FrozenSet[str]:
    """The set of free variable names appearing in ``expr``."""
    return frozenset(node.name for node in expr.iter_dag() if node.op == "var")


def var_widths(expr: BVExpr) -> Dict[str, int]:
    """Map each free variable name to its width.

    Raises :class:`ValueError` if the same name appears with two widths.
    """
    widths: Dict[str, int] = {}
    for node in expr.iter_dag():
        if node.op == "var":
            existing = widths.get(node.name)
            if existing is not None and existing != node.width:
                raise ValueError(
                    f"variable {node.name!r} used at widths {existing} and {node.width}"
                )
            widths[node.name] = node.width
    return widths
