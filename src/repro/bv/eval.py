"""Concrete evaluation of bitvector expressions."""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping

from repro.bv.ast import BVExpr
from repro.bv.ops import apply_op

__all__ = ["evaluate", "free_vars", "var_widths"]


def evaluate(expr: BVExpr, env: Mapping[str, int]) -> int:
    """Evaluate ``expr`` under ``env`` (variable name -> unsigned int value).

    Raises :class:`KeyError` if a free variable has no binding.
    """
    cache: Dict[BVExpr, int] = {}
    for node in expr.iter_dag():
        if node.op == "const":
            cache[node] = node.value
        elif node.op == "var":
            value = env[node.name]
            cache[node] = value & ((1 << node.width) - 1)
        else:
            arg_values = [cache[a] for a in node.args]
            arg_widths = [a.width for a in node.args]
            cache[node] = apply_op(node.op, node.width, arg_values, arg_widths, node.params)
    return cache[expr]


#: Shared memo value for variable-free subtrees (never mutated: every
#: public entry point below copies before returning).
_NO_VARS: Dict[str, int] = {}


def _cached_var_widths(expr: BVExpr) -> Dict[str, int]:
    """The memoized name -> width map of ``expr``'s free variables.

    Computed bottom-up over the DAG and cached on each (interned, immutable)
    node, so re-querying a formula — or a new formula built over already
    analysed subtrees, as every CEGIS iteration's growing conjunction is —
    costs one merge of the root's children instead of a full DAG walk.

    The insertion order of the returned dict reproduces the historical
    ``iter_dag`` discovery order byte-for-byte: children merge in
    *reversed* argument order, keeping the first occurrence of each name —
    exactly the order the stack-based post-order traversal first visits
    variables.  That order is load-bearing: the random-probing layers draw
    one value per variable in this order from seeded RNG streams, so
    changing it would silently shift every probe trajectory.
    """
    cached = expr._vars
    if cached is not None:
        return cached
    stack = [expr]
    while stack:
        node = stack[-1]
        if node._vars is not None:
            stack.pop()
            continue
        pending = [child for child in node.args if child._vars is None]
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        if node.op == "var":
            node._vars = {node.name: node.width}
        elif not node.args:
            node._vars = _NO_VARS
        elif len(node.args) == 1:
            node._vars = node.args[0]._vars
        else:
            merged: Dict[str, int] = dict(node.args[-1]._vars)
            for child in node.args[-2::-1]:
                for name, width in child._vars.items():
                    existing = merged.get(name)
                    if existing is None:
                        merged[name] = width
                    elif existing != width:
                        raise ValueError(
                            f"variable {name!r} used at widths {existing} and {width}"
                        )
            node._vars = merged
    return expr._vars


def free_vars(expr: BVExpr) -> FrozenSet[str]:
    """The set of free variable names appearing in ``expr``."""
    return frozenset(_cached_var_widths(expr))


def var_widths(expr: BVExpr) -> Dict[str, int]:
    """Map each free variable name to its width.

    Raises :class:`ValueError` if the same name appears with two widths.
    The result is a fresh dict (safe to mutate); the underlying map is
    memoized per node — see :func:`_cached_var_widths`.
    """
    return dict(_cached_var_widths(expr))
