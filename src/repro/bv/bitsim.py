"""Bit-parallel (packed) simulation of bitvector expression DAGs.

The layered solve strategy spends its random-probe budget evaluating one
concrete assignment at a time.  This module evaluates K assignments
*simultaneously* — the classic bit-parallel random-simulation technique
from SAT-sweeping equivalence checkers: each W-bit variable is transposed
into W machine words where bit ``i`` of word ``b`` holds assignment ``i``'s
value of bit ``b``, and every DAG node then costs a handful of Python
bigint operations *total* instead of one ``apply_op`` call per assignment.

Kernels are word-parallel throughout:

* bitwise ops and mux are one bigint op per result bit;
* add/sub/neg ripple a packed carry word, compares ripple a borrow word;
* variable shifts run a packed barrel shifter (mux per shift-amount bit);
* mul is a packed shift-add at narrow widths and falls back to a per-lane
  native multiply (block-transpose out, multiply, transpose back) at
  :data:`MUL_LANEWISE_MIN_WIDTH` and above — the measured crossover where
  the shift-add's quadratic ripple work stops paying for itself (see
  ``benchmarks/bench_bitparallel_probe.py``).

Packing itself is a 64x64 bit-matrix block transpose on one big integer
(:func:`_transpose64`), not a per-bit scatter, so transposition costs a
few dozen bigint operations per variable per batch.

Semantics match :mod:`repro.bv.ops` lane-for-lane (the packed-vs-scalar
differential fuzz in ``tests/test_fuzz_differential.py`` holds it to
that), and :data:`PROBE_LANES` is the chunk size the probing consumers
batch at — 64 lanes so a hit is found (and deadlines are honoured) without
evaluating the whole probe budget.

Determinism contract: lanes are numbered by *batch position*, callers scan
hits in lane order (:func:`first_sat_lane` returns the lowest set lane),
and the probing consumers draw batches from the same seeded RNG streams as
the historical scalar loops — so the first satisfying lane is exactly the
first satisfying scalar probe, and packed probing is behavior-identical
across all four ``incremental`` × ``incremental_verify`` modes.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.bv.ast import BVExpr
from repro.bv.eval import var_widths

__all__ = [
    "PROBE_LANES",
    "PackedEvaluator",
    "pack_assignments",
    "unpack_lane",
    "first_sat_lane",
]

#: Lanes per probe batch: one machine word of assignments.  Consumers may
#: pass any lane count (Python ints are arbitrary precision) but chunking
#: at 64 keeps early-exit latency and deadline granularity at one word.
PROBE_LANES = 64

Words = List[int]

_WORD_MASK = (1 << 64) - 1


def _transpose_steps():
    """Delta/mask pairs for the in-place 64x64 bit-matrix transpose.

    The matrix lives row-major in one 4096-bit integer (bit ``r*64 + c`` is
    row ``r``, column ``c``).  Each step XOR-swaps the upper-right and
    lower-left ``j x j`` sub-blocks of every ``2j x 2j`` block — the
    Hacker's Delight divide-and-conquer transpose, with the bit pair
    ``(r, c) <-> (r+j, c-j)`` sitting ``j*63`` positions apart.
    """
    steps = []
    for j in (32, 16, 8, 4, 2, 1):
        col_word = 0
        for k in range(64 // (2 * j)):
            col_word |= ((1 << j) - 1) << (j + 2 * j * k)
        mask = 0
        for r in range(64):
            if r % (2 * j) < j:
                mask |= col_word << (r * 64)
        steps.append((j * 63, mask))
    return tuple(steps)


_TRANSPOSE_STEPS = _transpose_steps()


def _transpose64(x: int) -> int:
    """Transpose a 64x64 bit matrix held row-major in one integer."""
    for delta, mask in _TRANSPOSE_STEPS:
        t = ((x >> delta) ^ x) & mask
        x ^= t ^ (t << delta)
    return x


def _pack_values(values: Sequence[int], width: int) -> Words:
    """Bit-slice lane values (already width-masked) into packed words.

    Lanes and bit positions are both processed in 64-wide blocks: each
    block is laid out row-major (row = lane, column = value bit) in one
    big integer, transposed with :func:`_transpose64`, and its rows read
    back out as the result words — a handful of bigint operations instead
    of one Python-level bit scatter per set bit.
    """
    words = [0] * width
    for lane_base in range(0, len(values), 64):
        block = values[lane_base:lane_base + 64]
        for chunk in range(0, width, 64):
            rows = b"".join(((v >> chunk) & _WORD_MASK).to_bytes(8, "little")
                            for v in block)
            x = _transpose64(int.from_bytes(rows.ljust(512, b"\x00"), "little"))
            data = x.to_bytes(512, "little")
            for bit in range(min(64, width - chunk)):
                word = int.from_bytes(data[8 * bit:8 * bit + 8], "little")
                if word:
                    words[chunk + bit] |= word << lane_base
    return words


def _unpack_values(words: Sequence[int], lanes: int) -> List[int]:
    """The inverse of :func:`_pack_values`: per-lane values from words."""
    values = [0] * lanes
    for lane_base in range(0, lanes, 64):
        block_lanes = min(64, lanes - lane_base)
        for chunk in range(0, len(words), 64):
            rows = b"".join(((w >> lane_base) & _WORD_MASK).to_bytes(8, "little")
                            for w in words[chunk:chunk + 64])
            x = _transpose64(int.from_bytes(rows.ljust(512, b"\x00"), "little"))
            data = x.to_bytes(512, "little")
            for lane in range(block_lanes):
                value = int.from_bytes(data[8 * lane:8 * lane + 8], "little")
                if value:
                    values[lane_base + lane] |= value << chunk
    return values


def pack_assignments(assignments: Sequence[Mapping[str, int]],
                     widths: Mapping[str, int]) -> Dict[str, Words]:
    """Transpose assignments into per-variable bit-sliced lane words.

    ``result[name][b]`` has bit ``i`` set iff bit ``b`` of ``name`` is set
    in ``assignments[i]``.  Values are masked to their width, matching the
    scalar evaluator's treatment of oversized bindings.
    """
    packed: Dict[str, Words] = {}
    for name, width in widths.items():
        mask = (1 << width) - 1
        packed[name] = _pack_values(
            [assignment[name] & mask for assignment in assignments], width)
    return packed


def unpack_lane(words: Sequence[int], lane: int) -> int:
    """Read one lane's value back out of a packed word list."""
    value = 0
    for bit, word in enumerate(words):
        if (word >> lane) & 1:
            value |= 1 << bit
    return value


def first_sat_lane(word: int) -> int:
    """The lowest set lane of a 1-bit result word (-1 if none).

    Lanes are batch positions, so this is the packed equivalent of the
    scalar probe loop's "first satisfying assignment wins".
    """
    if not word:
        return -1
    return (word & -word).bit_length() - 1


# --------------------------------------------------------------------------- #
# Word-parallel kernels
# --------------------------------------------------------------------------- #
def _ripple_add(a: Words, b: Words, carry: int = 0) -> Words:
    """Packed ``a + b (+ carry)`` truncated to ``len(a)`` bits per lane."""
    out: Words = []
    for ab, bb in zip(a, b):
        axb = ab ^ bb
        out.append(axb ^ carry)
        carry = (ab & bb) | (carry & axb)
    return out


def _less_unsigned(a: Words, b: Words, m: int) -> int:
    """Packed unsigned ``a < b`` via the subtract-borrow chain (1-bit word)."""
    less = 0
    for ab, bb in zip(a, b):
        eq = (ab ^ bb) ^ m
        less = ((ab ^ m) & bb) | (eq & less)
    return less


def _less_signed(a: Words, b: Words, m: int) -> int:
    sign_a, sign_b = a[-1], b[-1]
    diff_sign = sign_a & (sign_b ^ m)
    same_sign = (sign_a ^ sign_b) ^ m
    return diff_sign | (same_sign & _less_unsigned(a, b, m))


#: Measured crossover for multiply (see ``lakeroad bench`` / the profiling
#: notes in ``benchmarks/bench_bitparallel_probe.py``): the packed
#: shift-add is O(width**2) word operations per node while the lane-wise
#: fallback is O(width) transpose work plus one native multiply per lane.
#: Shift-add wins while its quadratic term is small — measured at 2.8x
#: faster at width 8 and 1.5x at 16, with lane-wise 1.5x ahead by 24.
MUL_LANEWISE_MIN_WIDTH = 20


def _mul2(a: Words, b: Words, m: int) -> Words:
    """Packed shift-add multiply, truncated to ``len(a)`` bits per lane."""
    width = len(a)
    acc = [0] * width
    for shift, gate in enumerate(b[:width]):
        if not gate:
            continue
        partial = [0] * shift + [word & gate for word in a[:width - shift]]
        acc = _ripple_add(acc, partial)
    return acc


def _mul_lanewise(a: Words, b: Words, m: int) -> Words:
    """Per-lane multiply: transpose out, multiply natively, transpose back.

    Profitable for wide operands, where the shift-add kernel's quadratic
    ripple work dwarfs two fast block transposes and K native multiplies.
    """
    lanes = m.bit_length()
    width = len(a)
    mask = (1 << width) - 1
    return _pack_values([(x * y) & mask
                         for x, y in zip(_unpack_values(a, lanes),
                                         _unpack_values(b, lanes))], width)


def _mul(a: Words, b: Words, m: int) -> Words:
    if len(a) >= MUL_LANEWISE_MIN_WIDTH:
        return _mul_lanewise(a, b, m)
    return _mul2(a, b, m)


def _barrel(a: Words, sh: Words, direction: str, fill_from_sign: bool,
            m: int) -> Words:
    """Packed barrel shifter — per-lane variable shift amounts.

    Mirrors the bit-blaster's ``_barrel``: stage ``s`` conditionally
    shifts by ``2**s`` under the packed select word ``sh[s]``, the fill
    bit is the *original* sign for ``ashr`` and zero otherwise, and any
    cumulative shift at or beyond the width saturates to the fill — the
    exact :mod:`repro.bv.ops` semantics of out-of-range shifts.
    """
    width = len(a)
    fill = a[-1] if fill_from_sign else 0
    current = list(a)
    for stage, sel in enumerate(sh):
        shift_by = 1 << stage
        if shift_by >= width:
            shifted = [fill] * width
        elif direction == "left":
            shifted = [0] * shift_by + current[:width - shift_by]
        else:
            shifted = current[shift_by:] + [fill] * shift_by
        if not sel:
            continue
        if sel == m:
            current = shifted
        else:
            keep = sel ^ m
            current = [(s & sel) | (c & keep)
                       for s, c in zip(shifted, current)]
    return current


def _fold_bitwise(args: List[Words], combine) -> Words:
    out = list(args[0])
    for arg in args[1:]:
        out = [combine(x, y) for x, y in zip(out, arg)]
    return out


def _eval_packed(op: str, width: int, args: List[Words],
                 arg_widths: Sequence[int], params: Sequence[int],
                 m: int) -> Words:
    """Apply one operator to packed argument words (lane-parallel)."""
    if op == "and":
        return _fold_bitwise(args, lambda x, y: x & y)
    if op == "or":
        return _fold_bitwise(args, lambda x, y: x | y)
    if op == "xor":
        return _fold_bitwise(args, lambda x, y: x ^ y)
    if op == "xnor":
        return [(x ^ y) ^ m for x, y in zip(args[0], args[1])]
    if op == "not":
        return [word ^ m for word in args[0]]
    if op == "add":
        out = args[0]
        for arg in args[1:]:
            out = _ripple_add(out, arg)
        return out
    if op == "sub":
        return _ripple_add(args[0], [word ^ m for word in args[1]], carry=m)
    if op == "neg":
        return _ripple_add([word ^ m for word in args[0]], [0] * width, carry=m)
    if op == "mul":
        out = args[0]
        for arg in args[1:]:
            out = _mul(out, arg, m)
        return out
    if op == "ite":
        cond = args[0][0]
        keep = cond ^ m
        return [(t & cond) | (f & keep) for t, f in zip(args[1], args[2])]
    if op == "eq":
        diff = 0
        for x, y in zip(args[0], args[1]):
            diff |= x ^ y
        return [diff ^ m]
    if op == "ne":
        diff = 0
        for x, y in zip(args[0], args[1]):
            diff |= x ^ y
        return [diff]
    if op == "ult":
        return [_less_unsigned(args[0], args[1], m)]
    if op == "ule":
        return [_less_unsigned(args[1], args[0], m) ^ m]
    if op == "ugt":
        return [_less_unsigned(args[1], args[0], m)]
    if op == "uge":
        return [_less_unsigned(args[0], args[1], m) ^ m]
    if op == "slt":
        return [_less_signed(args[0], args[1], m)]
    if op == "sle":
        return [_less_signed(args[1], args[0], m) ^ m]
    if op == "sgt":
        return [_less_signed(args[1], args[0], m)]
    if op == "sge":
        return [_less_signed(args[0], args[1], m) ^ m]
    if op == "redand":
        word = m
        for bit in args[0]:
            word &= bit
        return [word]
    if op == "redor":
        word = 0
        for bit in args[0]:
            word |= bit
        return [word]
    if op == "shl":
        return _barrel(args[0], args[1], "left", False, m)
    if op == "lshr":
        return _barrel(args[0], args[1], "right", False, m)
    if op == "ashr":
        return _barrel(args[0], args[1], "right", True, m)
    if op == "concat":
        # args are most-significant first; packed words are LSB-first.
        out: Words = []
        for arg in reversed(args):
            out.extend(arg)
        return out
    if op == "extract":
        hi, lo = params
        return args[0][lo:hi + 1]
    raise ValueError(f"unknown bitvector operator: {op!r}")


class PackedEvaluator:
    """Evaluate one BVExpr DAG over many assignments simultaneously.

    Construction compiles the DAG into a flat instruction list (one slot
    per distinct node, children resolved to slot indices); each
    :meth:`evaluate` call then runs the straight-line program over packed
    lane words, so per-node Python overhead is paid once per *batch*
    instead of once per assignment.
    """

    def __init__(self, expr: BVExpr) -> None:
        self.expr = expr
        #: name -> width of the formula's free variables, in the same
        #: (memoized, discovery-order) iteration order the probing
        #: consumers draw assignments in.
        self.widths = var_widths(expr)
        slots: Dict[BVExpr, int] = {}
        instructions = []
        for node in expr.iter_dag():
            arg_slots = tuple(slots[arg] for arg in node.args)
            arg_widths = tuple(arg.width for arg in node.args)
            slots[node] = len(instructions)
            instructions.append((node.op, node.width, arg_slots, arg_widths,
                                 node.params, node.value, node.name))
        self._instructions = instructions

    # ------------------------------------------------------------------ #
    def evaluate(self, packed_env: Mapping[str, Words], lanes: int) -> Words:
        """Evaluate over a pre-packed environment; returns the root's words.

        ``packed_env`` maps each free variable to its ``width`` lane words
        (see :func:`pack_assignments`); ``lanes`` is the batch size K.
        """
        m = (1 << lanes) - 1
        values: List[Words] = []
        for op, width, arg_slots, arg_widths, params, value, name in \
                self._instructions:
            if op == "const":
                values.append([m if (value >> bit) & 1 else 0
                               for bit in range(width)])
            elif op == "var":
                values.append(packed_env[name])
            else:
                args = [values[slot] for slot in arg_slots]
                values.append(_eval_packed(op, width, args, arg_widths,
                                           params, m))
        return values[-1]

    def evaluate_batch(self, assignments: Sequence[Mapping[str, int]]) -> Words:
        """Pack a batch of scalar assignments and evaluate them all."""
        packed = pack_assignments(assignments, self.widths)
        return self.evaluate(packed, len(assignments))

    def sat_lanes(self, assignments: Sequence[Mapping[str, int]]) -> int:
        """The satisfied-lane word of a 1-bit formula over a batch.

        Bit ``i`` of the result is set iff ``assignments[i]`` satisfies
        the formula; scan with :func:`first_sat_lane` for the
        deterministic in-order winner.
        """
        if self.expr.width != 1:
            raise ValueError("sat_lanes needs a 1-bit (constraint) formula")
        return self.evaluate_batch(assignments)[0]
