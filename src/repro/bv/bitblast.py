"""Bit-blasting: word-level bitvector expressions down to an AIG.

Each :class:`~repro.bv.ast.BVExpr` node maps to a vector of AIG literals
(least-significant bit first).  The construction is deterministic, so two
occurrences of the same word-level structure produce the same AIG nodes and
merge under structural hashing.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bv.aig import AIG, FALSE_LIT, TRUE_LIT
from repro.bv.ast import BVExpr
from repro.bv.cnf import IncrementalCnf

__all__ = ["BitBlaster", "IncrementalContext", "bitblast"]

Bits = List[int]


class BitBlaster:
    """Translate bitvector expression DAGs into a shared AIG."""

    def __init__(self, aig: AIG | None = None) -> None:
        self.aig = aig if aig is not None else AIG()
        self._cache: Dict[BVExpr, Bits] = {}

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def blast(self, expr: BVExpr) -> Bits:
        """Return the literal vector (LSB first) for ``expr``."""
        for node in expr.iter_dag():
            if node not in self._cache:
                self._cache[node] = self._blast_node(node)
        return self._cache[expr]

    def input_bit_name(self, var_name: str, bit: int) -> str:
        return f"{var_name}[{bit}]"

    # ------------------------------------------------------------------ #
    # Per-node translation
    # ------------------------------------------------------------------ #
    def _blast_node(self, node: BVExpr) -> Bits:
        op = node.op
        if op == "const":
            return [TRUE_LIT if (node.value >> i) & 1 else FALSE_LIT for i in range(node.width)]
        if op == "var":
            return [self.aig.add_input(self.input_bit_name(node.name, i))
                    for i in range(node.width)]
        args = [self._cache[a] for a in node.args]
        widths = [a.width for a in node.args]
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            raise ValueError(f"bit-blasting not implemented for operator {op!r}")
        return handler(node, args, widths)

    # -- bitwise ---------------------------------------------------------- #
    def _op_not(self, node, args, widths) -> Bits:
        return [self.aig.negate(b) for b in args[0]]

    def _map2(self, gate, vectors: List[Bits]) -> Bits:
        result = vectors[0]
        for vec in vectors[1:]:
            result = [gate(a, b) for a, b in zip(result, vec)]
        return result

    def _op_and(self, node, args, widths) -> Bits:
        return self._map2(self.aig.and_gate, args)

    def _op_or(self, node, args, widths) -> Bits:
        return self._map2(self.aig.or_gate, args)

    def _op_xor(self, node, args, widths) -> Bits:
        return self._map2(self.aig.xor_gate, args)

    def _op_xnor(self, node, args, widths) -> Bits:
        return self._map2(self.aig.xnor_gate, args)

    # -- arithmetic -------------------------------------------------------- #
    def _ripple_add(self, a: Bits, b: Bits, carry_in: int) -> Bits:
        result: Bits = []
        carry = carry_in
        for abit, bbit in zip(a, b):
            s = self.aig.xor_gate(self.aig.xor_gate(abit, bbit), carry)
            carry = self.aig.or_gate(
                self.aig.and_gate(abit, bbit),
                self.aig.and_gate(carry, self.aig.xor_gate(abit, bbit)),
            )
            result.append(s)
        return result

    def _op_add(self, node, args, widths) -> Bits:
        result = args[0]
        for vec in args[1:]:
            result = self._ripple_add(result, vec, FALSE_LIT)
        return result

    def _op_sub(self, node, args, widths) -> Bits:
        a, b = args
        not_b = [self.aig.negate(x) for x in b]
        return self._ripple_add(a, not_b, TRUE_LIT)

    def _op_neg(self, node, args, widths) -> Bits:
        zero = [FALSE_LIT] * node.width
        not_a = [self.aig.negate(x) for x in args[0]]
        return self._ripple_add(zero, not_a, TRUE_LIT)

    def _mul2(self, a: Bits, b: Bits, width: int) -> Bits:
        """Shift-and-add multiplier truncated to ``width`` bits."""
        accumulator = [FALSE_LIT] * width
        for shift, bbit in enumerate(b):
            if shift >= width or bbit == FALSE_LIT:
                continue
            partial = [FALSE_LIT] * shift + [self.aig.and_gate(abit, bbit)
                                             for abit in a[: width - shift]]
            accumulator = self._ripple_add(accumulator, partial, FALSE_LIT)
        return accumulator

    def _op_mul(self, node, args, widths) -> Bits:
        result = args[0]
        for vec in args[1:]:
            result = self._mul2(result, vec, node.width)
        return result

    # -- shifts ------------------------------------------------------------ #
    def _shift_const(self, a: Bits, amount: int, direction: str, fill: int) -> Bits:
        width = len(a)
        if amount >= width:
            return [fill] * width
        if direction == "left":
            return [FALSE_LIT] * amount + a[: width - amount]
        return a[amount:] + [fill] * amount

    def _barrel(self, node, a: Bits, sh: Bits, direction: str, fill_from_sign: bool) -> Bits:
        width = len(a)
        fill = a[-1] if fill_from_sign else FALSE_LIT
        current = a
        for stage, sel in enumerate(sh):
            shift_by = 1 << stage
            if shift_by >= width:
                shifted = [fill] * width
            else:
                shifted = self._shift_const(current, shift_by, direction, fill)
            current = [self.aig.mux(sel, s, c) for s, c in zip(shifted, current)]
        return current

    def _op_shl(self, node, args, widths) -> Bits:
        a, sh = args
        sh_expr = node.args[1]
        if sh_expr.is_const():
            return self._shift_const(a, sh_expr.value, "left", FALSE_LIT)
        return self._barrel(node, a, sh, "left", False)

    def _op_lshr(self, node, args, widths) -> Bits:
        a, sh = args
        sh_expr = node.args[1]
        if sh_expr.is_const():
            return self._shift_const(a, sh_expr.value, "right", FALSE_LIT)
        return self._barrel(node, a, sh, "right", False)

    def _op_ashr(self, node, args, widths) -> Bits:
        a, sh = args
        sh_expr = node.args[1]
        if sh_expr.is_const():
            return self._shift_const(a, sh_expr.value, "right", a[-1])
        return self._barrel(node, a, sh, "right", True)

    # -- structure ---------------------------------------------------------- #
    def _op_concat(self, node, args, widths) -> Bits:
        # Arguments are most-significant first; bit vectors are LSB first.
        result: Bits = []
        for vec in reversed(args):
            result.extend(vec)
        return result

    def _op_extract(self, node, args, widths) -> Bits:
        hi, lo = node.params
        return args[0][lo : hi + 1]

    def _op_ite(self, node, args, widths) -> Bits:
        cond, then_bits, else_bits = args
        sel = cond[0]
        return [self.aig.mux(sel, t, e) for t, e in zip(then_bits, else_bits)]

    # -- predicates ---------------------------------------------------------- #
    def _equal(self, a: Bits, b: Bits) -> int:
        return self.aig.and_many([self.aig.xnor_gate(x, y) for x, y in zip(a, b)])

    def _op_eq(self, node, args, widths) -> Bits:
        return [self._equal(args[0], args[1])]

    def _op_ne(self, node, args, widths) -> Bits:
        return [self.aig.negate(self._equal(args[0], args[1]))]

    def _unsigned_less(self, a: Bits, b: Bits) -> int:
        """a < b, unsigned, via the borrow bit of a - b."""
        less = FALSE_LIT
        for abit, bbit in zip(a, b):
            eq = self.aig.xnor_gate(abit, bbit)
            less = self.aig.or_gate(
                self.aig.and_gate(self.aig.negate(abit), bbit),
                self.aig.and_gate(eq, less),
            )
        return less

    def _signed_less(self, a: Bits, b: Bits) -> int:
        sign_a, sign_b = a[-1], b[-1]
        diff_sign = self.aig.and_gate(sign_a, self.aig.negate(sign_b))
        same_sign = self.aig.xnor_gate(sign_a, sign_b)
        return self.aig.or_gate(diff_sign,
                                self.aig.and_gate(same_sign, self._unsigned_less(a, b)))

    def _op_ult(self, node, args, widths) -> Bits:
        return [self._unsigned_less(args[0], args[1])]

    def _op_ule(self, node, args, widths) -> Bits:
        return [self.aig.negate(self._unsigned_less(args[1], args[0]))]

    def _op_ugt(self, node, args, widths) -> Bits:
        return [self._unsigned_less(args[1], args[0])]

    def _op_uge(self, node, args, widths) -> Bits:
        return [self.aig.negate(self._unsigned_less(args[0], args[1]))]

    def _op_slt(self, node, args, widths) -> Bits:
        return [self._signed_less(args[0], args[1])]

    def _op_sle(self, node, args, widths) -> Bits:
        return [self.aig.negate(self._signed_less(args[1], args[0]))]

    def _op_sgt(self, node, args, widths) -> Bits:
        return [self._signed_less(args[1], args[0])]

    def _op_sge(self, node, args, widths) -> Bits:
        return [self.aig.negate(self._signed_less(args[0], args[1]))]

    def _op_redand(self, node, args, widths) -> Bits:
        return [self.aig.and_many(args[0])]

    def _op_redor(self, node, args, widths) -> Bits:
        return [self.aig.or_many(args[0])]


class IncrementalContext:
    """One persistent AIG + CNF namespace shared across solver queries.

    The context owns a single :class:`AIG`, the :class:`BitBlaster` whose
    node cache fills it, and an :class:`~repro.bv.cnf.IncrementalCnf`
    mirroring it.  Because the blaster's cache and the AIG's structural
    hashing are deterministic, a word-level variable bit-blasts to the same
    AIG input — and therefore the same CNF literal — no matter how many
    expressions have been asserted in between.  CEGIS leans on exactly
    that: hole variables keep *stable literals* across iterations, and each
    new counterexample only appends the clauses of its own obligations.
    """

    def __init__(self) -> None:
        self.aig = AIG()
        self.blaster = BitBlaster(self.aig)
        self.encoder = IncrementalCnf(self.aig)

    @property
    def cnf(self):
        """The shared CNF (grows monotonically; never rebuilt)."""
        return self.encoder.cnf

    def blast(self, expr: BVExpr) -> Bits:
        """Blast an expression into the shared namespace (no clauses yet)."""
        return self.blaster.blast(expr)

    def assert_true(self, expr: BVExpr) -> None:
        """Permanently constrain a 1-bit expression to hold."""
        if expr.width != 1:
            raise ValueError("only 1-bit expressions can be asserted")
        self.encoder.assert_lit(self.blaster.blast(expr)[0])

    def gate(self, expr: BVExpr) -> int:
        """Blast and clause-encode a 1-bit expression *without* asserting it.

        Returns the signed DIMACS literal for the expression's output, to
        be activated per query as a solver assumption.  The incremental
        verifier uses this to keep every obligation's miter in one CNF and
        gate the one under test on with an assumption instead of a unit
        clause (which would poison every later query).
        """
        if expr.width != 1:
            raise ValueError("only 1-bit expressions can be gated")
        return self.encoder.gate_literal(self.blaster.blast(expr)[0])

    def input_vars(self) -> Dict[str, int]:
        """Stable map from input bit names to CNF variable numbers."""
        return self.encoder.input_vars()


def bitblast(expr: BVExpr, aig: AIG | None = None) -> tuple[AIG, Bits]:
    """Convenience wrapper: blast a single expression into a fresh AIG."""
    blaster = BitBlaster(aig)
    bits = blaster.blast(expr)
    return blaster.aig, bits
