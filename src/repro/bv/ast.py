"""Immutable, hash-consed bitvector expression nodes.

Every expression is an instance of :class:`BVExpr`, identified by its
operator name, width, and children (plus a constant value or variable name
for leaves).  Nodes are interned: building the same expression twice returns
the *same* object, so structural equality is pointer equality and large
shared DAGs stay shared.  This mirrors the term representation used by
word-level SMT solvers and is what makes the later structural-hashing
equivalence check cheap.
"""

from __future__ import annotations

from hashlib import blake2b
from typing import Iterable, Optional, Tuple

__all__ = ["BVExpr", "Sort", "OPERATOR_ARITY", "COMMUTATIVE_OPS"]


_STRING_HASHES: dict = {}


def _string_hash(text: str) -> int:
    """A process-independent stand-in for ``hash(str)``.

    ``hash()`` on strings is randomized per interpreter (PYTHONHASHSEED);
    int and tuple hashing are not.  Node hashes must not inherit that
    randomness: the canonical argument order of commutative operators sorts
    by node hash, so a seed-dependent hash silently reorders operands
    between processes — which changes the "canonical" program fingerprint
    and defeats the persistent synthesis cache.  Node construction is the
    hottest path in bit-blasting, so the digest is memoized per distinct
    string (operator names and variable names repeat endlessly) rather
    than recomputed per node.

    The personalization tag fixes *which* canonical operand order the whole
    system uses.  CEGIS runtimes are very sensitive to that order (the
    flagship add_mul_and query ranges from ~18 s to ~220 s across orders,
    and the pre-fix seed-randomized order ranged 32-61 s across hash
    seeds); this tag was chosen empirically as a fast draw.  Bump it only
    with benchmark numbers in hand — and note it changes fingerprints, so
    it effectively invalidates persistent caches.
    """
    cached = _STRING_HASHES.get(text)
    if cached is None:
        cached = int.from_bytes(
            blake2b(text.encode(), digest_size=8, person=b"lakeroad-2").digest(),
            "big", signed=True)
        _STRING_HASHES[text] = cached
    return cached


class Sort:
    """The sort (type) of a bitvector expression: just a width in bits."""

    __slots__ = ("width",)

    def __init__(self, width: int) -> None:
        if width <= 0:
            raise ValueError(f"bitvector width must be positive, got {width}")
        self.width = width

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Sort) and other.width == self.width

    def __hash__(self) -> int:
        return hash(("Sort", self.width))

    def __repr__(self) -> str:
        return f"(_ BitVec {self.width})"


#: Operator name -> expected number of children (None means variadic >= 1).
OPERATOR_ARITY = {
    "const": 0,
    "var": 0,
    "not": 1,
    "neg": 1,
    "redand": 1,
    "redor": 1,
    "add": None,
    "sub": 2,
    "mul": None,
    "and": None,
    "or": None,
    "xor": None,
    "xnor": 2,
    "shl": 2,
    "lshr": 2,
    "ashr": 2,
    "concat": None,
    "extract": 1,
    "ite": 3,
    "eq": 2,
    "ne": 2,
    "ult": 2,
    "ule": 2,
    "ugt": 2,
    "uge": 2,
    "slt": 2,
    "sle": 2,
    "sgt": 2,
    "sge": 2,
}

#: Operators whose argument order does not matter (used for normalisation).
COMMUTATIVE_OPS = frozenset({"add", "mul", "and", "or", "xor", "xnor", "eq", "ne"})


class BVExpr:
    """A node in the bitvector expression DAG.

    Attributes:
        op: operator name (see :data:`OPERATOR_ARITY`).
        width: result width in bits.
        args: child expressions.
        value: integer value (for ``const`` nodes only).
        name: variable name (for ``var`` nodes only).
        params: extra integer parameters (``extract`` stores ``(hi, lo)``).
    """

    __slots__ = ("op", "width", "args", "value", "name", "params", "_hash",
                 "_vars")

    _intern: dict = {}

    def __new__(
        cls,
        op: str,
        width: int,
        args: Tuple["BVExpr", ...] = (),
        value: Optional[int] = None,
        name: Optional[str] = None,
        params: Tuple[int, ...] = (),
    ) -> "BVExpr":
        if width <= 0:
            raise ValueError(f"bitvector width must be positive, got {width}")
        key = (op, width, args, value, name, params)
        cached = cls._intern.get(key)
        if cached is not None:
            return cached
        node = object.__new__(cls)
        node.op = op
        node.width = width
        node.args = args
        node.value = value
        node.name = name
        node.params = params
        # Tuple/int hashing is deterministic; only strings — and None,
        # whose hash is id-derived on some interpreters — need the
        # process-independent treatment (see _string_hash).  Child hashes
        # enter through args (BVExpr.__hash__ returns _hash), so stability
        # is inductive over the DAG.
        node._hash = hash((_string_hash(op), width, args,
                           -1 if value is None else value,
                           _string_hash(name) if name is not None else 0,
                           params))
        # Lazily-computed free-variable width map (see repro.bv.eval).
        # Interning makes nodes immutable and shared, so the map is a
        # per-node fact that can be cached once and reused by every DAG
        # containing the node.
        node._vars = None
        cls._intern[key] = node
        return node

    # Interned nodes: identity is structural identity.
    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        return self is other

    # ------------------------------------------------------------------ #
    # Convenience predicates
    # ------------------------------------------------------------------ #
    @property
    def sort(self) -> Sort:
        return Sort(self.width)

    def is_const(self) -> bool:
        return self.op == "const"

    def is_var(self) -> bool:
        return self.op == "var"

    def is_true(self) -> bool:
        return self.op == "const" and self.width == 1 and self.value == 1

    def is_false(self) -> bool:
        return self.op == "const" and self.width == 1 and self.value == 0

    def is_zero(self) -> bool:
        return self.op == "const" and self.value == 0

    def is_ones(self) -> bool:
        return self.op == "const" and self.value == (1 << self.width) - 1

    # ------------------------------------------------------------------ #
    # Traversal helpers
    # ------------------------------------------------------------------ #
    def children(self) -> Tuple["BVExpr", ...]:
        return self.args

    def iter_dag(self) -> Iterable["BVExpr"]:
        """Yield every node in the DAG rooted here exactly once (post-order)."""
        seen = set()
        stack = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if node in seen:
                continue
            if expanded:
                seen.add(node)
                yield node
            else:
                stack.append((node, True))
                for child in node.args:
                    if child not in seen:
                        stack.append((child, False))

    def size(self) -> int:
        """Number of distinct nodes in the DAG rooted at this expression."""
        return sum(1 for _ in self.iter_dag())

    # ------------------------------------------------------------------ #
    # Printing
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:
        return self.to_sexpr(max_depth=6)

    def to_sexpr(self, max_depth: int = 1_000_000) -> str:
        """Render as an SMT-LIB-flavoured s-expression (for debugging)."""
        if self.op == "const":
            return f"#b{self.value:0{self.width}b}" if self.width <= 8 else f"(_ bv{self.value} {self.width})"
        if self.op == "var":
            return f"{self.name}:{self.width}"
        if max_depth <= 0:
            return "..."
        inner = " ".join(a.to_sexpr(max_depth - 1) for a in self.args)
        if self.op == "extract":
            hi, lo = self.params
            return f"((_ extract {hi} {lo}) {inner})"
        return f"({self.op} {inner})"


def reset_intern_table() -> None:
    """Clear the global intern table (used by tests to bound memory)."""
    BVExpr._intern.clear()
