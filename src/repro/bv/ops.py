"""Concrete semantics of every bitvector operator.

Each helper operates on plain Python integers interpreted as unsigned
bitvectors of a given width, and returns a masked unsigned result.  These
are the single source of truth for operator meaning: the expression
evaluator, the ``ℒlr`` interpreter, the HDL simulator and the bit-blaster
are all tested against (or built from) these functions.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

__all__ = [
    "mask",
    "truncate",
    "to_signed",
    "from_signed",
    "apply_op",
    "OP_IMPLS",
]


def mask(width: int) -> int:
    """All-ones bitmask of ``width`` bits."""
    return (1 << width) - 1


def truncate(value: int, width: int) -> int:
    """Interpret ``value`` as an unsigned ``width``-bit quantity."""
    return value & mask(width)


def to_signed(value: int, width: int) -> int:
    """Reinterpret an unsigned ``width``-bit value as two's complement."""
    value = truncate(value, width)
    if value >= 1 << (width - 1):
        return value - (1 << width)
    return value


def from_signed(value: int, width: int) -> int:
    """Encode a (possibly negative) integer as an unsigned ``width``-bit value."""
    return value & mask(width)


def _bool(value: bool) -> int:
    return 1 if value else 0


def _add(width: int, args: Sequence[int]) -> int:
    return truncate(sum(args), width)


def _sub(width: int, args: Sequence[int]) -> int:
    a, b = args
    return truncate(a - b, width)


def _mul(width: int, args: Sequence[int]) -> int:
    result = 1
    for a in args:
        result *= a
    return truncate(result, width)


def _and(width: int, args: Sequence[int]) -> int:
    result = mask(width)
    for a in args:
        result &= a
    return result


def _or(width: int, args: Sequence[int]) -> int:
    result = 0
    for a in args:
        result |= a
    return truncate(result, width)


def _xor(width: int, args: Sequence[int]) -> int:
    result = 0
    for a in args:
        result ^= a
    return truncate(result, width)


def _xnor(width: int, args: Sequence[int]) -> int:
    a, b = args
    return truncate(~(a ^ b), width)


def _not(width: int, args: Sequence[int]) -> int:
    return truncate(~args[0], width)


def _neg(width: int, args: Sequence[int]) -> int:
    return truncate(-args[0], width)


def _redand(width: int, args: Sequence[int], in_width: int) -> int:
    return _bool(args[0] == mask(in_width))


def _redor(width: int, args: Sequence[int], in_width: int) -> int:
    return _bool(args[0] != 0)


def _shl(width: int, args: Sequence[int]) -> int:
    a, sh = args
    if sh >= width:
        return 0
    return truncate(a << sh, width)


def _lshr(width: int, args: Sequence[int]) -> int:
    a, sh = args
    if sh >= width:
        return 0
    return a >> sh


def _ashr(width: int, args: Sequence[int], in_width: int) -> int:
    a, sh = args
    signed = to_signed(a, in_width)
    if sh >= in_width:
        sh = in_width
    return from_signed(signed >> sh, width)


#: Word-level operator implementations taking ``(result_width, [arg values])``.
OP_IMPLS: Dict[str, Callable[..., int]] = {
    "add": _add,
    "sub": _sub,
    "mul": _mul,
    "and": _and,
    "or": _or,
    "xor": _xor,
    "xnor": _xnor,
    "not": _not,
    "neg": _neg,
    "shl": _shl,
    "lshr": _lshr,
}


def apply_op(op: str, result_width: int, arg_values: Sequence[int],
             arg_widths: Sequence[int], params: Sequence[int] = ()) -> int:
    """Apply operator ``op`` to concrete unsigned argument values.

    ``arg_widths`` carries the widths of the arguments, which matters for the
    signed and reduction operators; ``params`` carries the ``(hi, lo)`` pair
    for ``extract``.
    """
    if op in OP_IMPLS:
        return OP_IMPLS[op](result_width, arg_values)
    if op == "ashr":
        return _ashr(result_width, arg_values, arg_widths[0])
    if op == "redand":
        return _redand(result_width, arg_values, arg_widths[0])
    if op == "redor":
        return _redor(result_width, arg_values, arg_widths[0])
    if op == "concat":
        # args are listed most-significant first (SMT-LIB convention)
        result = 0
        for value, width in zip(arg_values, arg_widths):
            result = (result << width) | truncate(value, width)
        return result
    if op == "extract":
        hi, lo = params
        return (arg_values[0] >> lo) & mask(hi - lo + 1)
    if op == "ite":
        cond, then_v, else_v = arg_values
        return then_v if cond else else_v
    if op == "eq":
        return _bool(arg_values[0] == arg_values[1])
    if op == "ne":
        return _bool(arg_values[0] != arg_values[1])
    if op == "ult":
        return _bool(arg_values[0] < arg_values[1])
    if op == "ule":
        return _bool(arg_values[0] <= arg_values[1])
    if op == "ugt":
        return _bool(arg_values[0] > arg_values[1])
    if op == "uge":
        return _bool(arg_values[0] >= arg_values[1])
    if op == "slt":
        return _bool(to_signed(arg_values[0], arg_widths[0]) < to_signed(arg_values[1], arg_widths[1]))
    if op == "sle":
        return _bool(to_signed(arg_values[0], arg_widths[0]) <= to_signed(arg_values[1], arg_widths[1]))
    if op == "sgt":
        return _bool(to_signed(arg_values[0], arg_widths[0]) > to_signed(arg_values[1], arg_widths[1]))
    if op == "sge":
        return _bool(to_signed(arg_values[0], arg_widths[0]) >= to_signed(arg_values[1], arg_widths[1]))
    raise ValueError(f"unknown bitvector operator: {op!r}")
