"""And-Inverter Graph (AIG) with structural hashing.

The AIG is the bit-level representation produced by bit-blasting.  Literals
are encoded as even/odd integers in the classic AIGER style: node ``n`` has
positive literal ``2 * n`` and negated literal ``2 * n + 1``.  Node 0 is the
constant FALSE, so literal ``0`` is FALSE and literal ``1`` is TRUE.

Structural hashing plus the local two-level rules below mean that two
bit-blasted circuits with the same structure share nodes, which is what lets
the equivalence-checking miter of two identically-built datapaths collapse
before the SAT solver ever sees it.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["AIG", "TRUE_LIT", "FALSE_LIT"]

FALSE_LIT = 0
TRUE_LIT = 1


class AIG:
    """A mutable AIG under construction."""

    def __init__(self) -> None:
        # node index -> (left literal, right literal); index 0 is constant false.
        self._nodes: List[Tuple[int, int]] = [(0, 0)]
        self._strash: Dict[Tuple[int, int], int] = {}
        self._inputs: List[str] = []
        self._input_lits: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_input(self, name: str) -> int:
        """Create (or return) the primary input literal named ``name``."""
        if name in self._input_lits:
            return self._input_lits[name]
        index = len(self._nodes)
        self._nodes.append((-1, -1))  # sentinel marking a primary input
        lit = 2 * index
        self._inputs.append(name)
        self._input_lits[name] = lit
        return lit

    @staticmethod
    def negate(lit: int) -> int:
        return lit ^ 1

    def and_gate(self, a: int, b: int) -> int:
        """Return a literal for ``a AND b`` (with local simplification)."""
        if a > b:
            a, b = b, a
        if a == FALSE_LIT or b == FALSE_LIT or a == self.negate(b):
            return FALSE_LIT
        if a == TRUE_LIT:
            return b
        if b == TRUE_LIT:
            return a
        if a == b:
            return a
        key = (a, b)
        cached = self._strash.get(key)
        if cached is not None:
            return cached
        index = len(self._nodes)
        self._nodes.append(key)
        lit = 2 * index
        self._strash[key] = lit
        return lit

    def or_gate(self, a: int, b: int) -> int:
        return self.negate(self.and_gate(self.negate(a), self.negate(b)))

    def xor_gate(self, a: int, b: int) -> int:
        # a XOR b = (a AND !b) OR (!a AND b)
        return self.or_gate(self.and_gate(a, self.negate(b)),
                            self.and_gate(self.negate(a), b))

    def xnor_gate(self, a: int, b: int) -> int:
        return self.negate(self.xor_gate(a, b))

    def mux(self, sel: int, on_true: int, on_false: int) -> int:
        """``sel ? on_true : on_false``."""
        if on_true == on_false:
            return on_true
        if sel == TRUE_LIT:
            return on_true
        if sel == FALSE_LIT:
            return on_false
        return self.or_gate(self.and_gate(sel, on_true),
                            self.and_gate(self.negate(sel), on_false))

    def and_many(self, lits: List[int]) -> int:
        result = TRUE_LIT
        for lit in lits:
            result = self.and_gate(result, lit)
        return result

    def or_many(self, lits: List[int]) -> int:
        result = FALSE_LIT
        for lit in lits:
            result = self.or_gate(result, lit)
        return result

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def inputs(self) -> List[str]:
        return list(self._inputs)

    def is_input(self, index: int) -> bool:
        return self._nodes[index] == (-1, -1) and index != 0

    def node(self, index: int) -> Tuple[int, int]:
        return self._nodes[index]

    def input_literal(self, name: str) -> int:
        return self._input_lits[name]

    # ------------------------------------------------------------------ #
    # Simulation
    # ------------------------------------------------------------------ #
    def simulate(self, input_values: Dict[str, int], outputs: List[int]) -> List[int]:
        """Evaluate the AIG: each input name maps to 0/1; returns output bits."""
        values: List[int] = [0] * len(self._nodes)
        for name, lit in self._input_lits.items():
            values[lit >> 1] = input_values[name] & 1
        for index in range(1, len(self._nodes)):
            left, right = self._nodes[index]
            if (left, right) == (-1, -1):
                continue  # primary input, already set
            lv = values[left >> 1] ^ (left & 1)
            rv = values[right >> 1] ^ (right & 1)
            values[index] = lv & rv
        return [values[lit >> 1] ^ (lit & 1) for lit in outputs]

    def simulate_packed(self, input_words: Dict[str, int], outputs: List[int],
                        lanes: int = 64) -> List[int]:
        """Bit-parallel simulation: evaluate ``lanes`` input patterns at once.

        Each input name maps to a lane word whose bit ``i`` is that input's
        value under pattern ``i``; the returned output words are packed the
        same way.  One pass over the node list evaluates every lane
        simultaneously (negation is an XOR with the all-lanes mask), so a
        64-pattern gate-level sweep costs the same node walk as one
        :meth:`simulate` call.
        """
        mask = (1 << lanes) - 1
        values: List[int] = [0] * len(self._nodes)
        for name, lit in self._input_lits.items():
            values[lit >> 1] = input_words[name] & mask
        for index in range(1, len(self._nodes)):
            left, right = self._nodes[index]
            if (left, right) == (-1, -1):
                continue  # primary input, already set
            lv = values[left >> 1] ^ (mask if left & 1 else 0)
            rv = values[right >> 1] ^ (mask if right & 1 else 0)
            values[index] = lv & rv
        return [values[lit >> 1] ^ (mask if lit & 1 else 0) for lit in outputs]
