"""Word-level bitvector expression substrate.

This subpackage plays the role of Rosette's symbolic bitvector language in
the original Lakeroad implementation: it provides an immutable, hash-consed
expression IR over fixed-width bitvectors, concrete evaluation, aggressive
local rewriting (constant folding, mux collapsing, concat/extract pushing),
an And-Inverter Graph with structural hashing, and bit-blasting to CNF.

The public surface is the set of smart constructors in
:mod:`repro.bv.builder` (re-exported here), which always return simplified,
interned :class:`~repro.bv.ast.BVExpr` nodes.
"""

from repro.bv.ast import BVExpr, Sort
from repro.bv.builder import (
    bv,
    bvadd,
    bvand,
    bvashr,
    bvconcat,
    bveq,
    bvextract,
    bvite,
    bvlshr,
    bvmul,
    bvne,
    bvneg,
    bvnot,
    bvor,
    bvredand,
    bvredor,
    bvsge,
    bvsgt,
    bvshl,
    bvsle,
    bvslt,
    bvsub,
    bvuge,
    bvugt,
    bvule,
    bvult,
    bvvar,
    bvxnor,
    bvxor,
    sign_extend,
    zero_extend,
)
from repro.bv.bitsim import PackedEvaluator, pack_assignments, unpack_lane
from repro.bv.eval import evaluate, free_vars, var_widths
from repro.bv.simplify import simplify, substitute

__all__ = [
    "BVExpr",
    "Sort",
    "bv",
    "bvvar",
    "bvadd",
    "bvsub",
    "bvmul",
    "bvneg",
    "bvnot",
    "bvand",
    "bvor",
    "bvxor",
    "bvxnor",
    "bvshl",
    "bvlshr",
    "bvashr",
    "bvconcat",
    "bvextract",
    "bvite",
    "bveq",
    "bvne",
    "bvult",
    "bvule",
    "bvugt",
    "bvuge",
    "bvslt",
    "bvsle",
    "bvsgt",
    "bvsge",
    "bvredand",
    "bvredor",
    "zero_extend",
    "sign_extend",
    "evaluate",
    "free_vars",
    "var_widths",
    "PackedEvaluator",
    "pack_assignments",
    "unpack_lane",
    "simplify",
    "substitute",
]
