"""Tseitin encoding of an AIG into CNF — one-shot and incremental.

The CNF produced here is consumed by :mod:`repro.sat`.  CNF variables are
1-based (DIMACS convention); AIG node ``n`` maps to CNF variable ``n + 1``
so that the constant node 0 gets a dedicated variable forced to FALSE.

:class:`IncrementalCnf` keeps the encoding alive across queries: the AIG
may keep growing (structural hashing gives every node a stable index, hence
a stable CNF variable), and each ``encode``/``assert_lit`` call appends
clauses only for the cone nodes that have not been clause-ified yet.  This
is the namespace-stability half of incremental CEGIS: a hole variable's
bits keep the same CNF literals in every iteration, so learned clauses
about them remain meaningful.  :func:`aig_to_cnf` is the historical
one-shot form, now a thin wrapper over a throwaway incremental encoder.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.bv.aig import AIG
from repro.sat.cnf import CNF

__all__ = ["IncrementalCnf", "aig_to_cnf", "lit_to_cnf"]


def lit_to_cnf(lit: int) -> int:
    """Map an AIG literal to a signed DIMACS literal."""
    var = (lit >> 1) + 1
    return -var if lit & 1 else var


class IncrementalCnf:
    """An append-only Tseitin encoding of a growing AIG.

    The encoder owns one :class:`~repro.sat.cnf.CNF` whose variable space
    mirrors the AIG's node space.  ``encode`` walks the cone of influence of
    the requested literals and emits gate clauses for nodes seen for the
    first time; already-encoded nodes (whose cones are encoded by
    construction) are never revisited, so the clause list only ever grows.
    """

    def __init__(self, aig: AIG) -> None:
        self.aig = aig
        self.cnf = CNF(num_vars=aig.num_nodes)
        # Constant-false node.
        self.cnf.add_clause([-1])
        self._encoded: Set[int] = {0}

    def encode(self, output_lits: List[int]) -> None:
        """Append gate clauses for any not-yet-encoded cone of ``output_lits``."""
        needed: Set[int] = set()
        stack = [lit >> 1 for lit in output_lits]
        while stack:
            index = stack.pop()
            if index in needed or index in self._encoded:
                continue
            needed.add(index)
            left, right = self.aig.node(index)
            if (left, right) != (-1, -1) and index != 0:
                stack.append(left >> 1)
                stack.append(right >> 1)

        for index in sorted(needed):
            self._encoded.add(index)
            if self.aig.is_input(index):
                continue
            left, right = self.aig.node(index)
            out_var = index + 1
            left_lit = lit_to_cnf(left)
            right_lit = lit_to_cnf(right)
            # out <-> left AND right
            self.cnf.add_clause([-out_var, left_lit])
            self.cnf.add_clause([-out_var, right_lit])
            self.cnf.add_clause([out_var, -left_lit, -right_lit])

        self.cnf.num_vars = max(self.cnf.num_vars, self.aig.num_nodes)

    def assert_lit(self, lit: int) -> None:
        """Constrain an AIG literal to be true (a permanent obligation)."""
        self.encode([lit])
        self.cnf.add_clause([lit_to_cnf(lit)])

    def gate_literal(self, lit: int) -> int:
        """Encode the cone of an AIG literal and return its DIMACS literal.

        Unlike :meth:`assert_lit` the literal is *not* constrained: the
        clauses only define the cone, and callers activate (or negate) the
        output per query by passing the returned literal as a solver
        assumption.  This is the miter-output idiom of incremental
        verification — one CNF holds every obligation's miter, and each
        check gates exactly one of them on.
        """
        self.encode([lit])
        return lit_to_cnf(lit)

    def input_vars(self) -> Dict[str, int]:
        """Map from input bit names to their (stable) CNF variable numbers."""
        return {name: (self.aig.input_literal(name) >> 1) + 1
                for name in self.aig.inputs}


def aig_to_cnf(aig: AIG, output_lits: List[int]) -> tuple[CNF, Dict[str, int]]:
    """Encode the cone of influence of ``output_lits`` as CNF (one-shot).

    Returns the CNF (with the outputs asserted true) and a map from input
    bit names to their CNF variable numbers.
    """
    encoder = IncrementalCnf(aig)
    encoder.encode(output_lits)
    for lit in output_lits:
        encoder.cnf.add_clause([lit_to_cnf(lit)])
    return encoder.cnf, encoder.input_vars()
