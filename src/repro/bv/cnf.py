"""Tseitin encoding of an AIG into CNF.

The CNF produced here is consumed by :mod:`repro.sat`.  CNF variables are
1-based (DIMACS convention); AIG node ``n`` maps to CNF variable ``n + 1``
so that the constant node 0 gets a dedicated variable forced to FALSE.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bv.aig import AIG
from repro.sat.cnf import CNF

__all__ = ["aig_to_cnf", "lit_to_cnf"]


def lit_to_cnf(lit: int) -> int:
    """Map an AIG literal to a signed DIMACS literal."""
    var = (lit >> 1) + 1
    return -var if lit & 1 else var


def aig_to_cnf(aig: AIG, output_lits: List[int]) -> tuple[CNF, Dict[str, int]]:
    """Encode the cone of influence of ``output_lits`` as CNF.

    Returns the CNF (with the outputs asserted true) and a map from input
    bit names to their CNF variable numbers.
    """
    cnf = CNF(num_vars=aig.num_nodes)

    # Constant-false node.
    cnf.add_clause([-1])

    needed = set()
    stack = [lit >> 1 for lit in output_lits]
    while stack:
        index = stack.pop()
        if index in needed:
            continue
        needed.add(index)
        left, right = aig.node(index)
        if (left, right) != (-1, -1) and index != 0:
            stack.append(left >> 1)
            stack.append(right >> 1)

    for index in sorted(needed):
        if index == 0 or aig.is_input(index):
            continue
        left, right = aig.node(index)
        out_var = index + 1
        left_lit = lit_to_cnf(left)
        right_lit = lit_to_cnf(right)
        # out <-> left AND right
        cnf.add_clause([-out_var, left_lit])
        cnf.add_clause([-out_var, right_lit])
        cnf.add_clause([out_var, -left_lit, -right_lit])

    for lit in output_lits:
        cnf.add_clause([lit_to_cnf(lit)])

    input_vars = {name: (aig.input_literal(name) >> 1) + 1 for name in aig.inputs}
    return cnf, input_vars
