"""Lakeroad-as-a-service: a warm solver-worker pool behind a batching,
deduplicating front door.

Every ``lakeroad map`` invocation pays import + vendor-library load +
solver cold-start — fine for one hard instance, fatal for heavy traffic
over many *small* queries.  This module keeps the expensive state alive:

* **Worker pool** — a set of long-lived worker processes, each holding
  one warm :class:`~repro.engine.session.MappingSession` built from
  a pickled :class:`~repro.engine.parallel.SessionSpec` (the same recipe
  sharded sweeps use).  The session — its in-memory LRU, primitive
  library, solver portfolio and the persistent-solver machinery behind the
  ``incremental``/``incremental_verify`` modes — survives across requests,
  so repeat queries for a design family skip the cold start entirely.
* **Front door** — :class:`SolverService`, a single dispatcher thread
  multiplexing worker pipes through a ``selectors`` loop (no threads per
  request, no new dependencies).  Before anything reaches a worker it is

  - **coalesced**: two concurrent requests with the same canonical
    synthesis-cache key (see
    :func:`repro.engine.session.synthesis_cache_key`) share one solve and
    each get their own reply;
  - **cache-checked**: an in-memory result cache, tiered over the
    persistent :class:`~repro.engine.diskcache.DiskSynthesisCache` when the
    spec has a ``cache_dir``, answers repeats without any IPC;
  - **affinity-routed**: requests route by design fingerprint, so a design
    family keeps hitting the worker whose warm session already holds its
    results (new fingerprints go to the least-loaded worker);
  - **crash-isolated**: a dead worker is restarted and its queued and
    in-flight requests are re-dispatched — callers never see the crash.

* **QoS layer** — the front door is also a fair, bounded, elastic queue:

  - **per-client fairness**: submissions are tagged with a client id and
    held in per-client FIFO queues; a deficit-round-robin scheduler hands
    work to the pool one quantum per client per rotation, so a flooding
    client cannot starve the others (order within a client is preserved);
  - **bounded admission**: a global ``max_pending`` cap and a per-client
    ``client_queue`` cap; a submission over either raises
    :class:`ServiceOverloaded` carrying a backlog-derived
    ``retry_after_ms`` hint, which the socket layer turns into a
    structured ``{"error": "overloaded", "retry_after_ms": ...}`` reply
    on a still-live connection;
  - **elastic pool**: with ``max_workers > min_workers`` the dispatcher
    spawns extra workers under sustained backlog and retires idle ones
    after a quiet period — resize decisions run *after* assignment in the
    same dispatcher pass, so a worker that just received work is never a
    retirement victim;
  - **shared portfolio racing**: :meth:`SolverService.portfolio` returns a
    :class:`ServicePortfolio` whose concurrent SAT races borrow *idle*
    pool workers over the existing pipes instead of forking a fresh
    process per query (falling back to the in-process thread race when
    every worker is busy).

* **Socket layer** — an asyncio unix-domain-socket server speaking
  newline-delimited JSON (:func:`run_server`, the ``lakeroad serve``
  subcommand) plus a small pipelining client (:class:`ServiceClient`, the
  ``lakeroad request`` subcommand).  Control-plane ops (``ping``,
  ``stats``) never pass through admission — they are answered inline even
  when the map queue is saturated.

**Determinism contract.**  Workers execute the same per-request unit of
work as the serial sweep (:func:`repro.harness.runner.map_benchmark`'s
body), the front door derives byte-identical cache keys via
:func:`synthesis_cache_key`, and shared results are re-stamped with each
requester's benchmark metadata exactly as the session cache does — so
served records equal serial ``run_sweep`` records (modulo wall-clock
fields) in all four ``incremental`` × ``incremental_verify`` modes,
regardless of scheduling order or pool resizes.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import multiprocessing
import os
import selectors
import signal
import socket
import threading
import time
import warnings
from collections import Counter, OrderedDict, deque
from concurrent.futures import Future
from dataclasses import dataclass, replace
from functools import partial
from pathlib import Path
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.engine.budget import TIMEOUT as TIMEOUT_STATUS
from repro.engine.budget import Budget
from repro.engine.cache import SynthesisCache
from repro.engine.parallel import SessionSpec
from repro.harness.runner import (
    ExperimentConfig,
    MappingRecord,
    record_from_result,
)
from repro.sat.portfolio import SatPortfolio
from repro.sat.solver import SatResult

__all__ = ["MapRequest", "SolverService", "ServiceClient", "ServerThread",
           "ServiceOverloaded", "ServicePortfolio",
           "run_server", "DEFAULT_SOCKET", "DEFAULT_STREAM_LIMIT"]

#: Default unix-socket path for ``lakeroad serve`` / ``lakeroad request``.
DEFAULT_SOCKET = "/tmp/lakeroad.sock"

#: Per-connection line limit for the asyncio servers.  asyncio's default
#: StreamReader limit is 64 KiB — smaller than a map request carrying a
#: large inlined Verilog source, and hitting it used to kill the
#: connection (``LimitOverrunError`` propagating out of ``readline``).
#: 16 MiB comfortably covers any design the engine can actually solve
#: while still bounding what one connection can buffer.
DEFAULT_STREAM_LIMIT = 16 * 1024 * 1024

#: Per-worker cap on requests written to the pipe but not yet answered;
#: bounds pipe-buffer usage so the dispatcher's sends never block.
MAX_PIPE_BACKLOG = 16

#: Default global cap on admitted-but-unfinished map submissions.
DEFAULT_MAX_PENDING = 256

#: Default per-client cap on admitted-but-unfinished map submissions.
DEFAULT_CLIENT_QUEUE = 64


class ServiceOverloaded(RuntimeError):
    """The service refused a submission because a pending cap is full.

    ``retry_after_ms`` is the server's backlog-derived hint for when a
    retry is likely to be admitted; the socket layer forwards it verbatim
    in the structured ``overloaded`` reply.
    """

    def __init__(self, retry_after_ms: int,
                 reason: str = "pending queue is full") -> None:
        super().__init__(f"service overloaded: {reason} "
                         f"(retry in {retry_after_ms} ms)")
        self.retry_after_ms = retry_after_ms


# --------------------------------------------------------------------------- #
# Requests
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class MapRequest:
    """One picklable map request plus the metadata its record should carry.

    The solving fields (``verilog`` … ``use_cache``) determine the result;
    the metadata fields (``benchmark`` … ``signed``) only label the
    returned :class:`~repro.harness.runner.MappingRecord`, so two requests
    that differ only in metadata legitimately share one solve.
    """

    verilog: str
    template: str = "dsp"
    arch: str = "xilinx-ultrascale-plus"
    module_name: Optional[str] = None
    timeout_seconds: Optional[float] = None
    extra_cycles: int = 1
    validate: bool = False
    use_cache: Optional[bool] = None
    #: Record metadata (benchmark-sourced requests carry the sweep labels;
    #: raw verilog requests leave them defaulted and get the module name).
    benchmark: str = ""
    form: str = ""
    width: int = 0
    stages: int = 0
    signed: bool = False

    @classmethod
    def from_benchmark(cls, benchmark,
                       config: Optional[ExperimentConfig] = None
                       ) -> "MapRequest":
        """The request :func:`repro.harness.runner.map_benchmark` would run."""
        config = config or ExperimentConfig()
        return cls(verilog=benchmark.verilog,
                   template=config.template,
                   arch=benchmark.architecture,
                   timeout_seconds=config.timeout_for(benchmark.architecture),
                   extra_cycles=config.extra_cycles,
                   validate=config.validate,
                   use_cache=config.use_cache,
                   benchmark=benchmark.name,
                   form=benchmark.form.name,
                   width=benchmark.width,
                   stages=benchmark.stages,
                   signed=benchmark.signed)


def _serve_request(session, request: MapRequest) -> MappingRecord:
    """The worker-side unit of work (the body of ``map_benchmark``)."""
    from repro.hdl.behavioral import verilog_to_behavioral

    design = verilog_to_behavioral(request.verilog, request.module_name)
    result = session.map_design(
        design,
        template=request.template,
        arch=request.arch,
        timeout_seconds=request.timeout_seconds,
        extra_cycles=request.extra_cycles,
        validate=request.validate,
        use_cache=request.use_cache,
    )
    return record_from_result(result,
                              architecture=request.arch,
                              benchmark=request.benchmark or design.name,
                              form=request.form,
                              width=request.width or design.output_width,
                              stages=request.stages,
                              signed=request.signed)


def _restamp(payload: Dict[str, Any], request: MapRequest,
             cache_hit: bool, time_seconds: float) -> MappingRecord:
    """A shared result payload re-labelled for one requester.

    Mirrors what the session cache does on a hit: the outcome-derived
    fields (status, resources, solver telemetry) are replayed verbatim;
    the benchmark metadata and the wall-clock fields belong to the
    requester.
    """
    record = MappingRecord.from_dict(payload)
    return replace(record,
                   benchmark=request.benchmark or record.benchmark,
                   form=request.form if request.benchmark else record.form,
                   width=request.width if request.benchmark else record.width,
                   stages=request.stages if request.benchmark else record.stages,
                   signed=request.signed if request.benchmark else record.signed,
                   cache_hit=cache_hit,
                   time_seconds=time_seconds)


# --------------------------------------------------------------------------- #
# Worker process
# --------------------------------------------------------------------------- #
def _race_in_worker(conn, race_id: int, member_name: str, cnf,
                    deadline: Optional[float],
                    assumptions: Sequence[int]) -> None:
    """Run one portfolio race member inside a service worker.

    ``conn.poll`` doubles as the cooperative ``should_stop`` hook: while a
    worker is racing, the only message the front door will send it is the
    ``race_cancel`` for this race (or a ``stop`` at shutdown), so *any*
    readable byte on the pipe means the race is over.
    """
    from repro.engine.backends import backend_by_name

    try:
        backend = backend_by_name(member_name)
        result = backend.solve(cnf, deadline, list(assumptions),
                               should_stop=conn.poll)
        payload = ("race_result", race_id, member_name, result, None)
    except Exception as exc:  # noqa: BLE001 - crosses the pipe
        payload = ("race_result", race_id, member_name, None,
                   f"{type(exc).__name__}: {exc}")
    conn.send(payload)


def _worker_main(spec: SessionSpec, conn) -> None:
    """Worker body: serve requests on one warm session until told to stop.

    The parent coordinates shutdown (and handles the terminal's signals),
    so workers ignore SIGINT/SIGTERM — a Ctrl-C must never kill a worker
    mid-sqlite-write and quarantine the shared cache.  The ``with`` block
    guarantees the session closes on every exit path, flushing the disk
    cache's lifetime counters.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
    except (OSError, ValueError):  # pragma: no cover - exotic platforms
        pass
    try:
        with spec.build() as session:
            while True:
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    return  # front door died; exit, closing the session
                if message[0] == "stop":
                    try:
                        conn.send(("stats",
                                   dict(session.cache_stats()),
                                   dict(session.portfolio_wins())))
                    except (BrokenPipeError, OSError):
                        pass
                    return
                if message[0] == "race":
                    _, race_id, member_name, cnf, deadline, assumptions = message
                    try:
                        _race_in_worker(conn, race_id, member_name, cnf,
                                        deadline, assumptions)
                    except (BrokenPipeError, OSError):
                        return
                    continue
                if message[0] == "race_cancel":
                    # A cancel for a race this worker already finished (the
                    # winner's reply crossed it on the pipe) — ignore.
                    continue
                _, request_id, request = message
                try:
                    record = _serve_request(session, request)
                    payload = ("result", request_id, record.to_dict())
                except Exception as exc:  # noqa: BLE001 - crosses the pipe
                    payload = ("error", request_id,
                               f"{type(exc).__name__}: {exc}")
                try:
                    conn.send(payload)
                except (BrokenPipeError, OSError):
                    return
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


def _service_context():
    """Prefer ``fork`` (cheap, inherits the warm interpreter)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class _Pending:
    """One in-flight solve and every requester waiting on it."""

    __slots__ = ("key", "request", "waiters", "affinity", "request_id",
                 "submitted_at", "admitted_by")

    def __init__(self, key, request: MapRequest, affinity: str,
                 request_id: int, admitted_by: str) -> None:
        self.key = key
        self.request = request
        #: ``(future, request, client)`` triples: coalesced duplicates may
        #: carry different benchmark metadata (sign twins share a
        #: fingerprint), so each waiter's record is stamped from its own
        #: request.
        self.waiters: List[Tuple[Future, MapRequest, str]] = []
        self.affinity = affinity
        self.request_id = request_id
        self.submitted_at = time.monotonic()
        #: The one client that passed ``_admit`` for this solve; coalesced
        #: duplicates ride along without taking a slot, so exactly this
        #: client's slot is returned when the solve resolves.
        self.admitted_by = admitted_by


class _Race:
    """One portfolio race borrowed onto idle pool workers."""

    __slots__ = ("race_id", "cnf", "deadline", "assumptions", "names",
                 "future", "members", "last_result")

    def __init__(self, race_id: int, cnf, deadline: Optional[float],
                 assumptions: Tuple[int, ...],
                 names: Tuple[str, ...]) -> None:
        self.race_id = race_id
        self.cnf = cnf
        self.deadline = deadline
        self.assumptions = assumptions
        self.names = names
        #: Resolves to ``(SatResult, winner_name)``, or ``None`` when no
        #: idle worker was available (the caller should race locally).
        self.future: "Future[Optional[Tuple[SatResult, str]]]" = Future()
        #: member name -> the worker handle running it (live members only).
        self.members: Dict[str, "_WorkerHandle"] = {}
        self.last_result: Optional[SatResult] = None


class _WorkerHandle:
    """A worker process, its pipe, and its share of the request queue."""

    __slots__ = ("index", "process", "conn", "queue", "sent", "served",
                 "stopping", "racing", "last_active")

    def __init__(self, index: int) -> None:
        self.index = index
        self.process = None
        self.conn = None
        #: Assigned but not yet written to the pipe.
        self.queue: Deque[_Pending] = deque()
        #: Written to the pipe, awaiting a result (send order preserved so
        #: a crash re-dispatches in the original order).
        self.sent: "OrderedDict[int, _Pending]" = OrderedDict()
        self.served = 0
        #: A scale-down ``stop`` has been sent; the handle takes no new
        #: work and is removed from the pool when its pipe reaches EOF.
        self.stopping = False
        #: The race id this worker is currently solving for, if any.
        self.racing: Optional[int] = None
        #: Last time this worker was given or finished work (spawn counts),
        #: driving the idle-retirement clock.
        self.last_active = time.monotonic()

    @property
    def outstanding(self) -> int:
        return len(self.queue) + len(self.sent)


class SolverService:
    """The warm-pool front door: dedup, cache check, affinity, crash restart,
    per-client fair scheduling, bounded admission and an elastic pool.

    Thread-safe: ``submit`` may be called from any thread (the asyncio
    socket layer calls it from executor threads); a single dispatcher
    thread owns the worker pipes.  Close the service (or use it as a
    context manager) to drain in-flight work, stop the workers cleanly and
    collect their session statistics.

    QoS knobs (all optional; the defaults reproduce the fixed-pool,
    effectively-unbounded behaviour of earlier revisions):

    * ``min_workers`` / ``max_workers`` — the elastic pool range; both
      default to ``workers`` (no resizing).  Under sustained backlog
      (unassigned work for ``scale_up_after`` seconds) the pool grows one
      worker at a time; a worker idle for ``idle_retire_seconds`` with the
      pool above ``min_workers`` is retired after its session statistics
      are collected.
    * ``max_pending`` / ``client_queue`` — global and per-client caps on
      admitted-but-unfinished submissions; over either, ``submit`` raises
      :class:`ServiceOverloaded` with a ``retry_after_ms`` hint.
    * ``fair_quantum`` — submissions each client may dispatch per
      round-robin rotation (deficit round robin with unit-cost requests).
    """

    def __init__(self, spec: Optional[SessionSpec] = None, workers: int = 2,
                 max_pipe_backlog: int = MAX_PIPE_BACKLOG, *,
                 min_workers: Optional[int] = None,
                 max_workers: Optional[int] = None,
                 max_pending: int = DEFAULT_MAX_PENDING,
                 client_queue: int = DEFAULT_CLIENT_QUEUE,
                 fair_quantum: int = 1,
                 scale_up_after: float = 0.5,
                 idle_retire_seconds: float = 30.0) -> None:
        if workers < 1:
            raise ValueError("a service needs at least one worker")
        self.spec = spec if spec is not None else SessionSpec()
        self.workers = workers
        self.max_pipe_backlog = max_pipe_backlog
        self.min_workers = workers if min_workers is None else int(min_workers)
        self.max_workers = workers if max_workers is None else int(max_workers)
        if not (1 <= self.min_workers <= workers <= self.max_workers):
            raise ValueError(
                f"worker bounds must satisfy 1 <= min_workers <= workers "
                f"<= max_workers, got min={self.min_workers} "
                f"workers={workers} max={self.max_workers}")
        if max_pending < 1 or client_queue < 1:
            raise ValueError("pending caps must be at least 1")
        if fair_quantum < 1:
            raise ValueError("fair_quantum must be at least 1")
        self.max_pending = max_pending
        self.client_queue = client_queue
        self.fair_quantum = fair_quantum
        self.scale_up_after = scale_up_after
        self.idle_retire_seconds = idle_retire_seconds

        self._lock = threading.Lock()
        self._inflight: Dict[Any, _Pending] = {}
        #: Per-client FIFO queues of not-yet-assigned submissions plus the
        #: round-robin rotation the fair scheduler walks.
        self._client_queues: Dict[str, Deque[_Pending]] = {}
        self._rr_order: Deque[str] = deque()
        self._pending_total = 0
        self._client_pending: Counter = Counter()
        self._client_stats: Dict[str, Counter] = {}
        self._affinity: Dict[str, int] = {}
        self._next_request_id = 0
        self._next_race_id = 0
        self._race_requests: Deque[_Race] = deque()
        self._races: Dict[int, _Race] = {}
        self._closed = False
        self._failed: Optional[str] = None
        self._drain_deadline: Optional[float] = None
        self._stats: Counter = Counter()
        self._worker_cache_stats: Counter = Counter()
        self._worker_portfolio_wins: Counter = Counter()
        self._restarts_left = max(8, self.max_workers * 4)
        #: EMA of observed solve seconds, feeding the retry_after_ms hint.
        self._solve_ema: Optional[float] = None
        #: When the scheduler first saw unassignable backlog (scale-up
        #: hysteresis); None while the backlog is empty.
        self._backlog_since: Optional[float] = None

        # Front-door result cache: an in-memory payload LRU, falling
        # through to the spec's persistent disk cache when one exists.  The
        # disk tier is read-only here — workers already write through to it,
        # and a second writer would double-write every entry.
        self._front_cache: Optional[SynthesisCache] = None
        self._disk = None
        if self.spec.enable_cache:
            self._front_cache = SynthesisCache()
            if self.spec.cache_dir is not None:
                from repro.engine.diskcache import DiskSynthesisCache

                self._disk = DiskSynthesisCache(self.spec.cache_dir)
        self._arch_names: Dict[str, str] = {}

        self._selector = selectors.DefaultSelector()
        self._waker_r, self._waker_w = os.pipe()
        os.set_blocking(self._waker_r, False)
        self._selector.register(self._waker_r, selectors.EVENT_READ,
                                data=None)
        self._pool: List[_WorkerHandle] = []
        self._by_index: Dict[int, _WorkerHandle] = {}
        self._next_worker_index = 0
        context = _service_context()
        for _ in range(workers):
            handle = _WorkerHandle(self._next_worker_index)
            self._next_worker_index += 1
            self._spawn(handle, context)
            self._pool.append(handle)
            self._by_index[handle.index] = handle
        self._stats["pool_peak"] = workers
        # An elastic pool needs a fast hysteresis clock; a fixed pool can
        # keep the relaxed quarter-second tick.
        if self.max_workers > self.min_workers:
            self._tick = min(0.25, max(0.005, min(scale_up_after,
                                                  idle_retire_seconds) / 4.0))
        else:
            self._tick = 0.25
        self._thread = threading.Thread(target=self._dispatch_loop,
                                        name="lakeroad-service-dispatcher",
                                        daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------ #
    # Submission (any thread)
    # ------------------------------------------------------------------ #
    def submit(self, request: MapRequest,
               client: str = "") -> "Future[MappingRecord]":
        """Submit one request; the future resolves to a MappingRecord.

        ``client`` tags the submission for fair scheduling and the
        per-client pending cap (the socket layer passes a per-connection
        id; direct library callers share the default tag).  Raises
        :class:`ServiceOverloaded` when a pending cap is full — coalesced
        duplicates and front-cache hits are admitted for free.
        """
        future: "Future[MappingRecord]" = Future()
        with self._lock:
            if self._closed:
                raise RuntimeError("service is closed")
            if self._failed is not None:
                raise RuntimeError(f"service failed: {self._failed}")
        try:
            key, affinity = self._request_keys(request)
        except Exception as exc:  # unparseable verilog, unknown arch, ...
            future.set_exception(exc)
            with self._lock:
                self._stats["requests"] += 1
                self._stats["errors"] += 1
            return future
        started = time.monotonic()
        caching = self._front_cache is not None and request.use_cache is not False
        with self._lock:
            self._stats["requests"] += 1
            self._client_counter(client)["submitted"] += 1
            pending = self._inflight.get(key)
            if pending is not None:
                pending.waiters.append((future, request, client))
                self._stats["coalesced"] += 1
                return future
            if caching:
                payload = self._cache_get(key)
                if payload is not None:
                    self._client_counter(client)["served"] += 1
                    future.set_result(_restamp(
                        payload, request, cache_hit=True,
                        time_seconds=time.monotonic() - started))
                    return future
            self._admit(client)
            self._next_request_id += 1
            pending = _Pending(key, request, affinity, self._next_request_id,
                               client)
            pending.waiters.append((future, request, client))
            self._inflight[key] = pending
            queue = self._client_queues.get(client)
            if queue is None:
                queue = deque()
                self._client_queues[client] = queue
                self._rr_order.append(client)
            queue.append(pending)
        self._wake()
        return future

    def map_benchmark(self, benchmark,
                      config: Optional[ExperimentConfig] = None,
                      client: str = "") -> "Future[MappingRecord]":
        return self.submit(MapRequest.from_benchmark(benchmark, config),
                           client=client)

    def map_many(self, benchmarks: Sequence,
                 config: Optional[ExperimentConfig] = None
                 ) -> List[MappingRecord]:
        """Submit a batch concurrently; records come back in input order
        (the served analogue of ``run_sweep``'s deterministic merge)."""
        config = config or ExperimentConfig()
        futures = [self.map_benchmark(benchmark, config)
                   for benchmark in benchmarks]
        return [future.result() for future in futures]

    def _client_counter(self, client: str) -> Counter:
        """The per-client QoS counters (lock held)."""
        counter = self._client_stats.get(client)
        if counter is None:
            counter = Counter()
            self._client_stats[client] = counter
        return counter

    def _admit(self, client: str) -> None:
        """Reserve one pending slot for ``client`` or raise (lock held)."""
        if self._pending_total >= self.max_pending:
            reason = f"global pending cap ({self.max_pending}) reached"
        elif self._client_pending[client] >= self.client_queue:
            reason = (f"client {client or '<default>'!r} pending cap "
                      f"({self.client_queue}) reached")
        else:
            self._pending_total += 1
            self._client_pending[client] += 1
            return
        self._stats["rejections"] += 1
        self._client_counter(client)["rejected"] += 1
        raise ServiceOverloaded(self._retry_after_ms(), reason)

    def _retry_after_ms(self) -> int:
        """Backlog-derived retry hint (lock held): roughly one average
        solve per backlog slot per worker, clamped to [50 ms, 10 s]."""
        ema = self._solve_ema if self._solve_ema is not None else 0.25
        pool = max(1, len(self._pool))
        estimate = ema * (1.0 + self._pending_total / pool)
        return int(min(10_000.0, max(50.0, estimate * 1000.0)))

    def _release_slots(self, pending: _Pending) -> None:
        """Return the one admission slot this solve took (lock held).

        Only ``pending.admitted_by`` passed ``_admit``; coalesced
        duplicates and front-cache hits never took a slot, so releasing
        per-waiter would over-credit the caps until backpressure stopped
        triggering.  The ``served`` counter, by contrast, *is* per-waiter.
        """
        admitted = pending.admitted_by
        if self._pending_total > 0:
            self._pending_total -= 1
        if self._client_pending[admitted] <= 1:
            self._client_pending.pop(admitted, None)
        else:
            self._client_pending[admitted] -= 1
        for _, _, client in pending.waiters:
            self._client_counter(client)["served"] += 1

    def _request_keys(self, request: MapRequest) -> Tuple[Any, str]:
        """The dedup/cache key and the affinity key for one request.

        Must match :meth:`MappingSession.map_design`'s derivation exactly
        (both go through :func:`synthesis_cache_key`); the affinity key is
        the design fingerprint, so a design family sticks to one worker.
        """
        from repro.engine.cache import program_fingerprint
        from repro.engine.session import synthesis_cache_key
        from repro.hdl.behavioral import verilog_to_behavioral

        design = verilog_to_behavioral(request.verilog, request.module_name)
        arch_name = self._arch_name(request.arch)
        budget = Budget.for_architecture(arch_name,
                                         override=request.timeout_seconds)
        key = synthesis_cache_key(design, arch_name, request.template, budget,
                                  request.extra_cycles, request.validate,
                                  self.spec.random_probes)
        return key, program_fingerprint(design.program)

    def _arch_name(self, arch: str) -> str:
        name = self._arch_names.get(arch)
        if name is None:
            from repro.arch import load_architecture

            name = load_architecture(str(arch)).name
            self._arch_names[arch] = name
        return name

    def _cache_get(self, key) -> Optional[Dict[str, Any]]:
        """Front-door lookup (lock held): memory first, then the disk tier."""
        payload = self._front_cache.get(key)
        if payload is not None:
            self._stats["front_memory_hits"] += 1
            return payload
        if self._disk is not None:
            result = self._disk.get(key)
            if result is not None:
                self._stats["front_disk_hits"] += 1
                payload = record_from_result(
                    result, architecture=result.architecture,
                    benchmark=result.design_name).to_dict()
                self._front_cache.put(key, payload)
                return payload
        return None

    # ------------------------------------------------------------------ #
    # Shared portfolio racing
    # ------------------------------------------------------------------ #
    def race_cnf(self, cnf, deadline: Optional[float] = None,
                 assumptions: Sequence[int] = (),
                 names: Optional[Sequence[str]] = None
                 ) -> Optional[Tuple[SatResult, str]]:
        """Race SAT backends on *idle* pool workers (blocking).

        Returns ``(result, winner_name)`` — ``winner_name`` is ``"none"``
        when every racer came back unknown — or ``None`` when no idle
        worker could be borrowed (or the service is closing), in which
        case the caller should run its race locally.
        """
        if names is None:
            from repro.engine.backends import default_backend_names

            names = default_backend_names()
        with self._lock:
            if self._closed or self._failed is not None:
                return None
            self._next_race_id += 1
            race = _Race(self._next_race_id, cnf, deadline,
                         tuple(assumptions), tuple(names))
            self._race_requests.append(race)
        self._wake()
        return race.future.result()

    def portfolio(self, names: Optional[Sequence[str]] = None
                  ) -> "ServicePortfolio":
        """A portfolio whose concurrent races borrow idle pool workers."""
        members = None
        if names:
            from repro.engine.backends import backend_by_name

            members = [backend_by_name(name) for name in names]
        return ServicePortfolio(self, members)

    def _assign_races(self) -> None:
        """Hand queued races to idle workers (dispatcher thread).

        Runs after map assignment in the same pass, so "idle" really means
        idle — a worker that was just given map work is never borrowed.
        Races are never queued: with no idle worker the caller is told to
        race locally instead (``None`` sentinel), keeping map latency and
        race latency independent.
        """
        with self._lock:
            if not self._race_requests:
                return
            fresh = list(self._race_requests)
            self._race_requests.clear()
        for race in fresh:
            idle = [handle for handle in self._pool
                    if not handle.stopping and handle.racing is None
                    and handle.outstanding == 0]
            expired = race.deadline is not None \
                and time.monotonic() >= race.deadline
            started: Dict[str, _WorkerHandle] = {}
            if idle and not expired:
                for name, handle in zip(race.names, idle):
                    try:
                        handle.conn.send(("race", race.race_id, name,
                                          race.cnf, race.deadline,
                                          race.assumptions))
                    except (BrokenPipeError, OSError):
                        self._restart(handle)
                        continue
                    handle.racing = race.race_id
                    started[name] = handle
            if not started:
                with self._lock:
                    self._stats["race_fallbacks"] += 1
                if not race.future.done():
                    race.future.set_result(None)
                continue
            race.members = started
            self._races[race.race_id] = race
            with self._lock:
                self._stats["races"] += 1

    def _finish_race_member(self, race: _Race, name: str,
                            result: Optional[SatResult],
                            error: Optional[str]) -> None:
        """Fold one member's answer into the race (dispatcher thread)."""
        race.members.pop(name, None)
        finished = not race.members
        if race.future.done():
            if finished:
                self._races.pop(race.race_id, None)
            return
        if error is not None:
            warnings.warn(f"service race member {name!r} crashed: {error}",
                          RuntimeWarning, stacklevel=2)
        elif result is not None and not result.is_unknown:
            race.future.set_result((result, name))
            for other in race.members.values():
                try:
                    other.conn.send(("race_cancel", race.race_id))
                except (BrokenPipeError, OSError):
                    pass
            if finished:
                self._races.pop(race.race_id, None)
            return
        elif result is not None:
            race.last_result = result
        if finished:
            self._races.pop(race.race_id, None)
            race.future.set_result(
                (race.last_result or SatResult(status="unknown"), "none"))

    def _abort_races(self) -> None:
        """Resolve every unfinished race with the local-fallback sentinel."""
        with self._lock:
            queued = list(self._race_requests)
            self._race_requests.clear()
            running = list(self._races.values())
            self._races.clear()
        for race in itertools.chain(queued, running):
            if not race.future.done():
                race.future.set_result(None)
        for handle in self._pool:
            handle.racing = None

    # ------------------------------------------------------------------ #
    # Dispatcher thread
    # ------------------------------------------------------------------ #
    def _wake(self) -> None:
        try:
            os.write(self._waker_w, b"x")
        except OSError:  # pragma: no cover - closed during shutdown
            pass

    def _dispatch_loop(self) -> None:
        try:
            while True:
                events = self._selector.select(timeout=self._tick)
                for key, _ in events:
                    if key.data is None:
                        try:
                            os.read(self._waker_r, 65536)
                        except OSError:
                            pass
                    else:
                        self._drain_worker(key.data)
                self._assign_submissions()
                self._assign_races()
                # Resize *after* assignment: a worker that just received
                # work has outstanding > 0 and cannot be picked as an
                # idle-retirement victim, closing the route/retire race.
                self._resize_pool()
                for handle in list(self._pool):
                    self._flush(handle)
                with self._lock:
                    done = self._closed and not self._inflight \
                        and not self._races and not self._race_requests
                    expired = self._drain_deadline is not None \
                        and time.monotonic() > self._drain_deadline
                if done or expired:
                    break
        except Exception as exc:  # noqa: BLE001 - never die silently
            self._fail(f"dispatcher crashed: {type(exc).__name__}: {exc}")
        finally:
            self._shutdown_workers()

    def _worker_for(self, pending: _Pending) -> Optional[_WorkerHandle]:
        """Choose (and pin) the worker for a pending's design family.

        A fingerprint routes to its pinned worker while that worker is
        alive, not stopping and not busy racing; otherwise it is
        (re)pinned to the worker with the least outstanding work,
        preferring workers that are not racing.  A racing pin falls
        through just like a stopping one — ``_flush`` sends nothing to a
        racer, so honoring the pin would stall the family behind a
        borrowed SAT race of unbounded length while other workers idle,
        breaking the map-latency/race-latency independence contract.
        """
        index = self._affinity.get(pending.affinity)
        if index is not None:
            handle = self._by_index.get(index)
            if handle is not None and not handle.stopping \
                    and handle.racing is None:
                return handle
        candidates = [handle for handle in self._pool if not handle.stopping]
        if not candidates:
            return None
        handle = min(candidates,
                     key=lambda h: (h.racing is not None, h.outstanding,
                                    h.index))
        self._affinity[pending.affinity] = handle.index
        return handle

    def _assign_submissions(self) -> None:
        """Deficit-round-robin assignment from client queues to workers.

        Each rotation hands every waiting client up to ``fair_quantum``
        submissions (requests are unit-cost), so a flooder's queue depth
        cannot delay another client by more than one quantum per rotation.
        A client that received work moves to the *back* of the rotation —
        when capacity admits only one assignment per pass (a one-deep
        pipe), the next free slot still goes to whoever waited longest
        instead of the same front client every time.  FIFO within a
        client is absolute: a head blocked on a full affinity worker
        stalls only its own client (it keeps its rotation slot and the
        pass moves on).
        """
        while True:
            with self._lock:
                for client in [c for c, q in self._client_queues.items()
                               if not q]:
                    del self._client_queues[client]
                    try:
                        self._rr_order.remove(client)
                    except ValueError:  # pragma: no cover - defensive
                        pass
                rotation = list(self._rr_order)
            if not rotation:
                return
            progress = False
            for client in rotation:
                served = 0
                for _ in range(self.fair_quantum):
                    with self._lock:
                        queue = self._client_queues.get(client)
                        pending = queue[0] if queue else None
                    if pending is None:
                        break
                    handle = self._worker_for(pending)
                    # A racing handle can be chosen only when every worker
                    # is racing; keep the request in the client queue (it
                    # stays re-routable and counts as resize backlog)
                    # rather than stranding it behind the race.
                    if handle is None or handle.racing is not None \
                            or handle.outstanding >= self.max_pipe_backlog:
                        break
                    with self._lock:
                        queue.popleft()
                        self._stats["dispatched"] += 1
                    handle.queue.append(pending)
                    handle.last_active = time.monotonic()
                    served += 1
                    progress = True
                if served:
                    with self._lock:
                        try:
                            self._rr_order.remove(client)
                            self._rr_order.append(client)
                        except ValueError:  # pragma: no cover - defensive
                            pass
            if not progress:
                return

    def _resize_pool(self) -> None:
        """Grow under sustained backlog, retire the long-idle (dispatcher).

        Hysteresis on both edges: unassignable backlog must persist for
        ``scale_up_after`` seconds before a spawn (and the clock re-arms
        after each one), and a worker must sit idle for
        ``idle_retire_seconds`` before retirement.  One resize step per
        pass keeps the pool trajectory smooth and observable.
        """
        active = [handle for handle in self._pool if not handle.stopping]
        now = time.monotonic()
        with self._lock:
            backlog = sum(len(queue)
                          for queue in self._client_queues.values())
        if backlog > 0 and len(active) < self.max_workers:
            if self._backlog_since is None:
                self._backlog_since = now
            elif now - self._backlog_since >= self.scale_up_after:
                self._add_worker()
                self._backlog_since = now
        else:
            self._backlog_since = None
        if len(active) > self.min_workers:
            for handle in active:
                if handle.racing is None and handle.outstanding == 0 \
                        and now - handle.last_active \
                        >= self.idle_retire_seconds:
                    self._begin_scale_down(handle)
                    break

    def _add_worker(self) -> None:
        handle = _WorkerHandle(self._next_worker_index)
        self._next_worker_index += 1
        self._spawn(handle)
        with self._lock:
            self._pool.append(handle)
            self._by_index[handle.index] = handle
            self._stats["scale_ups"] += 1
            active = sum(1 for h in self._pool if not h.stopping)
            self._stats["pool_peak"] = max(self._stats["pool_peak"], active)

    def _begin_scale_down(self, handle: _WorkerHandle) -> None:
        """Ask an idle worker to stop; removal happens at its pipe's EOF.

        The worker answers ``stop`` with its final session statistics
        (aggregated by the normal message path) and exits; a stopping
        handle accepts no new assignments, and affinity lookups fall
        through to live workers immediately.
        """
        try:
            handle.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            self._restart(handle)
            return
        handle.stopping = True
        with self._lock:
            self._stats["scale_downs"] += 1

    def _remove_worker(self, handle: _WorkerHandle) -> None:
        """Finish a scale-down: drop the handle and its affinity pins."""
        self._retire(handle)
        with self._lock:
            try:
                self._pool.remove(handle)
            except ValueError:  # pragma: no cover - already removed
                pass
            self._by_index.pop(handle.index, None)
        for fingerprint in [fp for fp, idx in self._affinity.items()
                            if idx == handle.index]:
            del self._affinity[fingerprint]
        # A stopping worker had outstanding == 0 by construction, but a
        # crash racing the stop could leave owed work — never drop it.
        if handle.sent or handle.queue:  # pragma: no cover - defensive
            self._requeue_orphans(handle)

    def _requeue_orphans(self, handle: _WorkerHandle) -> None:
        """Push a dead handle's owed work back through the fair scheduler."""
        orphans = list(handle.sent.values())
        orphans.extend(handle.queue)
        handle.sent.clear()
        handle.queue.clear()
        with self._lock:
            # appendleft reverses, so walk newest-first to land the oldest
            # orphan at the head of its client queue (FIFO within client).
            for pending in reversed(orphans):
                client = pending.waiters[0][2] if pending.waiters else ""
                queue = self._client_queues.get(client)
                if queue is None:
                    queue = deque()
                    self._client_queues[client] = queue
                    self._rr_order.append(client)
                queue.appendleft(pending)
                self._stats["dispatched"] -= 1

    def _flush(self, handle: _WorkerHandle) -> None:
        """Write queued requests to the worker, up to the pipe backlog cap.

        Racing and stopping workers get nothing: a racer's pipe must stay
        silent so ``conn.poll`` can serve as its cancellation hook, and a
        stopping worker is already past its last request.
        """
        if handle.stopping or handle.racing is not None:
            return
        while handle.queue and len(handle.sent) < self.max_pipe_backlog:
            pending = handle.queue[0]
            try:
                handle.conn.send(("request", pending.request_id,
                                  pending.request))
            except (BrokenPipeError, OSError):
                self._restart(handle)
                return
            handle.queue.popleft()
            handle.sent[pending.request_id] = pending

    def _drain_worker(self, handle: _WorkerHandle) -> None:
        try:
            while handle.conn.poll():
                message = handle.conn.recv()
                self._handle_message(handle, message)
        except (EOFError, OSError):
            if handle.stopping:
                # The scale-down handshake's clean ending: stats were
                # collected above, the worker exited, the pipe hit EOF.
                self._remove_worker(handle)
            else:
                self._restart(handle)

    def _handle_message(self, handle: _WorkerHandle, message) -> None:
        kind = message[0]
        if kind == "stats":
            _, cache_stats, wins = message
            self._worker_cache_stats.update(cache_stats)
            self._worker_portfolio_wins.update(wins)
            return
        if kind == "race_result":
            _, race_id, name, result, error = message
            handle.racing = None
            handle.last_active = time.monotonic()
            race = self._races.get(race_id)
            if race is not None:
                self._finish_race_member(race, name, result, error)
            return
        _, request_id, payload = message
        pending = handle.sent.pop(request_id, None)
        if pending is None:  # a restarted worker's stale reply
            return
        handle.served += 1
        handle.last_active = time.monotonic()
        if kind == "error":
            with self._lock:
                self._inflight.pop(pending.key, None)
                self._stats["errors"] += 1
                self._release_slots(pending)
            error = RuntimeError(payload)
            for future, _, _ in pending.waiters:
                future.set_exception(error)
            return
        now = time.monotonic()
        caching = self._front_cache is not None \
            and pending.request.use_cache is not False \
            and payload["outcome"] != TIMEOUT_STATUS
        with self._lock:
            # Publish to the cache *before* dropping the in-flight entry:
            # a submit racing this completion must land on one or the
            # other, never dispatch a duplicate solve.
            if caching:
                self._front_cache.put(pending.key, payload)
            self._inflight.pop(pending.key, None)
            self._stats["completed"] += 1
            if payload.get("cache_hit"):
                self._stats["worker_cache_hits"] += 1
            self._release_slots(pending)
            solve_seconds = float(payload.get("time_seconds") or 0.0)
            if self._solve_ema is None:
                self._solve_ema = solve_seconds
            else:
                self._solve_ema = 0.2 * solve_seconds + 0.8 * self._solve_ema
        # The first waiter is the request that actually solved; coalesced
        # duplicates are warm serves, exactly as the session cache would
        # have treated them had they arrived sequentially.
        first, *rest = pending.waiters
        first[0].set_result(_restamp(payload, first[1],
                                     cache_hit=bool(payload.get("cache_hit")),
                                     time_seconds=payload["time_seconds"]))
        for future, request, _ in rest:
            future.set_result(_restamp(payload, request, cache_hit=True,
                                       time_seconds=now - pending.submitted_at))

    # ------------------------------------------------------------------ #
    # Worker lifecycle
    # ------------------------------------------------------------------ #
    def _spawn(self, handle: _WorkerHandle, context=None) -> None:
        context = context or _service_context()
        parent_conn, child_conn = context.Pipe(duplex=True)
        process = context.Process(target=_worker_main,
                                  args=(self.spec, child_conn),
                                  name=f"lakeroad-worker-{handle.index}",
                                  daemon=True)
        process.start()
        child_conn.close()
        handle.process = process
        handle.conn = parent_conn
        handle.last_active = time.monotonic()
        self._selector.register(parent_conn, selectors.EVENT_READ,
                                data=handle)

    def _retire(self, handle: _WorkerHandle, kill_timeout: float = 5.0) -> None:
        try:
            self._selector.unregister(handle.conn)
        except (KeyError, ValueError, OSError):
            # Not registered, or already retired once (the connection's fd
            # is gone) — retiring is idempotent.
            pass
        try:
            handle.conn.close()
        except OSError:
            pass
        process = handle.process
        if process is not None and process.is_alive():
            process.terminate()
            process.join(kill_timeout)
            if process.is_alive():  # pragma: no cover - stuck in C code
                process.kill()
                process.join(kill_timeout)

    def _restart(self, handle: _WorkerHandle) -> None:
        """Replace a dead worker; nothing it owed is dropped."""
        if handle.racing is not None:
            race = self._races.get(handle.racing)
            handle.racing = None
            if race is not None:
                dropped = [name for name, h in race.members.items()
                           if h is handle]
                for name in dropped:
                    # A crashed racer counts as an unknown answer.
                    self._finish_race_member(race, name, None,
                                             "worker died mid-race")
        with self._lock:
            stopping = self._closed and not self._inflight
            exhausted = not stopping and self._restarts_left <= 0
            if not stopping and not exhausted:
                self._restarts_left -= 1
                self._stats["worker_restarts"] += 1
        if exhausted:
            # Retire the dead pipe first or its EOF-ready fd would spin the
            # selector loop forever.
            self._retire(handle)
            handle.sent.clear()
            handle.queue.clear()
            self._fail("worker crashed more times than the restart budget "
                       "allows (is the SessionSpec buildable?)")
            return
        self._retire(handle)
        requeued = deque(handle.sent.values())
        requeued.extend(handle.queue)
        handle.sent.clear()
        handle.queue = requeued
        handle.stopping = False
        self._spawn(handle)
        self._flush(handle)

    def _fail(self, reason: str) -> None:
        """Terminal failure: refuse new work, fail everything queued."""
        with self._lock:
            self._failed = reason
            pendings = list(self._inflight.values())
            self._inflight.clear()
            self._client_queues.clear()
            self._rr_order.clear()
            for pending in pendings:
                self._release_slots(pending)
        error = RuntimeError(f"service failed: {reason}")
        for pending in pendings:
            for future, _, _ in pending.waiters:
                if not future.done():
                    future.set_exception(error)
        self._abort_races()
        warnings.warn(f"lakeroad service: {reason}", RuntimeWarning,
                      stacklevel=2)

    def _shutdown_workers(self, timeout: float = 10.0) -> None:
        deadline = time.monotonic() + timeout
        # Anything still pending past the drain deadline fails loudly
        # rather than hanging its callers forever.
        with self._lock:
            leftovers = list(self._inflight.values())
            self._inflight.clear()
            self._client_queues.clear()
            self._rr_order.clear()
            for pending in leftovers:
                self._release_slots(pending)
        if leftovers:
            error = RuntimeError("service shut down before this request "
                                 "completed (drain timeout)")
            for pending in leftovers:
                for future, _, _ in pending.waiters:
                    if not future.done():
                        future.set_exception(error)
        self._abort_races()
        for handle in self._pool:
            try:
                handle.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                continue
        for handle in self._pool:
            # Collect the worker's final session statistics (sent as its
            # reply to "stop"), then let it exit.
            try:
                while handle.conn.poll(max(0.0, deadline - time.monotonic())):
                    self._handle_message(handle, handle.conn.recv())
            except (EOFError, OSError):
                pass
        for handle in self._pool:
            self._retire(handle)

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        """Front-door counters; ``warm_hit_rate`` is the share of requests
        served without a fresh solve (front-door hits, coalesced
        duplicates, and worker-session cache hits).  The QoS block adds
        pool-size, rejection, resize and per-client counters."""
        with self._lock:
            stats = dict(self._stats)
            stats["pending"] = self._pending_total
            stats["clients"] = {client: dict(counter)
                                for client, counter in
                                self._client_stats.items()}
            pool = list(self._pool)
        for key in ("requests", "coalesced", "front_memory_hits",
                    "front_disk_hits", "dispatched", "completed",
                    "worker_cache_hits", "worker_restarts", "errors",
                    "rejections", "scale_ups", "scale_downs", "races",
                    "race_fallbacks"):
            stats.setdefault(key, 0)
        warm = (stats["coalesced"] + stats["front_memory_hits"]
                + stats["front_disk_hits"] + stats["worker_cache_hits"])
        stats["warm_served"] = warm
        stats["warm_hit_rate"] = warm / stats["requests"] \
            if stats["requests"] else 0.0
        stats["workers"] = sum(1 for handle in pool if not handle.stopping)
        stats["min_workers"] = self.min_workers
        stats["max_workers"] = self.max_workers
        stats["in_flight"] = len(self._inflight)
        stats["worker_requests"] = [handle.served for handle in pool]
        return stats

    def affinity_snapshot(self) -> Dict[str, int]:
        """Design-fingerprint → worker-index routing table (a copy)."""
        return dict(self._affinity)

    def worker_cache_stats(self) -> Dict[str, int]:
        """Summed worker-session cache counters (complete after close)."""
        return dict(self._worker_cache_stats)

    def worker_portfolio_wins(self) -> Dict[str, int]:
        return dict(self._worker_portfolio_wins)

    def close(self, timeout: float = 30.0) -> None:
        """Drain in-flight requests, stop workers cleanly, release pipes.

        Requests still running when ``timeout`` expires fail with a
        RuntimeError instead of hanging their callers.  Safe to call more
        than once.
        """
        with self._lock:
            if self._closed:
                already = True
            else:
                already = False
                self._closed = True
                self._drain_deadline = time.monotonic() + timeout
        if not already:
            self._wake()
        self._thread.join(timeout + 15.0)
        if self._disk is not None:
            self._disk.close()
            self._disk = None
        try:
            os.close(self._waker_w)
            os.close(self._waker_r)
        except OSError:
            pass
        try:
            self._selector.close()
        except (OSError, RuntimeError):  # pragma: no cover
            pass

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ServicePortfolio(SatPortfolio):
    """A SAT portfolio whose concurrent races run on idle service workers.

    ``portfolio="process"`` used to fork a fresh process per solve call
    (:class:`~repro.sat.portfolio.ProcessPortfolio`); this variant borrows
    the already-warm service pool instead — no fork per query, true
    process parallelism, and the same first-definitive-answer semantics.
    When no pool worker is idle the race degrades gracefully to the
    in-process thread race, so callers never block behind map traffic.
    """

    def __init__(self, service: SolverService,
                 members: Optional[List] = None) -> None:
        super().__init__(members=members, concurrent=True)
        self.service = service

    def _solve_concurrent(self, cnf, deadline: Optional[float],
                          assumptions: Sequence[int]) -> Tuple[SatResult, str]:
        outcome = self.service.race_cnf(cnf, deadline, tuple(assumptions),
                                        self.member_names)
        if outcome is None:
            return super()._solve_concurrent(cnf, deadline, assumptions)
        result, name = outcome
        if name != "none":
            self._record_win(name)
        return result, name


# --------------------------------------------------------------------------- #
# Socket layer: newline-delimited JSON over a unix domain socket
# --------------------------------------------------------------------------- #
def _error_response(request_id, message: str) -> bytes:
    return (json.dumps({"id": request_id, "ok": False,
                        "error": message}) + "\n").encode()


def _overloaded_response(request_id, retry_after_ms: int) -> bytes:
    """The structured backpressure reply: the connection stays live, the
    client learns when a retry is likely to be admitted."""
    return (json.dumps({"id": request_id, "ok": False,
                        "error": "overloaded",
                        "retry_after_ms": int(retry_after_ms)})
            + "\n").encode()


async def _readline_limited(reader) -> Tuple[bytes, bool]:
    """``reader.readline()`` that survives an oversized line.

    Returns ``(line, overrun)``.  A line exceeding the stream limit makes
    ``readline`` raise (``LimitOverrunError`` surfaced as ``ValueError``)
    and clear the buffer at an arbitrary point, which can also swallow the
    *next* legitimate request; propagating it kills the connection.  This
    drains the oversized line through its terminating newline — discarding
    it chunk by chunk without ever buffering past the limit — and reports
    ``(b"", True)`` so the caller can answer with a structured JSON error
    and keep serving the connection.
    """
    overrun = False
    while True:
        try:
            line = await reader.readuntil(b"\n")
        except asyncio.IncompleteReadError as exc:
            # EOF: mid-drain the partial tail is garbage, otherwise an
            # unterminated final line is returned as readline would.
            return (b"" if overrun else exc.partial), overrun
        except asyncio.LimitOverrunError as exc:
            # ``consumed`` bytes are known not to contain the newline;
            # discard exactly those and look again (readuntil leaves the
            # buffer intact on overrun, so nothing is lost).
            overrun = True
            await reader.readexactly(max(1, exc.consumed))
            continue
        if overrun:
            return b"", True  # the tail of the oversized line
        return line, False


async def _serve_line(service: SolverService, line: bytes, writer,
                      write_lock: asyncio.Lock,
                      client_id: str = "") -> None:
    loop = asyncio.get_running_loop()
    request_id = None
    try:
        payload = json.loads(line)
        if not isinstance(payload, dict):
            raise ValueError("request must be a JSON object")
        request_id = payload.get("id")
        op = payload.get("op", "map")
        # ping/stats are the control plane: answered inline, never queued
        # behind map traffic and never subject to admission caps.
        if op == "ping":
            response = {"id": request_id, "ok": True, "pong": True}
        elif op == "stats":
            response = {"id": request_id, "ok": True,
                        "stats": service.stats()}
        elif op == "map":
            use_cache = payload.get("use_cache")
            request = MapRequest(
                verilog=payload["verilog"],
                template=payload.get("template", "dsp"),
                arch=payload.get("arch", "xilinx-ultrascale-plus"),
                module_name=payload.get("module"),
                timeout_seconds=payload.get("timeout"),
                extra_cycles=int(payload.get("extra_cycles", 1)),
                validate=bool(payload.get("validate", False)),
                use_cache=None if use_cache is None else bool(use_cache),
                benchmark=payload.get("benchmark", ""),
                form=payload.get("form", ""),
                width=int(payload.get("width", 0)),
                stages=int(payload.get("stages", 0)),
                signed=bool(payload.get("signed", False)),
            )
            client = str(payload.get("client") or client_id)
            # submit() parses and fingerprints the design — CPU work that
            # belongs on an executor thread, not the event loop.
            future = await loop.run_in_executor(
                None, partial(service.submit, request, client=client))
            record = await asyncio.wrap_future(future)
            response = {"id": request_id, "ok": True,
                        "record": record.to_dict()}
        else:
            raise ValueError(f"unknown op {op!r}")
        data = (json.dumps(response) + "\n").encode()
    except ServiceOverloaded as exc:
        data = _overloaded_response(request_id, exc.retry_after_ms)
    except Exception as exc:  # noqa: BLE001 - reported to the client
        data = _error_response(request_id, f"{type(exc).__name__}: {exc}")
    async with write_lock:
        try:
            writer.write(data)
            await writer.drain()
        except (ConnectionError, OSError):
            pass


async def _handle_client(service: SolverService, reader, writer,
                         draining: asyncio.Event,
                         limit: int = DEFAULT_STREAM_LIMIT,
                         client_id: str = "") -> None:
    """One client connection: pipelined requests, responses as they finish.

    On shutdown (``draining`` set) the handler stops reading new requests
    but every request already accepted still gets its response.  A request
    line over the stream limit gets a structured error response (id
    ``None`` — the line never parsed) instead of a dead socket.

    ``client_id`` is the connection's default fair-scheduling tag; a
    request may override it with an explicit ``"client"`` field (sweep
    workers funnelling many logical clients through one connection).
    """
    write_lock = asyncio.Lock()
    pending: set = set()
    drain_wait = asyncio.ensure_future(draining.wait())
    try:
        while True:
            read_task = asyncio.ensure_future(_readline_limited(reader))
            done, _ = await asyncio.wait(
                {read_task, drain_wait},
                return_when=asyncio.FIRST_COMPLETED)
            if read_task not in done:
                read_task.cancel()
                break
            line, overrun = read_task.result()
            if overrun:
                async with write_lock:
                    try:
                        writer.write(_error_response(
                            None, f"request line exceeded the {limit}-byte "
                                  f"stream limit and was discarded"))
                        await writer.drain()
                    except (ConnectionError, OSError):
                        break
                continue
            if not line:
                break
            if line.strip():
                task = asyncio.ensure_future(
                    _serve_line(service, line, writer, write_lock, client_id))
                pending.add(task)
                task.add_done_callback(pending.discard)
    finally:
        drain_wait.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _serve_main(service: SolverService, socket_path,
                      ready: Optional[threading.Event],
                      handle_signals: bool,
                      stop_event: Optional[asyncio.Event] = None,
                      limit: int = DEFAULT_STREAM_LIMIT) -> None:
    socket_path = Path(socket_path)
    if socket_path.exists():
        socket_path.unlink()
    draining = asyncio.Event()
    stop = stop_event if stop_event is not None else asyncio.Event()
    clients: set = set()
    connection_ids = itertools.count(1)

    async def handler(reader, writer):
        task = asyncio.current_task()
        clients.add(task)
        client_id = f"conn-{next(connection_ids)}"
        try:
            await _handle_client(service, reader, writer, draining, limit,
                                 client_id)
        finally:
            clients.discard(task)

    server = await asyncio.start_unix_server(handler, path=str(socket_path),
                                             limit=limit)
    loop = asyncio.get_running_loop()
    if handle_signals:
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, stop.set)
    if ready is not None:
        ready.set()
    try:
        await stop.wait()
        # Graceful drain: no new connections, no new requests on existing
        # ones, every accepted request answered before the socket dies.
        server.close()
        await server.wait_closed()
        draining.set()
        if clients:
            await asyncio.gather(*list(clients), return_exceptions=True)
    finally:
        if handle_signals:
            for signum in (signal.SIGINT, signal.SIGTERM):
                loop.remove_signal_handler(signum)
        try:
            socket_path.unlink()
        except OSError:
            pass


def run_server(service: SolverService, socket_path=DEFAULT_SOCKET, *,
               ready: Optional[threading.Event] = None,
               handle_signals: bool = True,
               limit: int = DEFAULT_STREAM_LIMIT) -> None:
    """Serve until SIGINT/SIGTERM, then drain and return (blocking)."""
    asyncio.run(_serve_main(service, socket_path, ready, handle_signals,
                            limit=limit))


class ServerThread:
    """An in-process server for tests and benchmarks.

    Runs the asyncio socket layer on a background thread; ``close()``
    triggers the same graceful drain as a signal would.
    """

    def __init__(self, service: SolverService,
                 socket_path=DEFAULT_SOCKET,
                 limit: int = DEFAULT_STREAM_LIMIT) -> None:
        self.service = service
        self.socket_path = Path(socket_path)
        self.limit = limit
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = threading.Thread(target=self._run,
                                        name="lakeroad-serve",
                                        daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("server thread failed to start")

    def _run(self) -> None:
        async def main():
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            await _serve_main(self.service, self.socket_path, self._ready,
                              handle_signals=False, stop_event=self._stop,
                              limit=self.limit)

        asyncio.run(main())

    def close(self) -> None:
        if self._loop is not None and self._stop is not None \
                and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30.0)

    def __enter__(self) -> "ServerThread":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ServiceClient:
    """A pipelining client: many requests in flight on one connection.

    Responses are matched to requests by id on a reader thread, so callers
    can fire a burst of ``submit`` calls and collect futures — the pattern
    the serve benchmarks and the CI smoke job use to saturate the pool.

    ``address`` is a unix-socket path (string — the historical form) or a
    ``(host, port)`` tuple for the TCP servers the distributed sweep runs.
    """

    def __init__(self, address=DEFAULT_SOCKET,
                 connect_timeout: float = 10.0) -> None:
        if isinstance(address, tuple):
            self.address: Any = (str(address[0]), int(address[1]))
            family = socket.AF_INET
        else:
            self.address = str(address)
            family = socket.AF_UNIX
        self.socket_path = str(address)  # historical attribute name
        deadline = time.monotonic() + connect_timeout
        while True:
            sock = socket.socket(family, socket.SOCK_STREAM)
            try:
                sock.connect(self.address)
                break
            except OSError:
                sock.close()
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.05)
        if family == socket.AF_INET:
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - platform quirk
                pass
        self._sock = sock
        self._rfile = sock.makefile("rb")
        self._lock = threading.Lock()
        #: Serializes sendall: concurrent submitters (e.g. a worker's
        #: heartbeat thread next to its result uploads) must not
        #: interleave partial writes inside one line.
        self._send_lock = threading.Lock()
        self._pending: Dict[int, Future] = {}
        self._next_id = 0
        self._closed = False
        self._reader = threading.Thread(target=self._read_loop,
                                        name="lakeroad-client-reader",
                                        daemon=True)
        self._reader.start()

    def _read_loop(self) -> None:
        try:
            for line in self._rfile:
                if not line.strip():
                    continue
                try:
                    message = json.loads(line)
                except ValueError:
                    continue
                with self._lock:
                    future = self._pending.pop(message.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(message)
        except (OSError, ValueError):
            pass
        finally:
            with self._lock:
                leftovers = list(self._pending.values())
                self._pending.clear()
            error = ConnectionError("server closed the connection")
            for future in leftovers:
                if not future.done():
                    future.set_exception(error)

    def submit(self, payload: Dict[str, Any]) -> "Future[dict]":
        """Send one request; the future resolves to the response dict."""
        future: "Future[dict]" = Future()
        with self._lock:
            if self._closed:
                raise RuntimeError("client is closed")
            self._next_id += 1
            request_id = self._next_id
            self._pending[request_id] = future
        message = dict(payload)
        message["id"] = request_id
        try:
            with self._send_lock:
                self._sock.sendall((json.dumps(message) + "\n").encode())
        except OSError as exc:
            with self._lock:
                self._pending.pop(request_id, None)
            future.set_exception(exc)
        return future

    def request(self, payload: Dict[str, Any],
                timeout: Optional[float] = None,
                retry_overloaded: int = 0) -> Dict[str, Any]:
        """One request/response round trip.

        ``retry_overloaded`` bounds how many times a structured
        ``overloaded`` rejection is retried, sleeping the server's
        ``retry_after_ms`` hint between attempts; ``timeout`` is the
        overall deadline across every attempt, so a saturated server
        surfaces as the usual ``FutureTimeoutError`` rather than an
        unbounded retry loop.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        attempt = 0
        while True:
            remaining = None if deadline is None \
                else max(0.0, deadline - time.monotonic())
            response = self.submit(payload).result(timeout=remaining)
            if not (isinstance(response, dict)
                    and response.get("error") == "overloaded"):
                return response
            if attempt >= retry_overloaded:
                return response
            attempt += 1
            delay = min(float(response.get("retry_after_ms", 100)) / 1000.0,
                        2.0)
            if deadline is not None:
                delay = min(delay, max(0.0, deadline - time.monotonic()))
            time.sleep(delay)

    def map_verilog(self, verilog: str, timeout: Optional[float] = None,
                    retry_overloaded: int = 0, **fields) -> Dict[str, Any]:
        payload = {"op": "map", "verilog": verilog}
        payload.update(fields)
        return self.request(payload, timeout=timeout,
                            retry_overloaded=retry_overloaded)

    def stats(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        response = self.request({"op": "stats"}, timeout=timeout)
        if not response.get("ok"):
            raise RuntimeError(response.get("error", "stats failed"))
        return response["stats"]

    def ping(self, timeout: Optional[float] = None) -> bool:
        """Control-plane liveness probe (bypasses admission entirely)."""
        response = self.request({"op": "ping"}, timeout=timeout)
        return bool(response.get("ok")) and bool(response.get("pong"))

    def close(self) -> None:
        with self._lock:
            self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._rfile.close()
            self._sock.close()
        except OSError:
            pass
        self._reader.join(timeout=5.0)

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
