"""The unified mapping-engine layer.

* :mod:`repro.engine.budget`   -- the single Budget/Outcome model: one
  definition of the ``sat``/``unsat``/``unknown`` and
  ``success``/``unsat``/``timeout`` vocabularies and of the
  per-architecture synthesis timeouts.
* :mod:`repro.engine.backends` -- the pluggable solver-backend registry the
  SAT portfolio races.
* :mod:`repro.engine.cache`    -- the keyed, memoizing synthesis cache.
* :mod:`repro.engine.diskcache`-- the persistent (sqlite) cache tier shared
  across processes and runs.
* :mod:`repro.engine.session`  -- :class:`MappingSession`, which owns the
  whole map-one-design lifecycle (§2.2) and the shared state above.
* :mod:`repro.engine.parallel` -- sharded sweeps over worker processes,
  each owning its own session.
* :mod:`repro.engine.service`  -- the long-lived warm worker pool behind
  ``lakeroad serve``: request dedup, front-door caching, affinity routing
  and crash recovery over persistent sessions.
* :mod:`repro.engine.distributed` -- cross-machine sweeps: a TCP
  coordinator serving shards under work-stealing leases, workers built
  from the wire-form session spec, exactly-once deterministic merge.

Everything except ``budget`` and ``backends`` is imported lazily: the
cache, session and parallel layers depend on the core/synthesis/harness
stack, which in turn imports :mod:`repro.engine.budget`, and eager
re-export would create an import cycle (e.g. ``import repro.smt`` used to
fail when it was the very first ``repro`` import).
"""

from repro.engine.backends import (
    SolverBackend,
    available_backends,
    backend_by_name,
    default_backend_names,
    register_backend,
    unregister_backend,
)
from repro.engine.budget import (
    DEFAULT_TIMEOUTS,
    Budget,
    laptop_timeouts,
    mapping_status,
    timeout_for,
)
__all__ = [
    "Budget",
    "DEFAULT_TIMEOUTS",
    "laptop_timeouts",
    "mapping_status",
    "timeout_for",
    "SolverBackend",
    "register_backend",
    "unregister_backend",
    "backend_by_name",
    "available_backends",
    "default_backend_names",
    # Lazily resolved (see __getattr__):
    "SynthesisCache",
    "program_fingerprint",
    "DiskSynthesisCache",
    "TieredSynthesisCache",
    "LakeroadResult",
    "MappingSession",
    "default_session",
    "reset_default_session",
    "SessionSpec",
    "SweepResult",
    "run_sweep",
    "run_lakeroad_parallel",
    "MapRequest",
    "SolverService",
    "ServiceClient",
    "ServerThread",
    "run_server",
    "SweepCoordinator",
    "DistributedSweepResult",
    "run_worker",
    "run_distributed_sweep",
]

_CACHE_EXPORTS = ("SynthesisCache", "program_fingerprint")
_DISKCACHE_EXPORTS = ("DiskSynthesisCache", "TieredSynthesisCache")
_SESSION_EXPORTS = ("LakeroadResult", "MappingSession", "default_session",
                    "reset_default_session")
_PARALLEL_EXPORTS = ("SessionSpec", "SweepResult", "run_sweep",
                     "run_lakeroad_parallel")
_SERVICE_EXPORTS = ("MapRequest", "SolverService", "ServiceClient",
                    "ServerThread", "run_server")
_DISTRIBUTED_EXPORTS = ("SweepCoordinator", "DistributedSweepResult",
                        "run_worker", "run_distributed_sweep")


def __getattr__(name):
    if name in _CACHE_EXPORTS:
        from repro.engine import cache

        return getattr(cache, name)
    if name in _DISKCACHE_EXPORTS:
        from repro.engine import diskcache

        return getattr(diskcache, name)
    if name in _SESSION_EXPORTS:
        from repro.engine import session

        return getattr(session, name)
    if name in _PARALLEL_EXPORTS:
        from repro.engine import parallel

        return getattr(parallel, name)
    if name in _SERVICE_EXPORTS:
        from repro.engine import service

        return getattr(service, name)
    if name in _DISTRIBUTED_EXPORTS:
        from repro.engine import distributed

        return getattr(distributed, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
