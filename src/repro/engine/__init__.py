"""The unified mapping-engine layer.

* :mod:`repro.engine.budget`   -- the single Budget/Outcome model: one
  definition of the ``sat``/``unsat``/``unknown`` and
  ``success``/``unsat``/``timeout`` vocabularies and of the
  per-architecture synthesis timeouts.
* :mod:`repro.engine.backends` -- the pluggable solver-backend registry the
  SAT portfolio races.
* :mod:`repro.engine.cache`    -- the keyed, memoizing synthesis cache.
* :mod:`repro.engine.session`  -- :class:`MappingSession`, which owns the
  whole map-one-design lifecycle (§2.2) and the shared state above.

``session`` is imported lazily: it depends on the synthesis stack, which in
turn imports :mod:`repro.engine.budget`, and eager re-export would create
an import cycle.
"""

from repro.engine.backends import (
    SolverBackend,
    available_backends,
    backend_by_name,
    default_backend_names,
    register_backend,
    unregister_backend,
)
from repro.engine.budget import (
    DEFAULT_TIMEOUTS,
    Budget,
    laptop_timeouts,
    mapping_status,
    timeout_for,
)
from repro.engine.cache import SynthesisCache, program_fingerprint

__all__ = [
    "Budget",
    "DEFAULT_TIMEOUTS",
    "laptop_timeouts",
    "mapping_status",
    "timeout_for",
    "SolverBackend",
    "register_backend",
    "unregister_backend",
    "backend_by_name",
    "available_backends",
    "default_backend_names",
    "SynthesisCache",
    "program_fingerprint",
    # Lazily resolved (see __getattr__):
    "LakeroadResult",
    "MappingSession",
    "default_session",
    "reset_default_session",
]

_SESSION_EXPORTS = ("LakeroadResult", "MappingSession", "default_session",
                    "reset_default_session")


def __getattr__(name):
    if name in _SESSION_EXPORTS:
        from repro.engine import session

        return getattr(session, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
