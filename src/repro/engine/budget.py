"""The single source of truth for time budgets and outcome statuses.

Before this module existed the repository carried three divergent copies of
the same information: ``lakeroad.DEFAULT_TIMEOUTS``, the defaults inside
``harness.runner.ExperimentConfig`` and the ad-hoc absolute deadlines
threaded through ``smt.cegis.synthesize``.  Everything now derives from the
two tables and the :class:`Budget` object defined here.

Status vocabulary
-----------------

Synthesis-level statuses (``f_lr`` / CEGIS, §3.1):

* ``sat``     -- a completion of the sketch was found,
* ``unsat``   -- no completion exists,
* ``unknown`` -- the budget expired before a definitive answer.

Mapping-level statuses (one ``lakeroad`` invocation, §2.2):

* ``success`` -- a structural implementation was produced,
* ``unsat``   -- the sketch provably cannot implement the design,
* ``timeout`` -- synthesis did not finish within the budget.

:func:`mapping_status` is the one conversion between the two vocabularies.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

__all__ = [
    "SAT", "UNSAT", "UNKNOWN",
    "SUCCESS", "TIMEOUT",
    "SYNTHESIS_STATUSES", "MAPPING_STATUSES",
    "DEFAULT_TIMEOUTS", "LAPTOP_SCALE", "FALLBACK_TIMEOUT",
    "laptop_timeouts", "timeout_for", "mapping_status",
    "Budget",
]

# --------------------------------------------------------------------------- #
# Statuses
# --------------------------------------------------------------------------- #
SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"

SUCCESS = "success"
TIMEOUT = "timeout"

SYNTHESIS_STATUSES = frozenset({SAT, UNSAT, UNKNOWN})
MAPPING_STATUSES = frozenset({SUCCESS, UNSAT, TIMEOUT})


def mapping_status(synthesis_status: str) -> str:
    """Convert an ``f_lr`` status into a mapping (``lakeroad``) status."""
    if synthesis_status == SAT:
        return SUCCESS
    if synthesis_status == UNSAT:
        return UNSAT
    if synthesis_status == UNKNOWN:
        return TIMEOUT
    raise ValueError(f"unknown synthesis status {synthesis_status!r}")


# --------------------------------------------------------------------------- #
# Timeouts
# --------------------------------------------------------------------------- #
#: Per-architecture synthesis timeouts used by the paper's evaluation
#: (seconds): Xilinx 120, Lattice 40, Intel 20 (§5.1).  SOFA, which the
#: paper maps with the LUT templates only, gets the Lattice budget.
DEFAULT_TIMEOUTS: Dict[str, float] = {
    "xilinx-ultrascale-plus": 120.0,
    "lattice-ecp5": 40.0,
    "intel-cyclone10lp": 20.0,
    "sofa": 40.0,
}

#: The laptop-scale harness halves the paper's budgets (see EXPERIMENTS.md).
LAPTOP_SCALE = 0.5

#: Budget for architectures not in the table (e.g. user-supplied files).
FALLBACK_TIMEOUT = 60.0


def laptop_timeouts() -> Dict[str, float]:
    """The default harness budgets: the paper's timeouts at laptop scale."""
    return {name: seconds * LAPTOP_SCALE for name, seconds in DEFAULT_TIMEOUTS.items()}


def timeout_for(architecture: str,
                overrides: Optional[Mapping[str, float]] = None,
                default: float = FALLBACK_TIMEOUT) -> float:
    """The synthesis budget for one architecture.

    ``overrides`` (e.g. an experiment configuration) win over the paper
    table; unknown architectures fall back to ``default``.
    """
    if overrides is not None and architecture in overrides:
        return overrides[architecture]
    return DEFAULT_TIMEOUTS.get(architecture, default)


# --------------------------------------------------------------------------- #
# Budget
# --------------------------------------------------------------------------- #
@dataclass
class Budget:
    """A wall-clock budget for one mapping attempt.

    A budget is created from a per-architecture timeout (or an explicit
    override), *started* when work begins, and handed down through the
    session → synthesis → CEGIS → solver layers, each of which only ever
    reads :attr:`deadline` / :meth:`expired`.  ``timeout_seconds=None``
    means unlimited.
    """

    timeout_seconds: Optional[float] = None
    started_at: Optional[float] = None

    @classmethod
    def for_architecture(cls, architecture: str,
                         override: Optional[float] = None,
                         overrides: Optional[Mapping[str, float]] = None) -> "Budget":
        """The canonical budget for an architecture.

        ``override`` is a single explicit timeout (the CLI's ``--timeout``);
        ``overrides`` a per-architecture table (an experiment config).
        """
        if override is not None:
            return cls(timeout_seconds=float(override))
        return cls(timeout_seconds=timeout_for(architecture, overrides))

    @classmethod
    def unlimited(cls) -> "Budget":
        return cls(timeout_seconds=None)

    def start(self) -> "Budget":
        """Start the clock (idempotent); returns ``self`` for chaining."""
        if self.started_at is None:
            self.started_at = time.monotonic()
        return self

    @property
    def started(self) -> bool:
        return self.started_at is not None

    @property
    def deadline(self) -> Optional[float]:
        """Absolute ``time.monotonic`` cutoff, or None when unlimited."""
        if self.timeout_seconds is None:
            return None
        base = self.started_at if self.started_at is not None else time.monotonic()
        return base + self.timeout_seconds

    def remaining(self) -> Optional[float]:
        deadline = self.deadline
        if deadline is None:
            return None
        return deadline - time.monotonic()

    def expired(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0

    def elapsed(self) -> float:
        if self.started_at is None:
            return 0.0
        return time.monotonic() - self.started_at

    def key(self) -> Optional[float]:
        """The cache-key component of this budget (the configured timeout)."""
        return self.timeout_seconds
