"""The mapping engine: one session object owns the map-one-design lifecycle.

A :class:`MappingSession` ties together everything a ``lakeroad``
invocation needs — the vendor primitive library, the solver portfolio, the
synthesis cache and the budget policy — and exposes ``map_design`` /
``map_verilog``.  The three-step flow of §2.2 (sketch generation → program
synthesis → compilation) lives in :meth:`MappingSession.map_design`;
``repro.lakeroad`` keeps the historical functional API as thin wrappers
over a default session.

Sessions replace the old module-level ``_SHARED_LIBRARY`` singleton: the
library (and every other stateful component) is owned and injectable, so
harness sweeps can share one warm session while tests build isolated ones.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.arch import ArchDescription, load_architecture
from repro.core.interp import interpret
from repro.core.lang import Program
from repro.core.lower import LoweredDesign, ResourceCount, lower_to_verilog
from repro.core.sketch_gen import DesignInterface, SketchGenerationError, generate_sketch
from repro.core.synthesis import SynthesisOutcome, f_lr_star
from repro.engine import budget as budget_mod
from repro.engine.budget import Budget
from repro.engine.cache import SynthesisCache, program_fingerprint
from repro.engine.diskcache import DiskSynthesisCache, TieredSynthesisCache
from repro.hdl.behavioral import BehavioralDesign, verilog_to_behavioral
from repro.sat.portfolio import SatPortfolio, make_portfolio
from repro.smt.solver import SmtSolver
from repro.vendor.library import PrimitiveLibrary

__all__ = ["LakeroadResult", "MappingSession", "synthesis_cache_key",
           "default_session", "reset_default_session"]


def synthesis_cache_key(design: BehavioralDesign, architecture_name: str,
                        template: str, budget: Budget, extra_cycles: int,
                        validate: bool, random_probes: int):
    """The canonical synthesis-cache key for one mapping request.

    This is the single definition of what makes two mapping requests "the
    same result": the design's canonical program fingerprint, the target
    architecture/template, the configured budget, the BMC window, the
    validation flag and the probe budget (which changes the CEGIS
    trajectory).  :meth:`MappingSession.map_design` keys its cache with it,
    and the service front door (:mod:`repro.engine.service`) derives the
    identical key for its duplicate-coalescing and pre-dispatch cache
    check — the two must never diverge, or the front door would serve a
    result the session would not have.
    """
    return SynthesisCache.key(program_fingerprint(design.program),
                              architecture_name, template, budget.key(),
                              extra_cycles, validate, random_probes)


@dataclass
class LakeroadResult:
    """Outcome of one Lakeroad mapping attempt.

    ``status`` is one of ``"success"`` (a structural implementation was
    produced), ``"unsat"`` (the sketch provably cannot implement the
    design), or ``"timeout"`` — the mapping-level vocabulary of
    :mod:`repro.engine.budget`.
    """

    status: str
    design_name: str
    architecture: str
    template: str
    time_seconds: float
    program: Optional[Program] = None
    verilog: Optional[str] = None
    resources: Optional[ResourceCount] = None
    hole_values: Dict[str, int] = field(default_factory=dict)
    synthesis: Optional[SynthesisOutcome] = None
    validated: Optional[bool] = None
    #: Whether this result was served from the session's synthesis cache.
    cache_hit: bool = False
    #: Session-level cache counters at the time this result was produced.
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def succeeded(self) -> bool:
        return self.status == budget_mod.SUCCESS


def _resolve_arch(arch) -> ArchDescription:
    if isinstance(arch, ArchDescription):
        return arch
    return load_architecture(str(arch))


def _isolated_copy(result: LakeroadResult) -> LakeroadResult:
    """A copy of a result whose mutable fields are detached.

    The cache and its callers must not alias anything a caller might
    plausibly mutate: the counters, ``hole_values``, the resource report
    and the synthesis outcome are copied.  ``program`` graphs are shared —
    nodes are frozen dataclasses and programs are treated as immutable
    throughout the codebase.
    """
    return replace(
        result,
        hole_values=dict(result.hole_values),
        resources=replace(result.resources) if result.resources is not None else None,
        synthesis=replace(result.synthesis,
                          hole_values=dict(result.synthesis.hole_values))
        if result.synthesis is not None else None,
    )


def _validate_by_simulation(candidate: Program, design: BehavioralDesign,
                            at_time: int, cycles: int, seed: int = 0,
                            trials: int = 16) -> bool:
    """Cross-check a synthesized program against the design on random stimulus.

    This mirrors the paper's Verilator validation step: although the output
    is correct by construction, we simulate both programs on random input
    streams and compare the outputs over the checked window.
    """
    rng = random.Random(seed)
    horizon = at_time + cycles + 1
    for _ in range(trials):
        streams = {
            name: [rng.getrandbits(width) for _ in range(horizon)]
            for name, width in design.input_widths.items()
        }
        for t in range(at_time, at_time + cycles + 1):
            if interpret(candidate, streams, t) != interpret(design.program, streams, t):
                return False
    return True


class MappingSession:
    """Owns the full map-one-design lifecycle and its shared state.

    Components are injectable for testing and for alternative deployments
    (e.g. a shared cache across harness shards); by default a session
    creates its own primitive library, a concurrent SAT portfolio, a word
    level solver wired to that portfolio, and a bounded synthesis cache.

    ``portfolio`` accepts either a ready :class:`SatPortfolio` instance or
    a racing-style name (``"thread"``, ``"process"``, ``"sequential"`` —
    see :func:`repro.sat.portfolio.make_portfolio`).  ``cache_dir`` layers
    a persistent :class:`DiskSynthesisCache` under the in-memory LRU so
    synthesis results survive the process and are shared with concurrent
    sweep workers.

    ``incremental`` and ``incremental_verify`` select the persistent-solver
    CEGIS candidate and verification paths respectively (clause reuse
    across iterations; identical results either way — see
    :func:`repro.smt.cegis.synthesize`).  The persistent sessions keep
    their learned databases bounded with LBD-based clause reduction (the
    :class:`~repro.sat.solver.CDCLSolver` ``reduce_interval`` /
    ``max_lbd_keep`` defaults); each mapping's reduction telemetry —
    ``clauses_deleted`` and the ``db_size_peak`` memory high-water mark —
    rides on :class:`~repro.core.synthesis.SynthesisOutcome` and
    :class:`~repro.harness.runner.MappingRecord`, and ``lakeroad map/sweep
    --stats`` prints it.
    """

    def __init__(self,
                 library: Optional[PrimitiveLibrary] = None,
                 portfolio: Optional["SatPortfolio | str"] = None,
                 solver: Optional[SmtSolver] = None,
                 cache: Optional[SynthesisCache] = None,
                 enable_cache: bool = True,
                 cache_dir=None,
                 incremental: bool = False,
                 incremental_verify: bool = False,
                 cache_max_entries: Optional[int] = None,
                 random_probes: int = 32) -> None:
        self.library = library if library is not None else PrimitiveLibrary()
        #: Run the CEGIS candidate step on one persistent solver session per
        #: design (clause reuse across iterations).  Results are identical
        #: to from-scratch mode; only synthesis time changes, so cached
        #: results are shared between the two modes.
        self.incremental = incremental
        #: Run the CEGIS verification step on one persistent
        #: assumption-gated miter session per design: the sketch cone and
        #: spec miters are blasted once, each candidate's hole values bind
        #: as solver assumptions, and verification-failure unsat cores
        #: become candidate-pruning blocking constraints.  Statuses, hole
        #: values and iteration counts are identical to the portfolio
        #: verifier by construction, so cached results are shared between
        #: the modes too.
        self.incremental_verify = incremental_verify
        #: Random-probe budget for the packed fast layers (the CEGIS
        #: candidate step and the solver's layer 2 — see
        #: :mod:`repro.bv.bitsim`).  Probes are evaluated 64 lanes per
        #: word-parallel batch; the count changes which CEGIS trajectory
        #: runs, so it participates in the synthesis cache key.
        if random_probes < 0:
            raise ValueError("random_probes must be non-negative")
        self.random_probes = random_probes
        if isinstance(portfolio, str):
            portfolio = make_portfolio(portfolio)
        if portfolio is None and solver is not None:
            # Adopt the injected solver's portfolio so portfolio_wins()
            # reports the races that actually ran.
            portfolio = solver.portfolio
        self.portfolio = portfolio if portfolio is not None else SatPortfolio()
        self.solver = solver if solver is not None else SmtSolver(
            portfolio=self.portfolio, random_probes=random_probes)
        if cache is not None and cache_dir is not None:
            raise ValueError("pass either an explicit cache or a cache_dir, "
                             "not both (a silently dropped cache_dir would "
                             "mean nothing ever persists)")
        if cache is None:
            memory = SynthesisCache()
            cache = TieredSynthesisCache(
                memory, DiskSynthesisCache(cache_dir,
                                           max_entries=cache_max_entries)) \
                if cache_dir is not None else memory
        self.cache = cache
        self.enable_cache = enable_cache

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    def cache_stats(self) -> Dict[str, int]:
        return self.cache.stats()

    def portfolio_wins(self) -> Dict[str, int]:
        return self.portfolio.win_counts()

    def close(self) -> None:
        """Release held resources (the disk cache's sqlite connection).

        In-memory sessions hold nothing that outlives garbage collection;
        disk-cached ones keep a database handle open, so harness code that
        builds sessions per run should close them (or use the session as a
        context manager).  Safe to call more than once.
        """
        close = getattr(self.cache, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "MappingSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Mapping
    # ------------------------------------------------------------------ #
    def budget_for(self, architecture: str,
                   timeout_seconds: Optional[float] = None) -> Budget:
        """The budget one mapping attempt gets on this session."""
        return Budget.for_architecture(architecture, override=timeout_seconds)

    def map_verilog(self, source: str, template: str = "dsp",
                    arch="xilinx-ultrascale-plus",
                    module_name: Optional[str] = None,
                    timeout_seconds: Optional[float] = None,
                    budget: Optional[Budget] = None,
                    extra_cycles: int = 1,
                    validate: bool = True) -> LakeroadResult:
        """Map a behavioral Verilog module (the §2.2 entry point)."""
        design = verilog_to_behavioral(source, module_name)
        return self.map_design(design, template=template, arch=arch,
                               timeout_seconds=timeout_seconds, budget=budget,
                               extra_cycles=extra_cycles, validate=validate)

    def map_design(self, design: BehavioralDesign, template: str = "dsp",
                   arch="xilinx-ultrascale-plus",
                   timeout_seconds: Optional[float] = None,
                   budget: Optional[Budget] = None,
                   extra_cycles: int = 1,
                   validate: bool = True,
                   use_cache: Optional[bool] = None) -> LakeroadResult:
        """Map an imported behavioral design onto the target architecture."""
        start = time.monotonic()
        architecture = _resolve_arch(arch)
        # A caller-supplied budget that is already running has an unknown
        # amount of its window left, so its results are not comparable to a
        # fresh run with the same configured timeout — never cache those.
        externally_started = budget is not None and budget.started
        if budget is None:
            budget = self.budget_for(architecture.name, timeout_seconds)
        budget.start()

        caching = (self.enable_cache if use_cache is None else use_cache) \
            and not externally_started
        cache_key = None
        if caching:
            cache_key = synthesis_cache_key(design, architecture.name,
                                            template, budget, extra_cycles,
                                            validate, self.random_probes)
            cached = self.cache.get(cache_key)
            if cached is not None:
                stats = self.cache.stats()
                hit = _isolated_copy(cached)
                hit.cache_hit = True
                hit.cache_hits = stats["hits"]
                hit.cache_misses = stats["misses"]
                hit.time_seconds = time.monotonic() - start
                return hit

        result = self._map_cold(design, template, architecture, budget,
                                extra_cycles, validate, start)
        stats = self.cache.stats()
        result.cache_hits = stats["hits"]
        result.cache_misses = stats["misses"]
        # Timeouts are the one wall-clock-dependent status: caching one
        # would make a transient environmental hiccup sticky for the whole
        # session, so only definitive outcomes (success/unsat) are stored.
        if caching and cache_key is not None and result.status != budget_mod.TIMEOUT:
            self.cache.put(cache_key, _isolated_copy(result))
        return result

    # ------------------------------------------------------------------ #
    def _map_cold(self, design: BehavioralDesign, template: str,
                  architecture: ArchDescription, budget: Budget,
                  extra_cycles: int, validate: bool,
                  start: float) -> LakeroadResult:
        """The §2.2 three-step flow: sketch → synthesis → compilation."""
        interface = DesignInterface(input_widths=dict(design.input_widths),
                                   output_width=design.output_width)
        try:
            sketch = generate_sketch(template, architecture, interface, self.library)
        except SketchGenerationError:
            return LakeroadResult(
                status=budget_mod.UNSAT, design_name=design.name,
                architecture=architecture.name, template=template,
                time_seconds=time.monotonic() - start)

        at_time = design.pipeline_depth
        outcome = f_lr_star(sketch, design.program, at_time=at_time,
                            cycles=extra_cycles, budget=budget,
                            solver=self.solver,
                            incremental=self.incremental,
                            incremental_verify=self.incremental_verify,
                            random_probes=self.random_probes)

        result = LakeroadResult(
            status=budget_mod.mapping_status(outcome.status),
            design_name=design.name,
            architecture=architecture.name,
            template=template,
            time_seconds=time.monotonic() - start,
            hole_values=outcome.hole_values,
            synthesis=outcome,
        )
        if outcome.program is not None:
            result.program = outcome.program
            lowered: LoweredDesign = lower_to_verilog(outcome.program,
                                                      f"{design.name}_impl")
            result.verilog = lowered.verilog
            result.resources = lowered.resources
            if validate:
                result.validated = _validate_by_simulation(outcome.program, design,
                                                           at_time, extra_cycles)
        result.time_seconds = time.monotonic() - start
        return result


# --------------------------------------------------------------------------- #
# Default session (the functional API's backing instance)
# --------------------------------------------------------------------------- #
_DEFAULT_SESSION: Optional[MappingSession] = None


def default_session() -> MappingSession:
    """The process-wide session backing ``repro.lakeroad``'s functional API."""
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        _DEFAULT_SESSION = MappingSession()
    return _DEFAULT_SESSION


def reset_default_session() -> None:
    """Drop the default session (tests use this to isolate cache state)."""
    global _DEFAULT_SESSION
    _DEFAULT_SESSION = None
