"""The pluggable solver-backend registry.

The paper races Bitwuzla, cvc5, Yices2 and STP and takes the first answer
(§4.5).  This reproduction's engines fill those roles; registering them
here makes every SAT strategy a named, configurable member of one portfolio
abstraction instead of a hard-coded list inside ``sat.portfolio``.

A backend's ``run`` callable has the signature::

    run(cnf, deadline, assumptions, should_stop=None) -> SatResult

where ``should_stop`` is an optional zero-argument callable the portfolio
uses to cancel losing members once a race has been decided.  Legacy
three-argument callables are accepted; they simply cannot be cancelled
early.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.sat.cnf import CNF
from repro.sat.dpll import DPLLSolver
from repro.sat.legacy import LegacyCDCLSolver
from repro.sat.solver import CDCLSolver, SatResult

__all__ = [
    "SolverBackend",
    "register_backend",
    "unregister_backend",
    "backend_by_name",
    "available_backends",
    "default_backend_names",
]


@dataclass
class SolverBackend:
    """A named SAT strategy that can join the portfolio race."""

    name: str
    run: Callable[..., SatResult]
    description: str = ""
    #: Backends with ``default=True`` join the default portfolio race.
    default: bool = True
    #: Head start (seconds) the rest of the race gets before this backend
    #: starts; the portfolio caps it at half the remaining budget so the
    #: fallback joins on every budget scale.  Staggered scheduling keeps
    #: cheap queries on the strongest engine only (deterministic and
    #: GIL-friendly) while hard queries are still raced by every member.
    stagger: float = 0.0
    supports_cancellation: bool = field(init=False, default=False)

    def __post_init__(self) -> None:
        self.supports_cancellation = _accepts_should_stop(self.run)

    def solve(self, cnf: CNF, deadline: Optional[float],
              assumptions: Sequence[int] = (),
              should_stop: Optional[Callable[[], bool]] = None) -> SatResult:
        if self.supports_cancellation:
            return self.run(cnf, deadline, assumptions, should_stop=should_stop)
        return self.run(cnf, deadline, assumptions)


def _accepts_should_stop(fn: Callable[..., SatResult]) -> bool:
    """Whether ``fn`` takes the cancellation hook.

    The hook is always passed by keyword, so a cancellable backend must
    name the parameter ``should_stop`` (or accept ``**kwargs``); a fourth
    positional parameter under any other name is not treated as the hook.
    """
    try:
        signature = inspect.signature(fn)
    except (TypeError, ValueError):
        return False
    if any(p.kind == inspect.Parameter.VAR_KEYWORD
           for p in signature.parameters.values()):
        return True
    parameter = signature.parameters.get("should_stop")
    return parameter is not None and parameter.kind in (
        inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY)


_REGISTRY: Dict[str, SolverBackend] = {}


def register_backend(backend: SolverBackend, replace: bool = False) -> SolverBackend:
    """Add a backend to the registry (and to future default portfolios)."""
    if backend.name in _REGISTRY and not replace:
        raise ValueError(f"solver backend {backend.name!r} is already registered")
    _REGISTRY[backend.name] = backend
    return backend


def unregister_backend(name: str) -> None:
    _REGISTRY.pop(name, None)


def backend_by_name(name: str) -> SolverBackend:
    if name not in _REGISTRY:
        raise KeyError(f"unknown solver backend {name!r}; known: {available_backends()}")
    return _REGISTRY[name]


def available_backends() -> List[str]:
    return sorted(_REGISTRY)


def default_backend_names() -> List[str]:
    """Backends that participate in the default race, strongest first."""
    ordered = [backend.name for backend in _REGISTRY.values() if backend.default]
    return ordered


# --------------------------------------------------------------------------- #
# Built-in backends
# --------------------------------------------------------------------------- #
def _run_cdcl(cnf: CNF, deadline: Optional[float], assumptions: Sequence[int],
              should_stop: Optional[Callable[[], bool]] = None) -> SatResult:
    return CDCLSolver(cnf, deadline=deadline, should_stop=should_stop).solve(assumptions)


def _run_dpll(cnf: CNF, deadline: Optional[float], assumptions: Sequence[int],
              should_stop: Optional[Callable[[], bool]] = None) -> SatResult:
    return DPLLSolver(cnf, deadline=deadline, should_stop=should_stop).solve(assumptions)


def cdcl_config(**options) -> Callable[..., SatResult]:
    """A CDCL backend body with a fixed solver configuration.

    ``options`` are :class:`~repro.sat.solver.CDCLSolver` keyword knobs
    (``var_decay``, ``default_phase``, ``phase_saving``, ``branching``,
    ``restart_policy``, ``restart_base``, ``reduce_interval``,
    ``max_lbd_keep``) — the levers that make portfolio members behave
    genuinely differently on the same formula.
    """
    def run(cnf: CNF, deadline: Optional[float], assumptions: Sequence[int],
            should_stop: Optional[Callable[[], bool]] = None) -> SatResult:
        return CDCLSolver(cnf, deadline=deadline, should_stop=should_stop,
                          **options).solve(assumptions)
    return run


register_backend(SolverBackend(
    "cdcl", _run_cdcl,
    description="two-watched-literal CDCL with VSIDS and Luby restarts"))
# The fallback members join a *thread* race only once a query looks
# genuinely stuck (60 s in, or half the remaining budget, whichever is
# sooner): under the GIL, CPU-bound members time-share a core, so an eager
# second engine roughly halves the primary's throughput — and a race
# winner's model steers CEGIS counterexamples, so eager racing also makes
# synthesis trajectories timing-dependent.  The *process* portfolio
# ignores the stagger and races every default member immediately (true
# parallelism), which is where the diversified configurations below earn
# their keep: restart cadence, phase polarity and branching order are the
# axes on which CDCL run times diverge by orders of magnitude, so a wide
# race hedges against any single configuration's pathological case.
register_backend(SolverBackend(
    "dpll", _run_dpll,
    description="iterative DPLL with unit propagation and pure literals",
    stagger=60.0))
register_backend(SolverBackend(
    "cdcl-agile", cdcl_config(restart_base=8, var_decay=0.85,
                              reduce_interval=1000, max_lbd_keep=2),
    description="CDCL with rapid Luby restarts, fast activity decay and "
                "aggressive clause-DB reduction (recovers quickly from "
                "bad early decisions, keeps propagation lean)",
    stagger=60.0))
register_backend(SolverBackend(
    "cdcl-stable", cdcl_config(restart_policy="geometric", restart_base=128,
                               default_phase=True, reduce_interval=4000),
    description="CDCL with long geometric restarts, positive phase init "
                "and a patient clause database (commits to deep searches, "
                "favours sat answers)",
    stagger=60.0))
register_backend(SolverBackend(
    "cdcl-static", cdcl_config(branching="static", phase_saving=False),
    description="CDCL branching in fixed variable order with fixed "
                "negative polarity (finds the lex-smallest model first)",
    stagger=60.0))


def _run_cdcl_legacy(cnf: CNF, deadline: Optional[float],
                     assumptions: Sequence[int],
                     should_stop: Optional[Callable[[], bool]] = None) -> SatResult:
    return LegacyCDCLSolver(cnf, deadline=deadline,
                            should_stop=should_stop).solve(assumptions)


# The flat-arena engine *is* ``cdcl``; the alias exists so experiment
# configurations and the differential fuzz matrix can name the layout
# explicitly when racing it against the retired list-based engine.
register_backend(SolverBackend(
    "cdcl-arena", _run_cdcl,
    description="alias of 'cdcl': flat-arena CDCL with blocker-literal "
                "watchers (the default engine)",
    default=False))
# The pre-arena solver, kept verbatim for one release as the bit-for-bit
# reference trajectory.  Not part of the default race — it answers
# identically to 'cdcl', only slower, so racing both wastes a core.
register_backend(SolverBackend(
    "cdcl-legacy", _run_cdcl_legacy,
    description="retired dict/list CDCL kept one release as the "
                "trajectory-identical differential baseline for the arena "
                "engine",
    default=False))
