"""A persistent, process-shared synthesis cache (sqlite) and its tiering.

The in-memory :class:`repro.engine.cache.SynthesisCache` dies with the
process, so harness runs, sharded sweep workers and CI jobs each pay the
full synthesis cost for workloads every other process has already solved.
:class:`DiskSynthesisCache` persists entries in a single sqlite database:

* **keying** reuses the session's canonical cache key (design fingerprint ×
  architecture × template × budget × BMC window × validation flag),
  serialized to a stable JSON string;
* **values** are pickled :class:`repro.engine.session.LakeroadResult`
  objects (the cache itself is payload-agnostic — it stores any picklable
  value);
* **schema versioning**: a bumped :data:`SCHEMA_VERSION` makes an old
  database read as empty instead of serving stale or shape-incompatible
  entries;
* **corruption**: an unreadable database file is quarantined (renamed to
  ``*.corrupt``) and replaced with a fresh one — a damaged cache must never
  take the tool down;
* **concurrency**: WAL journaling plus a busy timeout make concurrent
  readers/writers from sharded sweep workers safe;
* **lifetime statistics**: per-run hit/miss counts are folded into the meta
  table on write/close, so ``lakeroad cache stats`` reports hit rates over
  the database's whole life, not just one process.

:class:`TieredSynthesisCache` layers the disk cache *under* the in-memory
LRU as a read-through/write-through tier: gets fall through memory to disk
(promoting hits back into memory), puts write both.  Sessions build the
tier automatically when given a ``cache_dir``.
"""

from __future__ import annotations

import json
import os
import pickle
import sqlite3
import threading
import time
import warnings
from pathlib import Path
from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.engine.cache import SynthesisCache

__all__ = ["SCHEMA_VERSION", "DB_NAME", "DiskSynthesisCache",
           "TieredSynthesisCache", "peek_schema_version", "peek_entry_count"]

#: Bump whenever the stored value shape (or the key derivation) changes in a
#: way that makes old entries unusable; mismatched databases fall back to
#: empty instead of deserializing stale results.  v2: SynthesisOutcome grew
#: the incremental-CEGIS statistics fields and the entries table gained a
#: ``last_used_at`` column for LRU eviction.
SCHEMA_VERSION = 2

#: The database filename inside a cache directory (the CLI and the session
#: must agree on it).
DB_NAME = "synthesis-cache.sqlite"
_DB_NAME = DB_NAME  # historical alias


def canonical_key(key: Hashable) -> str:
    """A stable text form of a cache key (tuples become JSON arrays)."""
    return json.dumps(key, sort_keys=True, default=repr)


#: Memoized read-only peek connections, keyed by database path.  The peek
#: helpers run on hot inspection paths (``lakeroad cache stats``, the
#: service front door's health checks) and used to open a fresh sqlite
#: connection per call; one per process is enough.  Entries carry the
#: opening pid and the file identity so a fork or a replaced database
#: (quarantine, ``clear``) invalidates the handle instead of serving a
#: stale snapshot.
_PEEK_LOCK = threading.Lock()
_PEEK_CONNECTIONS: Dict[str, tuple] = {}


def _peek_connection(path: Path) -> Optional[sqlite3.Connection]:
    try:
        stat = path.stat()
    except OSError:
        return None
    identity = (stat.st_dev, stat.st_ino)
    key = str(path)
    with _PEEK_LOCK:
        entry = _PEEK_CONNECTIONS.get(key)
        if entry is not None:
            pid, cached_identity, connection = entry
            if pid == os.getpid() and cached_identity == identity:
                return connection
            # Stale: forked child (never close the parent's handle) or the
            # file was replaced underneath us.
            if pid == os.getpid():
                try:
                    connection.close()
                except sqlite3.Error:
                    pass
            del _PEEK_CONNECTIONS[key]
        try:
            connection = sqlite3.connect(f"file:{path}?mode=ro", uri=True,
                                         timeout=5.0,
                                         check_same_thread=False)
        except sqlite3.Error:
            return None
        _PEEK_CONNECTIONS[key] = (os.getpid(), identity, connection)
        return connection


def peek_schema_version(directory, db_name: str = DB_NAME) -> Optional[int]:
    """Read a cache database's schema version without opening it for
    writing (and therefore without triggering the schema migration, which
    drops unreadable entries).  Returns None if the database is missing,
    unreadable, or carries no version stamp."""
    connection = _peek_connection(Path(directory) / db_name)
    if connection is None:
        return None
    try:
        row = connection.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'").fetchone()
        return int(row[0]) if row is not None else None
    except (sqlite3.Error, ValueError):
        return None


def peek_entry_count(directory, db_name: str = DB_NAME) -> Optional[int]:
    """Count a cache database's entries without opening it for writing
    (works on any schema version that has an ``entries`` table).  Returns
    None if the database is missing or unreadable."""
    connection = _peek_connection(Path(directory) / db_name)
    if connection is None:
        return None
    try:
        row = connection.execute("SELECT COUNT(*) FROM entries").fetchone()
        return int(row[0])
    except sqlite3.Error:
        return None


class DiskSynthesisCache:
    """A sqlite-backed synthesis cache shared across processes.

    Hit/miss counters are per-instance (per-process); the entry set is the
    shared database.  All failure modes degrade to cache misses — a cache
    must accelerate runs, never abort them.
    """

    def __init__(self, directory, db_name: str = _DB_NAME,
                 max_entries: Optional[int] = None) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / db_name
        #: Size cap: a put that grows the table past this evicts the
        #: least-recently-used entries back down to the cap.  None means
        #: unbounded (the historical behavior); ``lakeroad cache prune``
        #: offers one-shot trimming for unbounded caches.
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._connection: Optional[sqlite3.Connection] = None
        #: The process that owns ``_connection``.  sqlite handles must not
        #: be used across a fork (the service and sweep pools fork with a
        #: session — and therefore a cache — already open), so every
        #: operation checks the pid and reopens in the child.
        self._pid = os.getpid()
        self.hits = 0
        self.misses = 0
        self.errors = 0
        self.evictions = 0
        #: Hit/miss counts not yet folded into the database's lifetime
        #: counters (meta keys ``lifetime_hits``/``lifetime_misses``);
        #: flushed on the next write operation or on close, so
        #: ``lakeroad cache stats`` can report hit rates across every run
        #: that ever used the cache, not just the current process.
        self._unflushed_hits = 0
        self._unflushed_misses = 0
        #: Recency updates buffered by ``get`` (key -> last-use time) and
        #: flushed on the next write operation (put/prune/close): hits stay
        #: pure reads instead of each taking sqlite's single-writer lock.
        self._dirty_recency: Dict[str, float] = {}
        #: High-water mark for recency/creation stamps.  Wall clocks step
        #: backwards (NTP corrections, VM migrations); an entry stamped
        #: after such a step would look *older* than everything before it
        #: and the LRU evictor would drop the hottest entries first.
        #: ``_stamp`` clamps against this mark so stamps are strictly
        #: increasing within a process regardless of what the clock does.
        self._last_stamp = 0.0
        #: Local estimate of the entry count, so the per-query stats path
        #: never runs COUNT(*); exact at open and after len(), drifts only
        #: on key overwrites and on other processes' concurrent writes.
        self._entry_estimate = 0
        self._open()
        self._entry_estimate = self._count_entries()

    # ------------------------------------------------------------------ #
    # Connection lifecycle
    # ------------------------------------------------------------------ #
    def _open(self) -> None:
        try:
            self._connection = self._initialise()
        except sqlite3.DatabaseError:
            self._quarantine()
            self._connection = self._initialise()

    def _initialise(self) -> sqlite3.Connection:
        connection = sqlite3.connect(str(self.path), timeout=30.0,
                                     check_same_thread=False)
        try:
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA synchronous=NORMAL")
            connection.execute("PRAGMA busy_timeout=30000")
            connection.execute(
                "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)")
            row = connection.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'").fetchone()
            if row is None or row[0] != str(SCHEMA_VERSION):
                # Entries written under another schema are unusable (and may
                # even have different columns); start empty rather than
                # deserializing stale shapes.
                connection.execute("DROP TABLE IF EXISTS entries")
                # Lifetime hit/miss counters describe the dropped entry
                # set; reset them alongside it.
                connection.execute(
                    "DELETE FROM meta WHERE key IN "
                    "('lifetime_hits', 'lifetime_misses')")
                connection.execute(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                    ("schema_version", str(SCHEMA_VERSION)))
            connection.execute(
                "CREATE TABLE IF NOT EXISTS entries ("
                " key TEXT PRIMARY KEY, value BLOB NOT NULL,"
                " created_at REAL NOT NULL, last_used_at REAL NOT NULL)")
            connection.execute(
                "CREATE INDEX IF NOT EXISTS entries_lru ON entries(last_used_at)")
            connection.commit()
        except BaseException:
            connection.close()
            raise
        return connection

    def _guard_fork(self) -> None:
        """Reopen in a forked child (called with the lock held).

        The inherited connection is the parent's: it is dropped without
        ``close()`` (closing would tear down sqlite state the parent is
        still using — the leaked fd is the lesser evil).  The buffered
        hit/miss/recency counters were duplicated by the fork and will be
        flushed by the parent, so the child resets them rather than
        double-counting.
        """
        if self._pid == os.getpid():
            return
        self._connection = None
        self._dirty_recency.clear()
        self._unflushed_hits = 0
        self._unflushed_misses = 0
        self._pid = os.getpid()
        self._open()
        try:
            row = self._connection.execute(
                "SELECT COUNT(*) FROM entries").fetchone()
            self._entry_estimate = int(row[0])
        except (sqlite3.Error, AttributeError):
            self._entry_estimate = 0

    def _stamp(self) -> float:
        """A wall-clock timestamp clamped to be strictly increasing within
        this process (called with the lock held).  The epsilon keeps
        ordering information across a backwards clock step — ties would
        otherwise fall back to key order in the LRU eviction query."""
        now = time.time()
        if now <= self._last_stamp:
            now = self._last_stamp + 1e-6
        self._last_stamp = now
        return now

    def _quarantine(self) -> None:
        """Move a damaged database aside and warn; the cache starts fresh."""
        if self._connection is not None:
            try:
                self._connection.close()
            except sqlite3.Error:
                pass
            self._connection = None
        quarantined = self.path.with_name(self.path.name + ".corrupt")
        try:
            os.replace(self.path, quarantined)
        except OSError:
            try:
                self.path.unlink()
            except OSError:
                pass
        for sidecar in (f"{self.path}-wal", f"{self.path}-shm"):
            try:
                os.unlink(sidecar)
            except OSError:
                pass
        warnings.warn(
            f"synthesis cache database {self.path} was unreadable; "
            f"quarantined to {quarantined} and starting empty",
            RuntimeWarning, stacklevel=3)

    def close(self) -> None:
        with self._lock:
            if self._pid != os.getpid():
                # A forked child closing an inherited cache: the connection
                # and the buffered counters belong to the parent — drop
                # them, flush nothing.
                self._connection = None
                self._dirty_recency.clear()
                self._unflushed_hits = 0
                self._unflushed_misses = 0
                return
            self._flush_recency()
            if self._connection is not None:
                try:
                    self._connection.close()
                except sqlite3.Error:
                    pass
                self._connection = None

    # ------------------------------------------------------------------ #
    # Cache protocol (mirrors SynthesisCache)
    # ------------------------------------------------------------------ #
    def get(self, key: Hashable) -> Optional[Any]:
        text_key = canonical_key(key)
        with self._lock:
            self._guard_fork()
            if self._connection is None:
                self.misses += 1
                self._unflushed_misses += 1
                return None
            try:
                row = self._connection.execute(
                    "SELECT value FROM entries WHERE key = ?", (text_key,)).fetchone()
            except sqlite3.Error:
                self.errors += 1
                self.misses += 1
                self._unflushed_misses += 1
                return None
            if row is None:
                self.misses += 1
                self._unflushed_misses += 1
                return None
            try:
                value = pickle.loads(row[0])
            except Exception:
                # An undeserializable entry is useless; drop it so the next
                # run recomputes and overwrites.
                self.errors += 1
                self.misses += 1
                self._unflushed_misses += 1
                try:
                    self._connection.execute(
                        "DELETE FROM entries WHERE key = ?", (text_key,))
                    self._connection.commit()
                    self._entry_estimate = max(0, self._entry_estimate - 1)
                except sqlite3.Error:
                    pass
                return None
            self._dirty_recency[text_key] = self._stamp()
            self.hits += 1
            self._unflushed_hits += 1
            return value

    def _flush_recency(self) -> None:
        """Persist buffered last-use times (called with the lock held)."""
        self._flush_lifetime()
        if not self._dirty_recency or self._connection is None:
            return
        updates = [(used_at, key)
                   for key, used_at in self._dirty_recency.items()]
        self._dirty_recency.clear()
        try:
            self._connection.executemany(
                "UPDATE entries SET last_used_at = ? WHERE key = ?", updates)
            self._connection.commit()
        except sqlite3.Error:
            pass  # recency is best-effort; worst case the LRU order coarsens

    def _flush_lifetime(self) -> None:
        """Fold this run's hit/miss counts into the database's lifetime
        counters (called with the lock held).  Best-effort, like recency:
        a failed flush costs statistics, never correctness."""
        if (not self._unflushed_hits and not self._unflushed_misses) \
                or self._connection is None:
            return
        updates = [("lifetime_hits", self._unflushed_hits),
                   ("lifetime_misses", self._unflushed_misses)]
        self._unflushed_hits = 0
        self._unflushed_misses = 0
        try:
            for key, delta in updates:
                if delta:
                    self._connection.execute(
                        "INSERT INTO meta (key, value) VALUES (?, ?) "
                        "ON CONFLICT(key) DO UPDATE SET "
                        "value = CAST(CAST(value AS INTEGER) + CAST(excluded.value AS INTEGER) AS TEXT)",
                        (key, str(delta)))
            self._connection.commit()
        except sqlite3.Error:
            pass

    def lifetime_stats(self) -> Dict[str, int]:
        """Cumulative hit/miss counters over every run that used this
        database (persisted in the meta table), including this instance's
        not-yet-flushed counts."""
        with self._lock:
            self._guard_fork()
            # Snapshot the unflushed counts under the lock: a concurrent
            # flush zeroes them after folding them into the meta table, and
            # an outside-the-lock snapshot would count those twice.
            totals = {"lifetime_hits": self._unflushed_hits,
                      "lifetime_misses": self._unflushed_misses}
            if self._connection is None:
                return totals
            try:
                rows = self._connection.execute(
                    "SELECT key, value FROM meta WHERE key IN "
                    "('lifetime_hits', 'lifetime_misses')").fetchall()
            except sqlite3.Error:
                return totals
        for key, value in rows:
            try:
                totals[key] += int(value)
            except (TypeError, ValueError):
                pass
        return totals

    def put(self, key: Hashable, value: Any) -> None:
        text_key = canonical_key(key)
        try:
            blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            self.errors += 1
            return
        with self._lock:
            self._guard_fork()
            if self._connection is None:
                return
            self._flush_recency()
            try:
                now = self._stamp()
                self._connection.execute(
                    "INSERT OR REPLACE INTO entries "
                    "(key, value, created_at, last_used_at) "
                    "VALUES (?, ?, ?, ?)", (text_key, blob, now, now))
                self._connection.commit()
                self._entry_estimate += 1
            except sqlite3.Error:
                self.errors += 1
                return
            if self.max_entries is not None and \
                    self._entry_estimate > self.max_entries:
                self._evict_over_cap()

    def _evict_over_cap(self) -> None:
        """Delete least-recently-used entries beyond ``max_entries``.

        Called with the lock held.  Uses the exact count (the estimate may
        drift under overwrites and concurrent writers) and is best-effort:
        an eviction failure degrades to an oversized cache, never an error.
        """
        try:
            row = self._connection.execute(
                "SELECT COUNT(*) FROM entries").fetchone()
            count = int(row[0])
            excess = count - self.max_entries
            if excess > 0:
                self._connection.execute(
                    "DELETE FROM entries WHERE key IN ("
                    " SELECT key FROM entries"
                    " ORDER BY last_used_at ASC, created_at ASC, key ASC"
                    " LIMIT ?)", (excess,))
                self._connection.commit()
                self.evictions += excess
                count -= excess
            self._entry_estimate = count
        except sqlite3.Error:
            self.errors += 1

    def prune(self, max_entries: Optional[int] = None,
              max_age_seconds: Optional[float] = None) -> int:
        """One-shot trim: drop entries unused for ``max_age_seconds`` and/or
        LRU-evict down to ``max_entries``.  Returns the number removed."""
        removed = 0
        with self._lock:
            self._guard_fork()
            if self._connection is None:
                return 0
            self._flush_recency()
            try:
                if max_age_seconds is not None:
                    cursor = self._connection.execute(
                        "DELETE FROM entries WHERE last_used_at < ?",
                        (self._stamp() - max_age_seconds,))
                    removed += cursor.rowcount if cursor.rowcount > 0 else 0
                if max_entries is not None:
                    row = self._connection.execute(
                        "SELECT COUNT(*) FROM entries").fetchone()
                    excess = int(row[0]) - max_entries
                    if excess > 0:
                        self._connection.execute(
                            "DELETE FROM entries WHERE key IN ("
                            " SELECT key FROM entries"
                            " ORDER BY last_used_at ASC, created_at ASC, key ASC"
                            " LIMIT ?)", (excess,))
                        removed += excess
                self._connection.commit()
                row = self._connection.execute(
                    "SELECT COUNT(*) FROM entries").fetchone()
                self._entry_estimate = int(row[0])
            except sqlite3.Error:
                self.errors += 1
        return removed

    def export_entries(self, since: float = 0.0,
                       limit: Optional[int] = None
                       ) -> List[Tuple[str, bytes, float]]:
        """Snapshot entries created after ``since`` as
        ``(text_key, pickled_blob, created_at)`` rows, oldest first.

        The distributed sweep uses this for warm-cache sync: workers
        export the entries their completed shards produced and the
        coordinator ships them to late joiners.  Blobs stay opaque —
        they are inserted verbatim on the other side.
        """
        with self._lock:
            self._guard_fork()
            if self._connection is None:
                return []
            query = ("SELECT key, value, created_at FROM entries "
                     "WHERE created_at > ? ORDER BY created_at ASC, key ASC")
            try:
                if limit is not None:
                    rows = self._connection.execute(
                        query + " LIMIT ?", (since, limit)).fetchall()
                else:
                    rows = self._connection.execute(
                        query, (since,)).fetchall()
            except sqlite3.Error:
                self.errors += 1
                return []
        return [(key, bytes(blob), float(created))
                for key, blob, created in rows]

    def import_entries(self,
                       entries: Iterable[Tuple[str, bytes]]) -> int:
        """Insert pre-pickled ``(text_key, blob)`` rows from another node.

        Local entries win on key collisions (INSERT OR IGNORE): the local
        copy is at least as fresh and may already be promoted into the
        memory tier.  Returns the number of rows actually inserted.
        """
        inserted = 0
        with self._lock:
            self._guard_fork()
            if self._connection is None:
                return 0
            self._flush_recency()
            now = self._stamp()
            try:
                for key, blob in entries:
                    cursor = self._connection.execute(
                        "INSERT OR IGNORE INTO entries "
                        "(key, value, created_at, last_used_at) "
                        "VALUES (?, ?, ?, ?)", (key, blob, now, now))
                    if cursor.rowcount > 0:
                        inserted += cursor.rowcount
                self._connection.commit()
                self._entry_estimate += inserted
            except sqlite3.Error:
                self.errors += 1
            if self.max_entries is not None and \
                    self._entry_estimate > self.max_entries:
                self._evict_over_cap()
        return inserted

    def size_bytes(self) -> int:
        """On-disk footprint of the database (plus WAL sidecar)."""
        total = 0
        for path in (self.path, Path(f"{self.path}-wal")):
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def clear(self) -> None:
        with self._lock:
            self._guard_fork()
            self.hits = 0
            self.misses = 0
            self.errors = 0
            self._entry_estimate = 0
            self._dirty_recency.clear()
            self._unflushed_hits = 0
            self._unflushed_misses = 0
            if self._connection is None:
                return
            try:
                self._connection.execute("DELETE FROM entries")
                self._connection.execute(
                    "DELETE FROM meta WHERE key IN "
                    "('lifetime_hits', 'lifetime_misses')")
                self._connection.commit()
            except sqlite3.Error:
                self.errors += 1

    def _count_entries(self) -> int:
        with self._lock:
            self._guard_fork()
            if self._connection is None:
                return 0
            try:
                row = self._connection.execute(
                    "SELECT COUNT(*) FROM entries").fetchone()
            except sqlite3.Error:
                return 0
            return int(row[0])

    def __len__(self) -> int:
        """Exact entry count (COUNT(*)); also refreshes the estimate."""
        count = self._count_entries()
        self._entry_estimate = count
        return count

    def stats(self) -> Dict[str, int]:
        """Counters for the per-query hot path.

        ``entries`` is the local estimate (no COUNT(*) table scan — sessions
        read stats on every mapping); call ``len(cache)`` for the exact
        shared count.
        """
        return {"hits": self.hits, "misses": self.misses,
                "entries": self._entry_estimate, "errors": self.errors,
                "evictions": self.evictions}


class TieredSynthesisCache:
    """An in-memory LRU over a persistent disk tier.

    Reads fall through memory to disk and promote hits back into memory;
    writes go to both tiers.  ``stats()`` reports the combined view the
    session's counters expect (``hits``/``misses``/``entries``) plus the
    per-tier breakdown.
    """

    def __init__(self, memory: Optional[SynthesisCache] = None,
                 disk: Optional[DiskSynthesisCache] = None) -> None:
        if disk is None:
            raise ValueError("TieredSynthesisCache requires a disk tier; "
                             "use SynthesisCache alone for memory-only caching")
        self.memory = memory if memory is not None else SynthesisCache()
        self.disk = disk

    def get(self, key: Hashable) -> Optional[Any]:
        value = self.memory.get(key)
        if value is not None:
            return value
        value = self.disk.get(key)
        if value is not None:
            self.memory.put(key, value)
        return value

    def put(self, key: Hashable, value: Any) -> None:
        self.memory.put(key, value)
        self.disk.put(key, value)

    def clear(self) -> None:
        self.memory.clear()
        self.disk.clear()

    def prune(self, max_entries: Optional[int] = None,
              max_age_seconds: Optional[float] = None) -> int:
        """Trim the disk tier; the in-memory LRU is already size-capped."""
        return self.disk.prune(max_entries=max_entries,
                               max_age_seconds=max_age_seconds)

    def lifetime_stats(self) -> Dict[str, int]:
        """The disk tier's cross-run hit/miss counters (memory-tier hits
        are per-process by nature and not persisted)."""
        return self.disk.lifetime_stats()

    def close(self) -> None:
        self.disk.close()

    def __len__(self) -> int:
        return len(self.disk)

    def stats(self) -> Dict[str, int]:
        memory = self.memory.stats()
        disk = self.disk.stats()
        return {
            # Combined counters: a disk hit is still a cache hit, and only a
            # miss in *both* tiers is a true miss (every memory miss falls
            # through to the disk tier, where it is counted exactly once).
            "hits": memory["hits"] + disk["hits"],
            "misses": disk["misses"],
            "entries": disk["entries"],
            "memory_hits": memory["hits"],
            "memory_entries": memory["entries"],
            "disk_hits": disk["hits"],
            "disk_errors": disk["errors"],
        }
