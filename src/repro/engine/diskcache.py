"""A persistent, process-shared synthesis cache (sqlite) and its tiering.

The in-memory :class:`repro.engine.cache.SynthesisCache` dies with the
process, so harness runs, sharded sweep workers and CI jobs each pay the
full synthesis cost for workloads every other process has already solved.
:class:`DiskSynthesisCache` persists entries in a single sqlite database:

* **keying** reuses the session's canonical cache key (design fingerprint ×
  architecture × template × budget × BMC window × validation flag),
  serialized to a stable JSON string;
* **values** are pickled :class:`repro.engine.session.LakeroadResult`
  objects (the cache itself is payload-agnostic — it stores any picklable
  value);
* **schema versioning**: a bumped :data:`SCHEMA_VERSION` makes an old
  database read as empty instead of serving stale or shape-incompatible
  entries;
* **corruption**: an unreadable database file is quarantined (renamed to
  ``*.corrupt``) and replaced with a fresh one — a damaged cache must never
  take the tool down;
* **concurrency**: WAL journaling plus a busy timeout make concurrent
  readers/writers from sharded sweep workers safe.

:class:`TieredSynthesisCache` layers the disk cache *under* the in-memory
LRU as a read-through/write-through tier: gets fall through memory to disk
(promoting hits back into memory), puts write both.  Sessions build the
tier automatically when given a ``cache_dir``.
"""

from __future__ import annotations

import json
import os
import pickle
import sqlite3
import threading
import time
import warnings
from pathlib import Path
from typing import Any, Dict, Hashable, Optional

from repro.engine.cache import SynthesisCache

__all__ = ["SCHEMA_VERSION", "DiskSynthesisCache", "TieredSynthesisCache"]

#: Bump whenever the stored value shape (or the key derivation) changes in a
#: way that makes old entries unusable; mismatched databases fall back to
#: empty instead of deserializing stale results.
SCHEMA_VERSION = 1

_DB_NAME = "synthesis-cache.sqlite"


def canonical_key(key: Hashable) -> str:
    """A stable text form of a cache key (tuples become JSON arrays)."""
    return json.dumps(key, sort_keys=True, default=repr)


class DiskSynthesisCache:
    """A sqlite-backed synthesis cache shared across processes.

    Hit/miss counters are per-instance (per-process); the entry set is the
    shared database.  All failure modes degrade to cache misses — a cache
    must accelerate runs, never abort them.
    """

    def __init__(self, directory, db_name: str = _DB_NAME) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / db_name
        self._lock = threading.Lock()
        self._connection: Optional[sqlite3.Connection] = None
        self.hits = 0
        self.misses = 0
        self.errors = 0
        #: Local estimate of the entry count, so the per-query stats path
        #: never runs COUNT(*); exact at open and after len(), drifts only
        #: on key overwrites and on other processes' concurrent writes.
        self._entry_estimate = 0
        self._open()
        self._entry_estimate = self._count_entries()

    # ------------------------------------------------------------------ #
    # Connection lifecycle
    # ------------------------------------------------------------------ #
    def _open(self) -> None:
        try:
            self._connection = self._initialise()
        except sqlite3.DatabaseError:
            self._quarantine()
            self._connection = self._initialise()

    def _initialise(self) -> sqlite3.Connection:
        connection = sqlite3.connect(str(self.path), timeout=30.0,
                                     check_same_thread=False)
        try:
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA synchronous=NORMAL")
            connection.execute("PRAGMA busy_timeout=30000")
            connection.execute(
                "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)")
            connection.execute(
                "CREATE TABLE IF NOT EXISTS entries ("
                " key TEXT PRIMARY KEY, value BLOB NOT NULL, created_at REAL NOT NULL)")
            row = connection.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'").fetchone()
            if row is None or row[0] != str(SCHEMA_VERSION):
                # Entries written under another schema are unusable; start
                # empty rather than deserializing stale shapes.
                connection.execute("DELETE FROM entries")
                connection.execute(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                    ("schema_version", str(SCHEMA_VERSION)))
            connection.commit()
        except BaseException:
            connection.close()
            raise
        return connection

    def _quarantine(self) -> None:
        """Move a damaged database aside and warn; the cache starts fresh."""
        if self._connection is not None:
            try:
                self._connection.close()
            except sqlite3.Error:
                pass
            self._connection = None
        quarantined = self.path.with_name(self.path.name + ".corrupt")
        try:
            os.replace(self.path, quarantined)
        except OSError:
            try:
                self.path.unlink()
            except OSError:
                pass
        for sidecar in (f"{self.path}-wal", f"{self.path}-shm"):
            try:
                os.unlink(sidecar)
            except OSError:
                pass
        warnings.warn(
            f"synthesis cache database {self.path} was unreadable; "
            f"quarantined to {quarantined} and starting empty",
            RuntimeWarning, stacklevel=3)

    def close(self) -> None:
        with self._lock:
            if self._connection is not None:
                try:
                    self._connection.close()
                except sqlite3.Error:
                    pass
                self._connection = None

    # ------------------------------------------------------------------ #
    # Cache protocol (mirrors SynthesisCache)
    # ------------------------------------------------------------------ #
    def get(self, key: Hashable) -> Optional[Any]:
        text_key = canonical_key(key)
        with self._lock:
            if self._connection is None:
                self.misses += 1
                return None
            try:
                row = self._connection.execute(
                    "SELECT value FROM entries WHERE key = ?", (text_key,)).fetchone()
            except sqlite3.Error:
                self.errors += 1
                self.misses += 1
                return None
            if row is None:
                self.misses += 1
                return None
            try:
                value = pickle.loads(row[0])
            except Exception:
                # An undeserializable entry is useless; drop it so the next
                # run recomputes and overwrites.
                self.errors += 1
                self.misses += 1
                try:
                    self._connection.execute(
                        "DELETE FROM entries WHERE key = ?", (text_key,))
                    self._connection.commit()
                    self._entry_estimate = max(0, self._entry_estimate - 1)
                except sqlite3.Error:
                    pass
                return None
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        text_key = canonical_key(key)
        try:
            blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            self.errors += 1
            return
        with self._lock:
            if self._connection is None:
                return
            try:
                self._connection.execute(
                    "INSERT OR REPLACE INTO entries (key, value, created_at) "
                    "VALUES (?, ?, ?)", (text_key, blob, time.time()))
                self._connection.commit()
                self._entry_estimate += 1
            except sqlite3.Error:
                self.errors += 1

    def clear(self) -> None:
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.errors = 0
            self._entry_estimate = 0
            if self._connection is None:
                return
            try:
                self._connection.execute("DELETE FROM entries")
                self._connection.commit()
            except sqlite3.Error:
                self.errors += 1

    def _count_entries(self) -> int:
        with self._lock:
            if self._connection is None:
                return 0
            try:
                row = self._connection.execute(
                    "SELECT COUNT(*) FROM entries").fetchone()
            except sqlite3.Error:
                return 0
            return int(row[0])

    def __len__(self) -> int:
        """Exact entry count (COUNT(*)); also refreshes the estimate."""
        count = self._count_entries()
        self._entry_estimate = count
        return count

    def stats(self) -> Dict[str, int]:
        """Counters for the per-query hot path.

        ``entries`` is the local estimate (no COUNT(*) table scan — sessions
        read stats on every mapping); call ``len(cache)`` for the exact
        shared count.
        """
        return {"hits": self.hits, "misses": self.misses,
                "entries": self._entry_estimate, "errors": self.errors}


class TieredSynthesisCache:
    """An in-memory LRU over a persistent disk tier.

    Reads fall through memory to disk and promote hits back into memory;
    writes go to both tiers.  ``stats()`` reports the combined view the
    session's counters expect (``hits``/``misses``/``entries``) plus the
    per-tier breakdown.
    """

    def __init__(self, memory: Optional[SynthesisCache] = None,
                 disk: Optional[DiskSynthesisCache] = None) -> None:
        if disk is None:
            raise ValueError("TieredSynthesisCache requires a disk tier; "
                             "use SynthesisCache alone for memory-only caching")
        self.memory = memory if memory is not None else SynthesisCache()
        self.disk = disk

    def get(self, key: Hashable) -> Optional[Any]:
        value = self.memory.get(key)
        if value is not None:
            return value
        value = self.disk.get(key)
        if value is not None:
            self.memory.put(key, value)
        return value

    def put(self, key: Hashable, value: Any) -> None:
        self.memory.put(key, value)
        self.disk.put(key, value)

    def clear(self) -> None:
        self.memory.clear()
        self.disk.clear()

    def close(self) -> None:
        self.disk.close()

    def __len__(self) -> int:
        return len(self.disk)

    def stats(self) -> Dict[str, int]:
        memory = self.memory.stats()
        disk = self.disk.stats()
        return {
            # Combined counters: a disk hit is still a cache hit, and only a
            # miss in *both* tiers is a true miss (every memory miss falls
            # through to the disk tier, where it is counted exactly once).
            "hits": memory["hits"] + disk["hits"],
            "misses": disk["misses"],
            "entries": disk["entries"],
            "memory_hits": memory["hits"],
            "memory_entries": memory["entries"],
            "disk_hits": disk["hits"],
            "disk_errors": disk["errors"],
        }
