"""Cross-machine distributed sweeps: a TCP coordinator and worker nodes.

``run_sweep`` shards a benchmark grid across local processes; this module
takes the same grid across machines while keeping the invariant every
parallel layer in this repo is pinned to: **distributed ≡ serial record
equality**.  The shape follows the classic cluster-computing playbook —
a coordinator owning the work queue, workers pulling shards when idle:

* **Wire format** — the PR 7 newline-delimited JSON protocol
  (requests carry ``id``/``op``, responses echo ``id`` and ``ok``) over
  plain TCP, with the service layer's large per-connection stream limit
  and overrun recovery.  Nothing pickled crosses the network: benchmarks,
  configs and session specs travel as their ``to_dict`` wire forms and
  results as :meth:`MappingRecord.to_dict` payloads.
* **Handshake** — workers open with ``hello`` carrying a shared token
  (compared via :func:`hmac.compare_digest`); the reply carries the
  :class:`SessionSpec`/:class:`ExperimentConfig` JSON the worker builds
  its :class:`MappingSession` from, plus warm-cache entries already
  produced by completed shards (late joiners start warm).
* **Work stealing** — workers pull the next shard when idle (``next``),
  renew a per-shard lease while solving (``heartbeat``), and stream the
  shard's records back (``result``).  The coordinator reaps expired
  leases and requeues their shards, so a dead or wedged worker's work is
  reassigned; a per-shard retry budget fails the sweep loudly instead of
  spinning forever.
* **Exactly-once merge** — shards are merged by shard id: the first
  complete result for a shard wins, later duplicates (a slow-but-alive
  worker racing its own reassignment) are acknowledged with
  ``accepted: false`` and discarded.  Records land in a slot array keyed
  by global input index, so the merged list preserves input order no
  matter which worker finished first — the same determinism argument as
  :func:`repro.engine.parallel.run_sweep`.
* **Artifacts + resume** — accepted shards are written as per-shard
  JSONL files under ``artifact_dir`` next to a grid-fingerprint
  manifest; a restarted coordinator with a matching manifest resumes
  from the completed shards instead of recomputing them.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import hmac
import json
import multiprocessing
import os
import secrets
import signal
import socket as socket_mod
import sys
import threading
import time
from collections import Counter, deque
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro.engine.parallel import SessionSpec, SweepResult
from repro.engine.service import (
    DEFAULT_STREAM_LIMIT,
    ServiceClient,
    _error_response,
    _readline_limited,
)
from repro.harness.runner import ExperimentConfig, MappingRecord, map_benchmark
from repro.workloads.generator import Microbenchmark

__all__ = ["PROTOCOL_VERSION", "DEFAULT_SHARD_SIZE", "DEFAULT_LEASE_TIMEOUT",
           "DEFAULT_RETRY_BUDGET", "CoordinatorUnreachable", "WorkerRejected",
           "DistributedSweepResult", "SweepCoordinator", "run_worker",
           "run_distributed_sweep", "parse_address"]

#: Bumped when the coordinator/worker message shapes change incompatibly;
#: the handshake carries it so mismatched nodes fail with a clear error.
PROTOCOL_VERSION = 1

DEFAULT_SHARD_SIZE = 4
DEFAULT_LEASE_TIMEOUT = 30.0
DEFAULT_RETRY_BUDGET = 3

MANIFEST_NAME = "MANIFEST.json"

_UNSET = object()


class CoordinatorUnreachable(ConnectionError):
    """The worker exhausted its reconnect budget without a coordinator."""


class WorkerRejected(RuntimeError):
    """The coordinator refused the handshake (bad token or protocol)."""


def parse_address(text: str) -> Tuple[str, int]:
    """``"HOST:PORT"`` → ``(host, port)`` (host defaults to loopback)."""
    host, sep, port = str(text).rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    return (host or "127.0.0.1", int(port))


@dataclass
class DistributedSweepResult(SweepResult):
    """A merged distributed sweep: everything :class:`SweepResult` carries
    plus the coordinator's scheduling telemetry (shards completed / stolen
    / retried, per-worker throughput, straggler p95)."""

    telemetry: Dict[str, Any] = field(default_factory=dict)


class _Lease:
    """One outstanding shard assignment (all mutation on the loop thread)."""

    __slots__ = ("shard_id", "conn_id", "worker", "deadline", "dispatched_at")

    def __init__(self, shard_id: int, conn_id: int, worker: str,
                 deadline: float, dispatched_at: float) -> None:
        self.shard_id = shard_id
        self.conn_id = conn_id
        self.worker = worker
        self.deadline = deadline
        self.dispatched_at = dispatched_at


class SweepCoordinator:
    """Serves sweep shards to TCP workers and merges their records.

    The asyncio server runs on a background thread; every piece of
    scheduling state (queue, leases, merge slots, telemetry) is touched
    only from the event-loop thread, so handlers need no locks.  The
    public surface — :meth:`start`, :meth:`wait`, :meth:`telemetry`,
    :meth:`close` — is safe to call from any thread.
    """

    def __init__(self, benchmarks: Sequence[Microbenchmark],
                 config: Optional[ExperimentConfig] = None,
                 session_spec: Optional[SessionSpec] = None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 token: Optional[str] = None,
                 shard_size: int = DEFAULT_SHARD_SIZE,
                 lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
                 retry_budget: int = DEFAULT_RETRY_BUDGET,
                 artifact_dir=None, cache_sync: bool = True,
                 stream_limit: int = DEFAULT_STREAM_LIMIT) -> None:
        self.benchmarks = list(benchmarks)
        if not self.benchmarks:
            raise ValueError("a distributed sweep needs at least one benchmark")
        self.config = config if config is not None else ExperimentConfig()
        self.spec = session_spec if session_spec is not None \
            else SessionSpec.from_config(self.config)
        self.host = host
        self.port = int(port)
        self.token = token if token is not None else secrets.token_hex(16)
        self.shard_size = max(1, int(shard_size))
        self.lease_timeout = float(lease_timeout)
        self.retry_budget = max(0, int(retry_budget))
        self.artifact_dir = Path(artifact_dir) if artifact_dir else None
        self.cache_sync = bool(cache_sync)
        self.stream_limit = int(stream_limit)

        self._shards: List[List[Tuple[int, Microbenchmark]]] = [
            list(enumerate(self.benchmarks))[start:start + self.shard_size]
            for start in range(0, len(self.benchmarks), self.shard_size)]
        self._queue: Deque[int] = deque(range(len(self._shards)))
        self._leases: Dict[int, _Lease] = {}
        self._completed: Dict[int, int] = {}
        self._retries: Dict[int, int] = {}
        self._merged: List[Optional[dict]] = [None] * len(self.benchmarks)
        self._worker_cache: Dict[str, Dict[str, int]] = {}
        self._worker_wins: Dict[str, Dict[str, int]] = {}
        self._worker_stats: Dict[str, Dict[str, float]] = {}
        self._shard_seconds: List[float] = []
        self._counters: Counter = Counter()
        self._cache_pool: Dict[str, str] = {}
        self._conns: set = set()
        self._next_conn = 0
        self._failure: Optional[str] = None
        self._result: Optional[DistributedSweepResult] = None
        self._done = threading.Event()
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_async: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> Tuple[str, int]:
        """Bind and serve on a background thread; returns (host, port)."""
        if self._thread is not None:
            raise RuntimeError("coordinator already started")
        if self.artifact_dir is not None:
            self._load_artifacts()
        self._thread = threading.Thread(target=self._run,
                                        name="lakeroad-coordinator",
                                        daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("coordinator thread failed to start")
        if self._startup_error is not None:
            self._thread.join(timeout=5.0)
            raise RuntimeError(
                f"coordinator could not bind {self.host}:{self.port}: "
                f"{self._startup_error}") from self._startup_error
        return (self.host, self.port)

    def wait(self, timeout: Optional[float] = None) -> DistributedSweepResult:
        """Block until every shard is merged (or the sweep fails)."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"distributed sweep incomplete after {timeout}s "
                f"({len(self._completed)}/{len(self._shards)} shards)")
        if self._failure is not None:
            raise RuntimeError(self._failure)
        assert self._result is not None
        return self._result

    def close(self, linger: float = 2.0) -> None:
        """Stop serving.  ``linger`` gives connected workers a moment to
        poll once more and see ``done`` instead of a reset connection."""
        if self._thread is None:
            return
        deadline = time.monotonic() + max(0.0, linger)
        while self._conns and time.monotonic() < deadline:
            time.sleep(0.05)
        if self._loop is not None and self._stop_async is not None \
                and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop_async.set)
        self._thread.join(timeout=30.0)

    def __enter__(self) -> "SweepCoordinator":
        if self._thread is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Event loop
    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_async = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._handler, self.host, self.port, limit=self.stream_limit)
        except OSError as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self.port = server.sockets[0].getsockname()[1]
        # Everything may already be merged (a full resume from artifacts).
        self._maybe_finish()
        reaper = asyncio.ensure_future(self._reaper())
        self._ready.set()
        try:
            await self._stop_async.wait()
        finally:
            reaper.cancel()
            server.close()
            await server.wait_closed()

    async def _reaper(self) -> None:
        interval = max(0.05, min(1.0, self.lease_timeout / 4.0))
        while True:
            await asyncio.sleep(interval)
            self._expire_leases()

    async def _handler(self, reader, writer) -> None:
        self._next_conn += 1
        conn_id = self._next_conn
        state = {"auth": False, "name": f"worker-{conn_id}"}
        try:
            while True:
                line, overrun = await _readline_limited(reader)
                if overrun:
                    writer.write(_error_response(
                        None, f"request line exceeded the "
                              f"{self.stream_limit}-byte stream limit"))
                    await writer.drain()
                    continue
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    message = json.loads(line)
                    if not isinstance(message, dict):
                        raise ValueError("request must be a JSON object")
                except ValueError as exc:
                    writer.write(_error_response(None, f"bad request: {exc}"))
                    await writer.drain()
                    continue
                response, close_after = self._dispatch(conn_id, state, message)
                writer.write((json.dumps(response) + "\n").encode())
                await writer.drain()
                if close_after:
                    break
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass
        finally:
            self._release_conn(conn_id)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # ------------------------------------------------------------------ #
    # Protocol (loop thread only)
    # ------------------------------------------------------------------ #
    def _dispatch(self, conn_id: int, state: dict,
                  message: dict) -> Tuple[dict, bool]:
        request_id = message.get("id")
        op = message.get("op")
        if op == "hello":
            return self._op_hello(conn_id, state, message, request_id)
        if not state["auth"]:
            return ({"id": request_id, "ok": False,
                     "error": "handshake required (send hello first)"}, True)
        if op == "next":
            return (self._op_next(conn_id, state, request_id), False)
        if op == "heartbeat":
            return (self._op_heartbeat(conn_id, message, request_id), False)
        if op == "result":
            return (self._op_result(state, message, request_id), False)
        if op == "ping":
            return ({"id": request_id, "ok": True, "pong": True}, False)
        return ({"id": request_id, "ok": False,
                 "error": f"unknown op {op!r}"}, False)

    def _op_hello(self, conn_id: int, state: dict, message: dict,
                  request_id) -> Tuple[dict, bool]:
        token = str(message.get("token", ""))
        if not hmac.compare_digest(token, self.token):
            return ({"id": request_id, "ok": False,
                     "error": "bad token"}, True)
        protocol = int(message.get("protocol", PROTOCOL_VERSION))
        if protocol != PROTOCOL_VERSION:
            return ({"id": request_id, "ok": False,
                     "error": f"protocol mismatch: coordinator speaks "
                              f"{PROTOCOL_VERSION}, worker {protocol}"}, True)
        state["auth"] = True
        worker = message.get("worker")
        if worker:
            state["name"] = str(worker)
        self._conns.add(conn_id)
        entries = []
        if self.cache_sync and self._cache_pool:
            entries = [[key, blob] for key, blob in self._cache_pool.items()]
        return ({"id": request_id, "ok": True,
                 "protocol": PROTOCOL_VERSION,
                 "spec": self.spec.to_dict(),
                 "config": self.config.to_dict(),
                 "shards": len(self._shards),
                 "total": len(self.benchmarks),
                 "shard_size": self.shard_size,
                 "lease_timeout": self.lease_timeout,
                 "resumed": int(self._counters["shards_resumed"]),
                 "cache_entries": entries}, False)

    def _op_next(self, conn_id: int, state: dict, request_id) -> dict:
        self._expire_leases()
        if self._failure is not None:
            return {"id": request_id, "ok": False, "error": self._failure}
        if len(self._completed) == len(self._shards):
            return {"id": request_id, "ok": True, "shard": None, "done": True}
        shard_id = None
        while self._queue:
            candidate = self._queue.popleft()
            if candidate not in self._completed:
                shard_id = candidate
                break
        if shard_id is None:
            return {"id": request_id, "ok": True, "shard": None,
                    "wait": max(0.05, min(1.0, self.lease_timeout / 4.0))}
        now = time.monotonic()
        self._leases[shard_id] = _Lease(shard_id, conn_id, state["name"],
                                        now + self.lease_timeout, now)
        items = [[index, benchmark.to_dict()]
                 for index, benchmark in self._shards[shard_id]]
        return {"id": request_id, "ok": True,
                "shard": {"id": shard_id, "items": items}}

    def _op_heartbeat(self, conn_id: int, message: dict, request_id) -> dict:
        try:
            shard_id = int(message.get("shard"))
        except (TypeError, ValueError):
            return {"id": request_id, "ok": False, "error": "bad shard id"}
        lease = self._leases.get(shard_id)
        if lease is not None and lease.conn_id == conn_id:
            lease.deadline = time.monotonic() + self.lease_timeout
            return {"id": request_id, "ok": True, "abandon": False}
        # Completed, reassigned, or never leased to this worker: tell the
        # worker to drop the shard (its result would be a duplicate).
        return {"id": request_id, "ok": True, "abandon": True}

    def _op_result(self, state: dict, message: dict, request_id) -> dict:
        if self._failure is not None:
            return {"id": request_id, "ok": False, "error": self._failure}
        try:
            shard_id = int(message.get("shard"))
            if not 0 <= shard_id < len(self._shards):
                raise ValueError(shard_id)
        except (TypeError, ValueError):
            return {"id": request_id, "ok": False, "error": "bad shard id"}
        if shard_id in self._completed:
            # Exactly-once merge: the first complete result won.
            self._counters["duplicate_results"] += 1
            return {"id": request_id, "ok": True,
                    "accepted": False, "duplicate": True}
        expected = {index for index, _ in self._shards[shard_id]}
        received: Dict[int, dict] = {}
        for entry in message.get("records") or []:
            try:
                index, data = entry
                index = int(index)
            except (TypeError, ValueError):
                continue
            if index in expected and isinstance(data, dict):
                received[index] = data
        lease = self._leases.pop(shard_id, None)
        if set(received) != expected:
            self._requeue(shard_id,
                          f"incomplete result from {state['name']} "
                          f"({len(received)}/{len(expected)} records)")
            return {"id": request_id, "ok": True, "accepted": False,
                    "error": "incomplete shard"}
        for index, data in received.items():
            self._merged[index] = data
        self._completed[shard_id] = len(received)
        # A stolen shard the original worker still finished first may sit
        # requeued; completing it must also pull it out of the queue.
        try:
            self._queue.remove(shard_id)
        except ValueError:
            pass
        now = time.monotonic()
        started = lease.dispatched_at if lease is not None else now
        duration = max(0.0, now - started)
        self._shard_seconds.append(duration)
        worker = state["name"]
        stats = self._worker_stats.setdefault(
            worker, {"shards": 0, "records": 0, "seconds": 0.0})
        stats["shards"] += 1
        stats["records"] += len(received)
        stats["seconds"] += duration
        self._worker_cache[worker] = dict(message.get("cache") or {})
        self._worker_wins[worker] = dict(message.get("wins") or {})
        if self.cache_sync:
            for entry in message.get("cache_entries") or []:
                try:
                    key, blob = entry
                except (TypeError, ValueError):
                    continue
                self._cache_pool[str(key)] = str(blob)
        if self.artifact_dir is not None:
            self._write_shard_artifact(shard_id, received)
        self._maybe_finish()
        return {"id": request_id, "ok": True, "accepted": True}

    # ------------------------------------------------------------------ #
    # Scheduling (loop thread only)
    # ------------------------------------------------------------------ #
    def _expire_leases(self) -> None:
        now = time.monotonic()
        for shard_id, lease in list(self._leases.items()):
            if lease.deadline < now:
                del self._leases[shard_id]
                self._counters["shards_stolen"] += 1
                self._requeue(shard_id,
                              f"lease expired on {lease.worker} "
                              f"(no heartbeat for {self.lease_timeout}s)")

    def _release_conn(self, conn_id: int) -> None:
        self._conns.discard(conn_id)
        for shard_id, lease in list(self._leases.items()):
            if lease.conn_id == conn_id:
                del self._leases[shard_id]
                self._requeue(shard_id,
                              f"worker {lease.worker} disconnected")

    def _requeue(self, shard_id: int, reason: str) -> None:
        if shard_id in self._completed:
            return
        self._retries[shard_id] = self._retries.get(shard_id, 0) + 1
        self._counters["shards_retried"] += 1
        if self._retries[shard_id] > self.retry_budget:
            self._fail(f"shard {shard_id} exhausted its retry budget "
                       f"({self.retry_budget}); last failure: {reason}")
            return
        # Front of the queue: a reassigned shard is the oldest work.
        self._queue.appendleft(shard_id)

    def _fail(self, message: str) -> None:
        if self._failure is None:
            self._failure = message
        self._done.set()

    def _maybe_finish(self) -> None:
        if self._failure is not None \
                or len(self._completed) != len(self._shards):
            return
        assert all(entry is not None for entry in self._merged), \
            "merge lost records despite all shards reporting complete"
        records = [MappingRecord.from_dict(entry) for entry in self._merged]
        cache_totals: Counter = Counter()
        for stats in self._worker_cache.values():
            cache_totals.update(stats)
        win_totals: Counter = Counter()
        for wins in self._worker_wins.values():
            win_totals.update(wins)
        self._seed_local_cache()
        self._result = DistributedSweepResult(
            records=records,
            cache_stats=dict(cache_totals),
            portfolio_wins=dict(win_totals),
            workers=max(1, len(self._worker_stats)),
            telemetry=self.telemetry())
        self._done.set()

    def _seed_local_cache(self) -> None:
        """Fold the pooled warm-cache entries into the coordinator's own
        disk cache, so a follow-up local run starts as warm as the fleet
        finished.  Best-effort: cache trouble never fails the sweep."""
        if not (self.cache_sync and self.spec.cache_dir and self._cache_pool):
            return
        try:
            from repro.engine.diskcache import DiskSynthesisCache

            cache = DiskSynthesisCache(self.spec.cache_dir)
            try:
                cache.import_entries(
                    (key, base64.b64decode(blob))
                    for key, blob in self._cache_pool.items())
            finally:
                cache.close()
        except Exception:  # noqa: BLE001 - cache is an accelerator only
            pass

    def telemetry(self) -> Dict[str, Any]:
        """A snapshot of the scheduling counters (thread-safe to read)."""
        durations = sorted(self._shard_seconds)
        p95 = durations[int(0.95 * (len(durations) - 1))] if durations else 0.0
        workers = {}
        for name, stats in self._worker_stats.items():
            seconds = stats["seconds"]
            workers[name] = {
                "shards": int(stats["shards"]),
                "records": int(stats["records"]),
                "seconds": round(seconds, 6),
                "records_per_second":
                    stats["records"] / seconds if seconds > 0 else 0.0,
            }
        return {
            "shards": len(self._shards),
            "shard_size": self.shard_size,
            "shards_completed": len(self._completed),
            "shards_resumed": int(self._counters["shards_resumed"]),
            "shards_stolen": int(self._counters["shards_stolen"]),
            "shards_retried": int(self._counters["shards_retried"]),
            "duplicate_results": int(self._counters["duplicate_results"]),
            "active_leases": len(self._leases),
            "straggler_p95_seconds": p95,
            "cache_entries_synced": len(self._cache_pool),
            "workers": workers,
        }

    # ------------------------------------------------------------------ #
    # Artifacts
    # ------------------------------------------------------------------ #
    def _fingerprint(self) -> str:
        payload = {
            "benchmarks": [benchmark.to_dict()
                           for benchmark in self.benchmarks],
            "config": self.config.to_dict(),
            "spec": self.spec.to_dict(),
            "shard_size": self.shard_size,
        }
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()).hexdigest()

    def _shard_path(self, shard_id: int) -> Path:
        return self.artifact_dir / f"shard-{shard_id:05d}.jsonl"

    def _write_shard_artifact(self, shard_id: int,
                              received: Dict[int, dict]) -> None:
        path = self._shard_path(shard_id)
        tmp = path.with_name(path.name + ".tmp")
        try:
            with tmp.open("w") as handle:
                for index in sorted(received):
                    handle.write(json.dumps(
                        {"index": index, "record": received[index]}) + "\n")
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass

    def _load_artifacts(self) -> None:
        """Resume completed shards from a previous coordinator's artifact
        directory; anything from a different grid is discarded."""
        self.artifact_dir.mkdir(parents=True, exist_ok=True)
        manifest_path = self.artifact_dir / MANIFEST_NAME
        fingerprint = self._fingerprint()
        manifest = None
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, ValueError):
            manifest = None
        if not (isinstance(manifest, dict)
                and manifest.get("fingerprint") == fingerprint):
            # Different grid (or first run): stale shard files must not
            # survive to be mistaken for this grid's results later.
            for stale in self.artifact_dir.glob("shard-*.jsonl"):
                try:
                    stale.unlink()
                except OSError:
                    pass
            manifest_path.write_text(json.dumps({
                "fingerprint": fingerprint,
                "total": len(self.benchmarks),
                "shards": len(self._shards),
                "shard_size": self.shard_size,
            }, indent=2) + "\n")
            return
        resumed = []
        for shard_id in range(len(self._shards)):
            expected = {index for index, _ in self._shards[shard_id]}
            received: Dict[int, dict] = {}
            try:
                with self._shard_path(shard_id).open() as handle:
                    for line in handle:
                        if not line.strip():
                            continue
                        entry = json.loads(line)
                        index = int(entry["index"])
                        if index in expected:
                            received[index] = entry["record"]
            except (OSError, ValueError, KeyError, TypeError):
                continue
            if set(received) != expected:
                continue  # partial artifact: recompute the shard
            for index, data in received.items():
                self._merged[index] = data
            self._completed[shard_id] = len(received)
            resumed.append(shard_id)
        self._counters["shards_resumed"] = len(resumed)
        self._queue = deque(shard_id for shard_id in self._queue
                            if shard_id not in self._completed)


# --------------------------------------------------------------------------- #
# Worker
# --------------------------------------------------------------------------- #
def run_worker(address, token: str, *, worker_name: Optional[str] = None,
               cache_dir=_UNSET, artifact_dir=None,
               heartbeat_interval: Optional[float] = None,
               reconnect_attempts: int = 5,
               reconnect_backoff: float = 0.25) -> Dict[str, int]:
    """Serve one worker node: pull shards, solve, stream records back.

    ``address`` is ``(host, port)`` or ``"host:port"``.  The session is
    built once from the coordinator's spec; ``cache_dir`` (when passed)
    overrides the spec's path for machines with different filesystems.
    Connection losses retry with bounded exponential backoff —
    :class:`CoordinatorUnreachable` when the budget runs out,
    :class:`WorkerRejected` immediately on a refused handshake.  Returns
    counters: shards/records contributed, duplicates, abandons.
    """
    if isinstance(address, str):
        address = parse_address(address)
    address = (str(address[0]), int(address[1]))
    name = worker_name or f"{socket_mod.gethostname()}-{os.getpid()}"
    artifact_dir = Path(artifact_dir) if artifact_dir else None
    if artifact_dir is not None:
        artifact_dir.mkdir(parents=True, exist_ok=True)
    stats: Dict[str, int] = {"shards": 0, "records": 0, "abandoned": 0,
                             "duplicates": 0, "reconnects": 0}
    session = None
    config: Optional[ExperimentConfig] = None
    disk = None
    watermark = 0.0
    attempts = 0

    def _sleep_backoff() -> None:
        time.sleep(min(reconnect_backoff * (2 ** max(0, attempts - 1)), 5.0))

    def _work_loop(client: ServiceClient, beat_every: float) -> bool:
        """Pull/solve/report until the coordinator says done (True) or the
        connection dies (an exception the outer loop turns into a retry)."""
        nonlocal watermark
        while True:
            response = client.request({"op": "next"}, timeout=30.0)
            if not response.get("ok"):
                raise RuntimeError(f"coordinator refused work: "
                                   f"{response.get('error', 'unknown error')}")
            shard = response.get("shard")
            if shard is None:
                if response.get("done"):
                    return True
                time.sleep(min(float(response.get("wait", 0.25)), 2.0))
                continue
            shard_id = int(shard["id"])
            items = [(int(index), Microbenchmark.from_dict(data))
                     for index, data in shard["items"]]
            abandoned = threading.Event()
            stop_beat = threading.Event()

            def _beat() -> None:
                while not stop_beat.wait(beat_every):
                    try:
                        reply = client.request(
                            {"op": "heartbeat", "shard": shard_id},
                            timeout=10.0)
                    except Exception:  # noqa: BLE001 - connection trouble
                        return  # the main loop will hit it too
                    if not reply.get("ok") or reply.get("abandon"):
                        abandoned.set()
                        return

            beat = threading.Thread(target=_beat, name="lakeroad-heartbeat",
                                    daemon=True)
            beat.start()
            records: List[Tuple[int, dict]] = []
            try:
                for index, benchmark in items:
                    if abandoned.is_set():
                        break
                    record = map_benchmark(session, benchmark, config)
                    records.append((index, record.to_dict()))
            finally:
                stop_beat.set()
                beat.join(timeout=10.0)
            if abandoned.is_set() and len(records) < len(items):
                # The shard was reassigned mid-solve; drop the partial work.
                stats["abandoned"] += 1
                continue
            if artifact_dir is not None:
                _write_worker_artifact(artifact_dir, shard_id, records)
            cache_entries: List[List[str]] = []
            if disk is not None:
                rows = disk.export_entries(since=watermark)
                if rows:
                    watermark = max(created for _, _, created in rows)
                    cache_entries = [
                        [key, base64.b64encode(blob).decode("ascii")]
                        for key, blob, _ in rows]
            reply = client.request(
                {"op": "result", "shard": shard_id, "records": records,
                 "cache": dict(session.cache_stats()),
                 "wins": dict(session.portfolio_wins()),
                 "cache_entries": cache_entries}, timeout=120.0)
            if not reply.get("ok"):
                raise RuntimeError(f"coordinator rejected shard {shard_id}: "
                                   f"{reply.get('error', 'unknown error')}")
            if reply.get("accepted"):
                stats["shards"] += 1
                stats["records"] += len(records)
            else:
                stats["duplicates"] += 1

    try:
        while True:
            try:
                client = ServiceClient(address, connect_timeout=1.0)
            except OSError as exc:
                attempts += 1
                if attempts > reconnect_attempts:
                    raise CoordinatorUnreachable(
                        f"no coordinator at {address[0]}:{address[1]} "
                        f"after {attempts} attempt(s): {exc}") from exc
                _sleep_backoff()
                continue
            try:
                hello = client.request(
                    {"op": "hello", "token": token, "worker": name,
                     "protocol": PROTOCOL_VERSION}, timeout=30.0)
                if not hello.get("ok"):
                    raise WorkerRejected(
                        hello.get("error", "handshake rejected"))
                attempts = 0
                if session is None:
                    spec = SessionSpec.from_dict(hello["spec"])
                    if cache_dir is not _UNSET:
                        spec = replace(spec, cache_dir=cache_dir)
                    config = ExperimentConfig.from_dict(hello["config"])
                    session = spec.build()
                    disk = getattr(session.cache, "disk", None)
                entries = hello.get("cache_entries") or []
                if disk is not None and entries:
                    disk.import_entries(
                        (str(key), base64.b64decode(blob))
                        for key, blob in entries)
                    watermark = max(watermark, time.time())
                beat_every = heartbeat_interval if heartbeat_interval \
                    else max(0.05, min(10.0,
                                       float(hello.get("lease_timeout",
                                                       DEFAULT_LEASE_TIMEOUT))
                                       / 3.0))
                if _work_loop(client, beat_every):
                    return stats
                stats["reconnects"] += 1
            except WorkerRejected:
                raise
            except (ConnectionError, OSError, FutureTimeoutError) as exc:
                attempts += 1
                stats["reconnects"] += 1
                if attempts > reconnect_attempts:
                    raise CoordinatorUnreachable(
                        f"lost the coordinator at {address[0]}:{address[1]} "
                        f"after {attempts} attempt(s): {exc}") from exc
                _sleep_backoff()
            finally:
                client.close()
    finally:
        if session is not None:
            session.close()


def _write_worker_artifact(artifact_dir: Path, shard_id: int,
                           records: Sequence[Tuple[int, dict]]) -> None:
    """A worker-local copy of the shard's records (same format as the
    coordinator's merge artifacts), for post-mortems on the worker side."""
    path = artifact_dir / f"shard-{shard_id:05d}.jsonl"
    tmp = path.with_name(path.name + ".tmp")
    try:
        with tmp.open("w") as handle:
            for index, record in sorted(records):
                handle.write(json.dumps(
                    {"index": index, "record": record}) + "\n")
        os.replace(tmp, path)
    except OSError:
        try:
            tmp.unlink()
        except OSError:
            pass


# --------------------------------------------------------------------------- #
# Loopback fleet: the whole topology on one machine
# --------------------------------------------------------------------------- #
def _local_worker_main(address: Tuple[str, int], token: str,
                       name: str) -> None:
    """Entry point for loopback worker processes (module-level so it
    survives both fork and spawn start methods)."""
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (OSError, ValueError):  # pragma: no cover - exotic platforms
        pass
    try:
        run_worker(address, token, worker_name=name)
    except Exception:  # noqa: BLE001 - exit code is the report
        sys.exit(1)


def run_distributed_sweep(benchmarks: Sequence[Microbenchmark],
                          config: Optional[ExperimentConfig] = None,
                          workers: int = 2,
                          session_spec: Optional[SessionSpec] = None, *,
                          shard_size: int = DEFAULT_SHARD_SIZE,
                          lease_timeout: float = 15.0,
                          retry_budget: int = DEFAULT_RETRY_BUDGET,
                          artifact_dir=None,
                          timeout: float = 600.0) -> DistributedSweepResult:
    """The full coordinator/worker topology over loopback TCP.

    Spawns ``workers`` local worker processes against an in-process
    coordinator — the bench's distributed section, the failure-matrix
    tests and the CI smoke job all drive this one entry point.
    """
    coordinator = SweepCoordinator(
        benchmarks, config, session_spec, shard_size=shard_size,
        lease_timeout=lease_timeout, retry_budget=retry_budget,
        artifact_dir=artifact_dir)
    coordinator.start()
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        context = multiprocessing.get_context()
    processes = [
        context.Process(target=_local_worker_main,
                        args=((coordinator.host, coordinator.port),
                              coordinator.token, f"local-{rank}"),
                        daemon=True)
        for rank in range(max(1, int(workers)))]
    for process in processes:
        process.start()
    try:
        result = coordinator.wait(timeout=timeout)
    finally:
        for process in processes:
            process.join(timeout=15.0)
        for process in processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        coordinator.close()
    return result
