"""Process-level parallel execution: sharded sweeps over worker sessions.

The paper's evaluation is embarrassingly parallel — thousands of
independent (workload × architecture) synthesis queries — but the harness
was single-process.  This module shards a benchmark list across a
:class:`~concurrent.futures.ProcessPoolExecutor`:

* each worker owns its own :class:`repro.engine.session.MappingSession`,
  built from a picklable :class:`SessionSpec` (sessions themselves hold
  sqlite handles, thread locks and solver state and never cross a process
  boundary);
* results travel back as :meth:`MappingRecord.to_dict` payloads tagged
  with their input index, and are merged **deterministically**: the merged
  list preserves the input benchmark order exactly, regardless of which
  worker finished first;
* per-worker cache and portfolio statistics are summed into one aggregate.

``workers=1`` runs the very same per-benchmark code path
(:func:`repro.harness.runner.map_benchmark`) in-process, so the serial
sweep is the degenerate case of the sharded one rather than a separate
implementation.  A shared ``cache_dir`` (see
:mod:`repro.engine.diskcache`) lets workers — and later runs — reuse each
other's synthesis results.
"""

from __future__ import annotations

import multiprocessing
import signal
from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.runner import (
    ExperimentConfig,
    MappingRecord,
    map_benchmark,
)
from repro.workloads.generator import Microbenchmark

__all__ = ["SessionSpec", "SweepResult", "SweepInterrupted", "run_sweep",
           "run_lakeroad_parallel"]


class SweepInterrupted(RuntimeError):
    """A sweep was interrupted (SIGINT/SIGTERM) but drained cleanly.

    ``result`` holds the completed records (in input order) and the
    statistics gathered before the interrupt: workers finished their
    in-flight benchmark, closed their sessions (flushing disk-cache
    lifetime counters) and exited — no orphan processes, no quarantined
    databases, just a shorter record list.
    """

    def __init__(self, result: "SweepResult") -> None:
        super().__init__(
            f"sweep interrupted after {len(result.records)} record(s)")
        self.result = result


@dataclass(frozen=True)
class SessionSpec:
    """A picklable recipe for building equivalent sessions in workers.

    Worker processes cannot receive a live :class:`MappingSession`; they
    receive this spec and build their own.  The spec is also what makes a
    parallel sweep reproducible: every worker's session is configured
    identically.
    """

    portfolio: str = "thread"
    cache_dir: Optional[str] = None
    enable_cache: bool = True
    incremental: bool = False
    incremental_verify: bool = False
    random_probes: int = 32

    @classmethod
    def from_config(cls, config: ExperimentConfig) -> "SessionSpec":
        return cls(portfolio=config.portfolio, cache_dir=config.cache_dir,
                   incremental=config.incremental,
                   incremental_verify=config.incremental_verify,
                   random_probes=config.random_probes)

    def to_dict(self) -> Dict[str, object]:
        """The JSON wire form: the distributed handshake ships this
        instead of a pickle, so coordinator and workers need not share a
        pickle protocol (or trust each other's bytestreams)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SessionSpec":
        """Rebuild from the wire form; unknown keys from newer peers are
        ignored so mixed-version fleets degrade instead of crashing."""
        known = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in data.items()
                      if key in known})

    def build(self):
        from repro.engine.session import MappingSession

        return MappingSession(portfolio=self.portfolio,
                              cache_dir=self.cache_dir,
                              enable_cache=self.enable_cache,
                              incremental=self.incremental,
                              incremental_verify=self.incremental_verify,
                              random_probes=self.random_probes)


@dataclass
class SweepResult:
    """A merged sharded sweep: ordered records plus aggregated statistics."""

    records: List[MappingRecord]
    #: Summed per-worker session cache counters.  Hit/miss counters add up
    #: exactly; ``entries`` sums each worker's end-of-shard view, so with a
    #: shared disk cache the same persistent entry can be counted by every
    #: worker that sees it.
    cache_stats: Dict[str, int] = field(default_factory=dict)
    #: Summed per-worker portfolio first-answer win counts.
    portfolio_wins: Dict[str, int] = field(default_factory=dict)
    workers: int = 1

    @property
    def record_cache_hits(self) -> int:
        """How many records were served from a synthesis cache."""
        return sum(1 for record in self.records if record.cache_hit)

    @property
    def hit_rate(self) -> float:
        return self.record_cache_hits / len(self.records) if self.records else 0.0

    @property
    def clauses_retained(self) -> int:
        """Learned clauses the incremental sessions carried across CEGIS
        iterations, summed over the records that actually ran synthesis
        (cache hits replay the original outcome's counters and would
        otherwise claim solver work that never happened this run)."""
        return sum(record.clauses_retained for record in self.records
                   if not record.cache_hit)

    @property
    def solver_restarts(self) -> int:
        """Budget-aware incremental-session restarts, summed over the
        records that actually ran synthesis this run."""
        return sum(record.solver_restarts for record in self.records
                   if not record.cache_hit)

    @property
    def verify_clauses_retained(self) -> int:
        """Learned clauses the incremental verify sessions carried across
        CEGIS iterations, summed over the records that actually ran
        synthesis this run."""
        return sum(record.verify_clauses_retained for record in self.records
                   if not record.cache_hit)

    @property
    def cores_pruned(self) -> int:
        """Verification-failure cores turned into candidate-pruning
        blocking constraints, summed over the records that actually ran
        synthesis this run."""
        return sum(record.cores_pruned for record in self.records
                   if not record.cache_hit)

    @property
    def clauses_deleted(self) -> int:
        """Learned clauses dropped by clause-DB reduction, summed over the
        records that actually ran synthesis this run."""
        return sum(record.clauses_deleted for record in self.records
                   if not record.cache_hit)

    @property
    def db_size_peak(self) -> int:
        """Largest learned database any record's persistent sessions
        carried this run (the sweep's solver-memory high-water mark)."""
        return max((record.db_size_peak for record in self.records
                    if not record.cache_hit), default=0)

    @property
    def propagations(self) -> int:
        """Trail literals unit-propagated by the warm solver sessions,
        summed over the records that actually ran synthesis this run."""
        return sum(record.propagations for record in self.records
                   if not record.cache_hit)

    @property
    def watcher_visits(self) -> int:
        """Watcher entries examined during those propagations, summed over
        the records that actually ran synthesis this run."""
        return sum(record.watcher_visits for record in self.records
                   if not record.cache_hit)

    @property
    def solver_solve_seconds(self) -> float:
        """Wall seconds the non-cached records spent inside the SAT
        solver (the propagation-throughput denominator)."""
        return sum(record.solver_solve_seconds for record in self.records
                   if not record.cache_hit)

    @property
    def propagations_per_second(self) -> float:
        """Sweep-wide propagation throughput: total propagations over
        total solver seconds (not a mean of per-record rates, so long
        solves weigh in proportion to the time they actually took)."""
        seconds = self.solver_solve_seconds
        return self.propagations / seconds if seconds > 0 else 0.0

    @property
    def watcher_visits_per_propagation(self) -> float:
        """Mean watcher entries examined per propagated literal."""
        props = self.propagations
        return self.watcher_visits / props if props else 0.0

    @property
    def probe_lanes_evaluated(self) -> int:
        """Packed random-probe assignments evaluated by the bit-parallel
        fast layers, summed over the records that actually ran synthesis
        this run."""
        return sum(record.probe_lanes_evaluated for record in self.records
                   if not record.cache_hit)

    @property
    def probe_hits(self) -> int:
        """Probe batches that found a satisfying lane (candidate or
        counterexample), summed over the records that actually ran
        synthesis this run."""
        return sum(record.probe_hits for record in self.records
                   if not record.cache_hit)

    @property
    def prefilter_cex_found(self) -> int:
        """Verification counterexamples the packed random-simulation
        pre-filter caught without bit-blasting, summed over the records
        that actually ran synthesis this run."""
        return sum(record.prefilter_cex_found for record in self.records
                   if not record.cache_hit)

    def outcome_counts(self) -> Dict[str, int]:
        counts: Counter = Counter(record.outcome for record in self.records)
        return dict(counts)


#: Cooperative stop flag for graceful sweep shutdown.  Created in the
#: parent before the pool forks and inherited by the workers (it never
#: crosses a pickle boundary, so it stays compatible with executor-task
#: pickling); ``None`` on platforms without fork, where interrupts fall
#: back to the executor's own teardown.
_STOP_EVENT = None


def _worker_initializer() -> None:
    """Pool workers ignore SIGINT/SIGTERM: the parent coordinates shutdown
    via :data:`_STOP_EVENT`, and a signal delivered mid-sqlite-write would
    quarantine the shared synthesis cache (``*.corrupt``)."""
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
    except (OSError, ValueError):  # pragma: no cover - exotic platforms
        pass


def _run_shard(spec: SessionSpec, config: ExperimentConfig,
               items: Sequence[Tuple[int, Microbenchmark]]) -> dict:
    """Worker body: map one shard on a private session.

    Returns plain dicts only — the payload crosses the process boundary, so
    records ship in their :meth:`MappingRecord.to_dict` wire format keyed
    by original input index.  If the parent requests a stop the shard
    drains: the in-flight benchmark finishes, the rest are skipped, and the
    ``with`` exit closes the session (flushing cache counters) as usual.
    """
    with spec.build() as session:
        records = []
        for index, benchmark in items:
            if _STOP_EVENT is not None and _STOP_EVENT.is_set():
                break
            records.append((index,
                            map_benchmark(session, benchmark, config).to_dict()))
        return {
            "records": records,
            "cache": dict(session.cache_stats()),
            "wins": dict(session.portfolio_wins()),
        }


def _pool_context():
    """Prefer ``fork`` (cheap, inherits the warm interpreter); fall back to
    the platform default where it does not exist."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def run_sweep(benchmarks: Sequence[Microbenchmark],
              config: Optional[ExperimentConfig] = None,
              workers: Optional[int] = None,
              session=None,
              session_spec: Optional[SessionSpec] = None) -> SweepResult:
    """Run a (possibly sharded) Lakeroad sweep and aggregate statistics.

    ``workers`` defaults to ``config.workers``; 1 runs in-process on
    ``session`` (built from ``session_spec``/``config`` when omitted).
    With more workers the benchmarks are dealt round-robin across shards —
    widths (and therefore synthesis costs) trend upward through enumeration
    order, so interleaving balances the shards — and the merged records are
    returned in input order.

    The returned :class:`SweepResult` aggregates per-record solver
    telemetry over the designs that actually ran synthesis this run
    (cache hits replay archived counters and are excluded): learned
    clauses retained/deleted, budget-aware restarts, pruning cores, and
    ``db_size_peak`` — the learned-database high-water mark that the
    solver's LBD clause reduction keeps bounded on long sweeps.  On paper
    scale enumerations this is the number to watch: without reduction the
    persistent sessions' watch lists grow monotonically with every CEGIS
    iteration a sweep survives.
    """
    config = config or ExperimentConfig()
    benchmarks = list(benchmarks)
    if workers is None:
        workers = config.workers
    workers = max(1, int(workers))
    workers = min(workers, len(benchmarks)) if benchmarks else 1
    spec = session_spec if session_spec is not None else SessionSpec.from_config(config)

    if workers == 1:
        own_session = session is None
        if own_session:
            session = spec.build()
        try:
            records = []
            try:
                for benchmark in benchmarks:
                    records.append(map_benchmark(session, benchmark, config))
            except KeyboardInterrupt:
                # Drain semantics for the serial case: keep what completed;
                # the finally below closes the session, flushing the disk
                # cache's lifetime counters.
                raise SweepInterrupted(SweepResult(
                    records=records,
                    cache_stats=dict(session.cache_stats()),
                    portfolio_wins=dict(session.portfolio_wins()),
                    workers=1)) from None
            return SweepResult(records=records,
                               cache_stats=dict(session.cache_stats()),
                               portfolio_wins=dict(session.portfolio_wins()),
                               workers=1)
        finally:
            if own_session:
                session.close()

    if session is not None:
        raise ValueError("an in-memory session cannot be shared across worker "
                         "processes; pass a SessionSpec (or config.cache_dir) "
                         "instead")

    shards: List[List[Tuple[int, Microbenchmark]]] = [[] for _ in range(workers)]
    for index, benchmark in enumerate(benchmarks):
        shards[index % workers].append((index, benchmark))

    merged: List[Optional[MappingRecord]] = [None] * len(benchmarks)
    cache_totals: Counter = Counter()
    win_totals: Counter = Counter()

    def _merge(payload: dict) -> None:
        for index, data in payload["records"]:
            merged[index] = MappingRecord.from_dict(data)
        cache_totals.update(payload["cache"])
        win_totals.update(payload["wins"])

    global _STOP_EVENT
    context = _pool_context()
    stop_event = context.Event() if context is not None else None
    _STOP_EVENT = stop_event
    interrupted = False
    try:
        with ProcessPoolExecutor(max_workers=workers, mp_context=context,
                                 initializer=_worker_initializer) as pool:
            futures = [pool.submit(_run_shard, spec, config, shard)
                       for shard in shards]
            try:
                for future in futures:
                    _merge(future.result())
            except KeyboardInterrupt:
                # Graceful drain: tell workers to stop after their current
                # item, then collect every shard's partial payload.  The
                # workers ignore the terminal's SIGINT, so they are still
                # alive to finish and flush their sessions.
                interrupted = True
                if stop_event is not None:
                    stop_event.set()
                for future in futures:
                    try:
                        _merge(future.result(timeout=600))
                    except Exception:  # noqa: BLE001 - partial drain
                        pass
    finally:
        _STOP_EVENT = None

    if interrupted:
        raise SweepInterrupted(SweepResult(
            records=[record for record in merged if record is not None],
            cache_stats=dict(cache_totals),
            portfolio_wins=dict(win_totals),
            workers=workers))

    assert all(record is not None for record in merged), \
        "sharding lost records (worker returned a partial shard)"
    return SweepResult(records=merged,  # type: ignore[arg-type]
                       cache_stats=dict(cache_totals),
                       portfolio_wins=dict(win_totals),
                       workers=workers)


def run_lakeroad_parallel(benchmarks: Sequence[Microbenchmark],
                          config: Optional[ExperimentConfig] = None,
                          workers: Optional[int] = None,
                          session_spec: Optional[SessionSpec] = None
                          ) -> List[MappingRecord]:
    """The sharded sweep as a drop-in for :func:`run_lakeroad`.

    Returns the merged records in input order; ``workers=1`` is the serial
    run on one in-process session.  Use :func:`run_sweep` when the
    aggregated cache/portfolio statistics are needed too.
    """
    return run_sweep(benchmarks, config, workers=workers,
                     session_spec=session_spec).records
