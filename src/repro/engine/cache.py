"""A keyed, memoizing synthesis cache.

Repeated ``map_verilog`` calls and harness sweeps frequently re-synthesize
the same (design, architecture, template, budget) combination — e.g. the
completeness and timing experiments run the identical workloads.  The cache
keys on a *canonical fingerprint* of the design program (node ids are
globally unique per process, so the raw graph cannot be hashed directly),
plus the architecture, template, bounded-model-checking window and budget.

The cache is in-memory and bounded (LRU eviction); an on-disk variant is a
ROADMAP follow-on.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional, Tuple

from repro.core.lang import (
    BVNode,
    HoleNode,
    OpNode,
    PrimNode,
    Program,
    RegNode,
    VarNode,
)

__all__ = ["SynthesisCache", "program_fingerprint"]


def program_fingerprint(program: Program) -> str:
    """A canonical hash of a program, stable across builder instances.

    Nodes are renumbered in a deterministic traversal from the root, so two
    structurally identical programs produced by different builders (whose
    global ids differ) fingerprint identically.  Register feedback is
    handled with back-references to the traversal index.
    """
    digest = hashlib.sha256()
    order: Dict[int, int] = {}
    # Explicit work stack (not recursion): deep operand chains — e.g. long
    # reduction trees in imported designs — would otherwise overflow
    # Python's recursion limit.  Entries are either raw bytes to emit or a
    # node id to expand; expansion pushes continuations in reverse so the
    # emitted byte stream is a deterministic preorder.
    stack: list = [program.root]

    while stack:
        item = stack.pop()
        if isinstance(item, bytes):
            digest.update(item)
            continue
        node_id = item
        if node_id in order:
            digest.update(b"ref %d;" % order[node_id])
            continue
        order[node_id] = len(order)
        node = program[node_id]
        if isinstance(node, BVNode):
            digest.update(b"bv %d %d;" % (node.width, node.value))
        elif isinstance(node, VarNode):
            digest.update(f"var {node.name} {node.width};".encode())
        elif isinstance(node, HoleNode):
            digest.update(f"hole {node.name} {node.width};".encode())
        elif isinstance(node, OpNode):
            digest.update(f"op {node.op} {node.width} {node.params};".encode())
            stack.extend(reversed(node.operands))
        elif isinstance(node, RegNode):
            digest.update(b"reg %d %d;" % (node.width, node.init))
            stack.append(node.data)
        elif isinstance(node, PrimNode):
            module = node.metadata.module_name if node.metadata else ""
            digest.update(f"prim {module} {node.width};".encode())
            # Primitive semantics programs are small and non-recursive, so
            # one level of direct recursion per Prim is safe.
            semantics = program_fingerprint(node.semantics).encode()
            continuations: list = []
            for name, bound_id in node.bindings:
                continuations.append(f"bind {name};".encode())
                continuations.append(bound_id)
            continuations.append(b"sem " + semantics + b";")
            stack.extend(reversed(continuations))
        else:  # pragma: no cover - exhaustive over ℒlr node kinds
            raise TypeError(f"cannot fingerprint node type {type(node).__name__}")

    return digest.hexdigest()


class SynthesisCache:
    """An LRU cache of mapping results with hit/miss counters.

    Thread-safe: harness sweeps may run mapping sessions from worker
    threads against one shared cache.
    """

    def __init__(self, max_entries: int = 1024) -> None:
        self.max_entries = max_entries
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(design_fingerprint: str, architecture: str, template: str,
            budget_key: Optional[float], extra_cycles: int,
            validate: bool, random_probes: int = 32) -> Tuple:
        # ``random_probes`` changes which CEGIS trajectory runs (probe-found
        # models are not canonicalized), so results solved under different
        # probe budgets must not alias.
        return (design_fingerprint, architecture, template, budget_key,
                extra_cycles, validate, random_probes)

    def get(self, key: Hashable) -> Optional[Any]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "entries": len(self._entries)}
