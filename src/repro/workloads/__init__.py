"""Microbenchmark workloads reproducing the paper's design enumeration."""

from repro.workloads.generator import (
    Microbenchmark,
    WorkloadSpec,
    enumerate_workloads,
    workload_counts,
    sample_workloads,
)

__all__ = [
    "Microbenchmark",
    "WorkloadSpec",
    "enumerate_workloads",
    "workload_counts",
    "sample_workloads",
]
