"""The microbenchmark enumeration of Section 5.1.

For each architecture the paper enumerates the designs that should map to a
single DSP according to the primitive's configuration manual:

* **Xilinx UltraScale+** (DSP48E2): all permutations of ``((a ± b) * c) ⊙ d``
  with ``⊙ ∈ {&, |, ^, ~^, +, -}``, plus ``a * b`` and ``(a * b) ± c``;
  pipelined 0–3 stages; bitwidths 8–18; signed and unsigned.
  → 15 forms × 4 stage counts × 11 widths × 2 = **1320** designs.
* **Lattice ECP5** (MULT18X18C/ALU54A): ``(a * b) ⊙ c`` with
  ``⊙ ∈ {&, |, ^, +, -}`` plus ``a * b``; 0–2 stages; 8–18 bits; signed and
  unsigned.  → 6 × 3 × 11 × 2 = **396** designs.
* **Intel Cyclone 10 LP** (mac_mult): ``a * b``; 0–2 stages; 8–18 bits;
  signed and unsigned.  → 1 × 3 × 11 × 2 = **66** designs.

Each microbenchmark carries its behavioral Verilog text (generated here and
imported through the same frontend a user would use) plus the metadata the
harness and the baselines need.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["WorkloadSpec", "Microbenchmark", "enumerate_workloads", "workload_counts",
           "sample_workloads", "XILINX_FORMS", "LATTICE_FORMS", "INTEL_FORMS"]


@dataclass(frozen=True)
class WorkloadSpec:
    """One design form, e.g. ``((a + b) * c) & d``."""

    name: str
    expression: str          # Verilog expression over a, b, c, d
    inputs: Sequence[str]    # which of a..d the form uses
    has_preadd: bool = False
    preadd_subtract: bool = False
    post_op: Optional[str] = None  # Verilog operator applied after the multiply

    def to_dict(self) -> Dict[str, object]:
        """The JSON wire form (the distributed sweep ships benchmarks as
        plain dicts, not pickles)."""
        return {"name": self.name, "expression": self.expression,
                "inputs": list(self.inputs), "has_preadd": self.has_preadd,
                "preadd_subtract": self.preadd_subtract,
                "post_op": self.post_op}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "WorkloadSpec":
        return cls(name=data["name"], expression=data["expression"],
                   inputs=tuple(data["inputs"]),
                   has_preadd=bool(data.get("has_preadd", False)),
                   preadd_subtract=bool(data.get("preadd_subtract", False)),
                   post_op=data.get("post_op"))


def _xilinx_forms() -> List[WorkloadSpec]:
    forms: List[WorkloadSpec] = []
    post_ops = [("and", "&"), ("or", "|"), ("xor", "^"), ("xnor", "~^"),
                ("add", "+"), ("sub", "-")]
    for pre_name, pre_symbol in (("add", "+"), ("sub", "-")):
        for post_name, post_symbol in post_ops:
            forms.append(WorkloadSpec(
                name=f"pre{pre_name}_mul_{post_name}",
                expression=f"((a {pre_symbol} b) * c) {post_symbol} d",
                inputs=("a", "b", "c", "d"),
                has_preadd=True,
                preadd_subtract=(pre_name == "sub"),
                post_op=post_name,
            ))
    forms.append(WorkloadSpec("mul", "a * b", ("a", "b")))
    forms.append(WorkloadSpec("mul_add", "(a * b) + c", ("a", "b", "c"), post_op="add"))
    forms.append(WorkloadSpec("mul_sub", "(a * b) - c", ("a", "b", "c"), post_op="sub"))
    return forms


def _lattice_forms() -> List[WorkloadSpec]:
    forms: List[WorkloadSpec] = []
    for post_name, post_symbol in (("and", "&"), ("or", "|"), ("xor", "^"),
                                   ("add", "+"), ("sub", "-")):
        forms.append(WorkloadSpec(
            name=f"mul_{post_name}",
            expression=f"(a * b) {post_symbol} c",
            inputs=("a", "b", "c"),
            post_op=post_name,
        ))
    forms.append(WorkloadSpec("mul", "a * b", ("a", "b")))
    return forms


def _intel_forms() -> List[WorkloadSpec]:
    return [WorkloadSpec("mul", "a * b", ("a", "b"))]


XILINX_FORMS = _xilinx_forms()
LATTICE_FORMS = _lattice_forms()
INTEL_FORMS = _intel_forms()

#: Per-architecture enumeration parameters (forms, stage counts, widths).
ARCHITECTURE_WORKLOADS = {
    "xilinx-ultrascale-plus": (XILINX_FORMS, range(0, 4), range(8, 19)),
    "lattice-ecp5": (LATTICE_FORMS, range(0, 3), range(8, 19)),
    "intel-cyclone10lp": (INTEL_FORMS, range(0, 3), range(8, 19)),
}


@dataclass
class Microbenchmark:
    """One concrete microbenchmark: a form at a width, depth and signedness."""

    architecture: str
    form: WorkloadSpec
    width: int
    stages: int
    signed: bool
    name: str = field(init=False)
    verilog: str = field(init=False)

    def __post_init__(self) -> None:
        sign_tag = "s" if self.signed else "u"
        self.name = f"{self.form.name}_w{self.width}_p{self.stages}_{sign_tag}"
        self.verilog = self._generate_verilog()

    def to_dict(self) -> Dict[str, object]:
        """The JSON wire form.  Only the five init fields travel — ``name``
        and ``verilog`` are derived deterministically in ``__post_init__``,
        so the receiving side regenerates byte-identical sources."""
        return {"architecture": self.architecture,
                "form": self.form.to_dict(), "width": self.width,
                "stages": self.stages, "signed": self.signed}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Microbenchmark":
        return cls(architecture=data["architecture"],
                   form=WorkloadSpec.from_dict(data["form"]),
                   width=int(data["width"]), stages=int(data["stages"]),
                   signed=bool(data["signed"]))

    def _generate_verilog(self) -> str:
        width = self.width
        signed_kw = "signed " if self.signed else ""
        ports = ", ".join(self.form.inputs)
        lines = [
            f"// {self.name}: {self.form.expression} ({self.stages} pipeline stages)",
            f"module {self.name}(input clk, input {signed_kw}[{width - 1}:0] {ports},",
            f"                  output reg {signed_kw}[{width - 1}:0] out);",
        ]
        if self.stages == 0:
            lines[-1] = lines[-1].replace("output reg", "output")
            lines.append(f"  assign out = {self.form.expression};")
        else:
            for stage in range(1, self.stages):
                lines.append(f"  reg {signed_kw}[{width - 1}:0] stage{stage};")
            lines.append("  always @(posedge clk) begin")
            if self.stages == 1:
                lines.append(f"    out <= {self.form.expression};")
            else:
                lines.append(f"    stage1 <= {self.form.expression};")
                for stage in range(2, self.stages):
                    lines.append(f"    stage{stage} <= stage{stage - 1};")
                lines.append(f"    out <= stage{self.stages - 1};")
            lines.append("  end")
        lines.append("endmodule")
        return "\n".join(lines) + "\n"


def enumerate_workloads(architecture: str) -> List[Microbenchmark]:
    """The full microbenchmark enumeration for one architecture."""
    if architecture not in ARCHITECTURE_WORKLOADS:
        raise KeyError(f"no workload enumeration for architecture {architecture!r}")
    forms, stage_range, width_range = ARCHITECTURE_WORKLOADS[architecture]
    benchmarks: List[Microbenchmark] = []
    for form in forms:
        for stages in stage_range:
            for width in width_range:
                for signed in (False, True):
                    benchmarks.append(Microbenchmark(architecture, form, width,
                                                     stages, signed))
    return benchmarks


def workload_counts() -> Dict[str, int]:
    """Total microbenchmark count per architecture (paper: 1320 / 396 / 66)."""
    return {arch: len(enumerate_workloads(arch)) for arch in ARCHITECTURE_WORKLOADS}


def sample_workloads(architecture: str, count: int, seed: int = 0,
                     max_width: Optional[int] = None) -> List[Microbenchmark]:
    """A deterministic stratified subsample of the enumeration.

    The sample covers every design form before repeating forms, preferring
    small widths (synthesis cost grows with width) while still spanning the
    pipeline depths — this is what the default benchmark configuration runs.
    """
    full = enumerate_workloads(architecture)
    if max_width is not None:
        full = [b for b in full if b.width <= max_width]
    rng = random.Random(seed)
    by_form: Dict[str, List[Microbenchmark]] = {}
    for benchmark in full:
        by_form.setdefault(benchmark.form.name, []).append(benchmark)
    for group in by_form.values():
        group.sort(key=lambda b: (b.width, b.stages, b.signed))
    selected: List[Microbenchmark] = []
    round_index = 0
    while len(selected) < min(count, len(full)):
        progressed = False
        for form_name in sorted(by_form):
            group = by_form[form_name]
            if round_index < len(group) and len(selected) < count:
                selected.append(group[round_index])
                progressed = True
        if not progressed:
            break
        round_index += 1
    rng.shuffle(selected)
    return selected[:count]
