"""Equivalence checking of word-level expressions (the synthesis verifier).

Given two expressions over the same free variables, builds the miter
``lhs != rhs`` and decides it with the layered strategy of
:mod:`repro.smt.solver`.  The fast path matters: after the smart-constructor
rewriting, a correctly configured FPGA primitive usually collapses to the
very same DAG as the specification, so most verification calls never reach
the SAT solver.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.bv import bvne
from repro.bv.ast import BVExpr
from repro.bv.eval import var_widths
from repro.smt.model import Model
from repro.smt.solver import SmtSolver, check_sat

__all__ = ["EquivalenceResult", "check_equivalence"]


@dataclass
class EquivalenceResult:
    """Outcome of an equivalence query between two expressions."""

    status: str  # "equivalent", "different", "unknown"
    counterexample: Optional[Model] = None
    strategy: str = "none"
    time_seconds: float = 0.0

    @property
    def is_equivalent(self) -> bool:
        return self.status == "equivalent"

    @property
    def is_different(self) -> bool:
        return self.status == "different"

    @property
    def is_unknown(self) -> bool:
        return self.status == "unknown"


def check_equivalence(lhs: BVExpr, rhs: BVExpr,
                      deadline: Optional[float] = None,
                      solver: Optional[SmtSolver] = None) -> EquivalenceResult:
    """Decide whether ``lhs`` and ``rhs`` agree on every input assignment."""
    start = time.monotonic()
    if lhs.width != rhs.width:
        raise ValueError(f"cannot compare widths {lhs.width} and {rhs.width}")

    # Structural fast path: interning makes identical DAGs the same object.
    if lhs is rhs:
        return EquivalenceResult("equivalent", strategy="structural",
                                 time_seconds=time.monotonic() - start)

    miter = bvne(lhs, rhs)
    if miter.is_const():
        status = "different" if miter.value else "equivalent"
        return EquivalenceResult(status, strategy="normalise",
                                 time_seconds=time.monotonic() - start)

    result = check_sat(miter, deadline=deadline, solver=solver)
    elapsed = time.monotonic() - start
    if result.is_unknown:
        return EquivalenceResult("unknown", strategy=result.strategy, time_seconds=elapsed)
    if result.is_unsat:
        return EquivalenceResult("equivalent", strategy=result.strategy, time_seconds=elapsed)

    # SAT: the model only covers variables in the miter's support; fill the
    # rest with zeros so callers can evaluate both sides directly.
    widths: Dict[str, int] = {}
    widths.update(var_widths(lhs))
    widths.update(var_widths(rhs))
    values = {name: result.model.get(name, 0) for name in widths}
    return EquivalenceResult("different", Model(values, widths), result.strategy, elapsed)
