"""Equivalence checking of word-level expressions (the synthesis verifier).

Given two expressions over the same free variables, builds the miter
``lhs != rhs`` and decides it with the layered strategy of
:mod:`repro.smt.solver`.  The fast path matters: after the smart-constructor
rewriting, a correctly configured FPGA primitive usually collapses to the
very same DAG as the specification, so most verification calls never reach
the SAT solver.

Two SAT-layer implementations back :func:`check_equivalence`:

* the historical *portfolio* path bit-blasts the (hole-substituted) miter
  fresh each call and races the solver portfolio;
* :class:`IncrementalVerifySession` blasts the **unsubstituted** sketch/spec
  miters once per design into a persistent
  :class:`~repro.bv.bitblast.IncrementalContext`, and checks each CEGIS
  candidate by binding its hole values as *assumptions* over the stable
  hole literals — iteration N's verify query reuses iteration 1's CNF,
  learned clauses and branching activity instead of rebuilding them.

Counterexamples from the SAT layer are *canonicalized* (the name-ordered
lexicographically smallest input assignment, see
:func:`repro.smt.solver.lex_min_model`) when ``canonical=True``, so the two
SAT layers return identical counterexamples by construction and CEGIS walks
identical trajectories whichever verifier it uses.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bv import bvne
from repro.bv.ast import BVExpr
from repro.bv.bitblast import IncrementalContext
from repro.bv.eval import var_widths
from repro.smt.model import Model
from repro.smt.solver import (
    SmtResult,
    SmtSolver,
    WarmSolverHost,
    check_sat,
    lex_min_model,
)

__all__ = ["EquivalenceResult", "IncrementalVerifySession", "check_equivalence"]


@dataclass
class EquivalenceResult:
    """Outcome of an equivalence query between two expressions."""

    status: str  # "equivalent", "different", "unknown"
    counterexample: Optional[Model] = None
    strategy: str = "none"
    time_seconds: float = 0.0
    #: Packed random-simulation lanes the pre-filter evaluated before (or
    #: instead of) blasting; a ``different`` verdict with strategy
    #: ``"simulate"`` is a counterexample the pre-filter found for free.
    probe_lanes: int = 0

    @property
    def is_equivalent(self) -> bool:
        return self.status == "equivalent"

    @property
    def is_different(self) -> bool:
        return self.status == "different"

    @property
    def is_unknown(self) -> bool:
        return self.status == "unknown"


class IncrementalVerifySession(WarmSolverHost):
    """A persistent assumption-gated miter session (the incremental verifier).

    Construction blasts ``sketch != spec`` for every obligation — with the
    hole variables left *free* — into one shared AIG/CNF namespace, and
    clause-encodes each miter cone without asserting its output (see
    :meth:`~repro.bv.bitblast.IncrementalContext.gate`).  Nothing is ever
    added to the context afterwards: every candidate check is a pure
    assumption query

    ``solve(hole-bit bindings + [miter_i])``

    on one long-lived :class:`CDCLSolver` whose learned clauses, variable
    activities and saved phases accumulate across the whole CEGIS run.
    UNSAT under those assumptions means no input distinguishes the filled
    sketch from the spec — the candidate is correct on obligation ``i``;
    SAT yields a counterexample, canonicalized to the name-ordered
    lex-smallest input assignment so it matches what the (canonical)
    portfolio path would have produced.

    :meth:`failure_core` turns a counterexample into a *hole-assignment
    prefix*: assuming the candidate's holes, the counterexample's inputs
    and the miter output **negated** is unsatisfiable, and the solver's
    ``last_core`` then names the subset of hole bits actually responsible —
    every candidate extending that prefix fails on the same counterexample,
    so one blocking constraint over the prefix prunes them all.

    ``reduce_interval`` / ``max_lbd_keep`` configure the warm solver's
    LBD-based clause-database reduction (None defers to the
    :class:`~repro.sat.solver.CDCLSolver` defaults), which keeps the
    learned database — and with it watch-list length and propagation cost —
    bounded over long runs; assumption gating, counterexample canonicity
    and :meth:`failure_core` are unaffected by when reductions happen.
    """

    def __init__(self, obligations: Sequence, hole_widths: Mapping[str, int],
                 input_widths: Optional[Mapping[str, int]] = None,
                 reduce_interval: Optional[int] = None,
                 max_lbd_keep: Optional[int] = None) -> None:
        self.context = IncrementalContext()
        self.hole_widths: Dict[str, int] = dict(hole_widths)
        self._miter_lits: List[int] = []
        widths: Dict[str, int] = {}
        for obligation in obligations:
            miter = bvne(obligation.sketch, obligation.spec)
            if input_widths is None:
                for name, width in var_widths(miter).items():
                    if name not in self.hole_widths:
                        widths[name] = width
            self._miter_lits.append(self.context.gate(miter))
        self._input_widths: Dict[str, int] = \
            dict(input_widths) if input_widths is not None else widths

        # The namespace is complete now — no later call adds nodes — so the
        # bit-name maps can be partitioned and ordered once, and every
        # query just walks the precomputed plans.
        bit_vars = self.context.input_vars()
        self._hole_bit_index: Dict[int, Tuple[str, int]] = {}
        self._input_bit_vars: Dict[str, int] = {}
        for bit_name, var in bit_vars.items():
            name, _, index_part = bit_name.rpartition("[")
            bit = int(index_part[:-1])
            if name in self.hole_widths:
                self._hole_bit_index[var] = (name, bit)
            else:
                self._input_bit_vars[bit_name] = var
        #: ``(name, bit, var)`` for every hole bit present in some miter
        #: cone, in the stable assumption order (name ascending, LSB
        #: first).  Hole bits absent from the context were simplified out
        #: of every cone — their values cannot matter.
        self._hole_bits: List[Tuple[str, int, int]] = [
            (name, bit, bit_vars[f"{name}[{bit}]"])
            for name in sorted(self.hole_widths)
            for bit in range(self.hole_widths[name])
            if f"{name}[{bit}]" in bit_vars]
        #: Likewise for the design-input bits (the core-probe order).
        self._input_bits: List[Tuple[str, int, int]] = [
            (name, bit, bit_vars[f"{name}[{bit}]"])
            for name in sorted(self._input_widths)
            for bit in range(self._input_widths[name])
            if f"{name}[{bit}]" in bit_vars]

        self._init_solver_state(reduce_interval, max_lbd_keep)
        #: Session statistics (cumulative over the session's lifetime).
        self.checks = 0
        self.cores = 0

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, int]:
        return {"checks": self.checks, "restarts": self.restarts,
                "cores": self.cores,
                "clauses_retained": self.clauses_retained,
                "clauses_deleted": self.clauses_deleted,
                "db_size_peak": self.db_size_peak,
                "propagations": self.propagations,
                "watcher_visits": self.watcher_visits,
                "cnf_clauses": self.context.cnf.num_clauses,
                "cnf_vars": self.context.cnf.num_vars}

    # ------------------------------------------------------------------ #
    def _hole_assumptions(self, hole_values: Mapping[str, int]) -> List[int]:
        """The candidate's hole bits as assumption literals (stable order)."""
        return [var if (hole_values.get(name, 0) >> bit) & 1 else -var
                for name, bit, var in self._hole_bits]

    def check_obligation(self, index: int, hole_values: Mapping[str, int],
                         deadline: Optional[float] = None) -> SmtResult:
        """Does any input distinguish the filled sketch from the spec?

        ``unsat`` means the candidate is correct on obligation ``index``;
        ``sat`` carries the canonical counterexample.
        """
        start = time.monotonic()
        self.checks += 1
        if deadline is not None and time.monotonic() > deadline:
            return SmtResult("unknown", None, "timeout",
                             time.monotonic() - start)
        solver = self._sync_solver()
        solver.deadline = deadline
        base = self._hole_assumptions(hole_values)
        base.append(self._miter_lits[index])
        outcome = solver.solve(base)
        if outcome.is_unsat:
            return SmtResult("unsat", None, "sat:incremental-verify",
                             time.monotonic() - start, outcome.conflicts)
        if outcome.is_unknown:
            return SmtResult("unknown", None, "timeout",
                             time.monotonic() - start, outcome.conflicts)
        model = lex_min_model(solver, self._input_bit_vars, outcome.model,
                              base=base, deadline=deadline)
        if model is None:
            return SmtResult("unknown", None, "timeout",
                             time.monotonic() - start, outcome.conflicts)
        values: Dict[str, int] = {name: 0 for name in self._input_widths}
        for bit_name, var in self._input_bit_vars.items():
            if not model.get(var, False):
                continue
            name, _, index_part = bit_name.rpartition("[")
            if name in values:
                values[name] |= 1 << int(index_part[:-1])
        return SmtResult("sat", Model(values, dict(self._input_widths)),
                         "sat:incremental-verify", time.monotonic() - start,
                         outcome.conflicts)

    def failure_core(self, index: int, hole_values: Mapping[str, int],
                     counterexample: Mapping[str, int],
                     deadline: Optional[float] = None
                     ) -> Optional[List[Tuple[str, int, int]]]:
        """The hole-assignment prefix responsible for a counterexample.

        Assumes the candidate's hole bits, the counterexample's input bits
        and the *negated* miter output; the query is unsatisfiable (the
        counterexample genuinely distinguishes sketch from spec), and the
        hole literals in ``last_core`` form a prefix such that **every**
        candidate extending it disagrees with the spec on this very
        counterexample.  Returns ``(hole, bit, value)`` triples, or None
        if the probe could not complete (deadline) or — defensively — did
        not come back unsat.
        """
        solver = self._sync_solver()
        solver.deadline = deadline
        assumptions = self._hole_assumptions(hole_values)
        assumptions.extend(
            var if (counterexample.get(name, 0) >> bit) & 1 else -var
            for name, bit, var in self._input_bits)
        assumptions.append(-self._miter_lits[index])
        outcome = solver.solve(assumptions)
        if not outcome.is_unsat or solver.last_core is None:
            return None
        prefix: List[Tuple[str, int, int]] = []
        for lit in solver.last_core:
            info = self._hole_bit_index.get(abs(lit))
            if info is None:
                continue
            name, bit = info
            prefix.append((name, bit, 1 if lit > 0 else 0))
        self.cores += 1
        return sorted(prefix)


def check_equivalence(lhs: BVExpr, rhs: BVExpr,
                      deadline: Optional[float] = None,
                      solver: Optional[SmtSolver] = None,
                      canonical: bool = False,
                      sat_layer=None) -> EquivalenceResult:
    """Decide whether ``lhs`` and ``rhs`` agree on every input assignment.

    ``canonical=True`` makes any SAT-layer counterexample the canonical
    (name-ordered lex-smallest) one; ``sat_layer`` swaps the blast-and-race
    layer for a caller-supplied decision procedure (the incremental
    verifier) while keeping the structural/normalise/probing fast paths —
    and their RNG consumption — identical across both verifiers.  The
    probing layer doubles as a packed random-simulation *pre-filter*: 64
    random input patterns are evaluated per word-op on the miter DAG
    before anything is blasted, and a shallow counterexample found there
    (strategy ``"simulate"``) skips the SAT layer entirely — on both
    verifier paths, so the shared RNG stream and the counterexample
    sequence stay mode-independent.
    """
    start = time.monotonic()
    if lhs.width != rhs.width:
        raise ValueError(f"cannot compare widths {lhs.width} and {rhs.width}")

    # Structural fast path: interning makes identical DAGs the same object.
    if lhs is rhs:
        return EquivalenceResult("equivalent", strategy="structural",
                                 time_seconds=time.monotonic() - start)

    miter = bvne(lhs, rhs)
    if miter.is_const():
        if not miter.value:
            return EquivalenceResult("equivalent", strategy="normalise",
                                     time_seconds=time.monotonic() - start)
        # A constant-true miter differs on *every* assignment; report the
        # all-zeros witness so callers always get a usable counterexample.
        widths: Dict[str, int] = {}
        widths.update(var_widths(lhs))
        widths.update(var_widths(rhs))
        witness = Model({name: 0 for name in widths}, widths)
        return EquivalenceResult("different", witness, "normalise",
                                 time_seconds=time.monotonic() - start)

    result = check_sat(miter, deadline=deadline, solver=solver,
                       canonical=canonical, sat_layer=sat_layer)
    elapsed = time.monotonic() - start
    if result.is_unknown:
        return EquivalenceResult("unknown", strategy=result.strategy,
                                 time_seconds=elapsed,
                                 probe_lanes=result.probe_lanes)
    if result.is_unsat:
        return EquivalenceResult("equivalent", strategy=result.strategy,
                                 time_seconds=elapsed,
                                 probe_lanes=result.probe_lanes)

    # SAT: the model only covers variables in the miter's support; fill the
    # rest with zeros so callers can evaluate both sides directly.
    widths = {}
    widths.update(var_widths(lhs))
    widths.update(var_widths(rhs))
    values = {name: result.model.get(name, 0) for name in widths}
    return EquivalenceResult("different", Model(values, widths),
                             result.strategy, elapsed,
                             probe_lanes=result.probe_lanes)
