"""Satisfiability of word-level bitvector constraints.

``check_sat`` takes one or more 1-bit expressions (treated as a
conjunction), simplifies them, and decides satisfiability with a layered
strategy that mirrors the paper's solver portfolio:

1. *normalise* -- the smart-constructor rewriting may already reduce the
   conjunction to a constant;
2. *simulate*  -- a short burst of random concrete assignments, evaluated
   64 at a time by the bit-parallel packed simulator
   (:mod:`repro.bv.bitsim`), looks for an easy satisfying assignment (the
   cheap way to answer SAT queries);
3. *bit-blast + SAT portfolio* -- the complete decision procedure.

Every entry point accepts a ``deadline`` (an absolute ``time.monotonic``
value); queries that exceed it report ``unknown``, which the synthesis
driver surfaces as the paper's "timeout" outcome.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.bv import bvand, bvvar
from repro.bv.ast import BVExpr
from repro.bv.bitblast import BitBlaster, IncrementalContext
from repro.bv.bitsim import PROBE_LANES, PackedEvaluator, first_sat_lane
from repro.bv.cnf import aig_to_cnf, lit_to_cnf
from repro.bv.eval import evaluate, var_widths
from repro.sat.portfolio import SatPortfolio
from repro.sat.solver import CDCLSolver, SatResult
from repro.smt.model import Model

__all__ = ["SmtResult", "check_sat", "SmtSolver", "IncrementalSmtSession",
           "lex_min_model"]


def _canonical_bit_order(bit_vars: Dict[str, int]) -> List[int]:
    """CNF variables of named input bits in canonical minimization order.

    Bits are ordered by variable name ascending and, within one variable,
    most-significant bit first — so greedily zeroing bits in this order
    converges to the assignment minimizing the tuple of *integer values*
    of the variables taken in name order.  The order is a property of the
    bit names alone, never of AIG/CNF construction order, which is what
    lets two differently-built encodings of the same formula agree on one
    canonical model.
    """
    def key(item):
        bit_name = item[0]
        name, _, index_part = bit_name.rpartition("[")
        return (name, -int(index_part[:-1]))
    return [var for _, var in sorted(bit_vars.items(), key=key)]


def lex_min_model(solver: CDCLSolver, bits, model: Dict[int, bool],
                  base: Sequence[int] = (),
                  deadline: Optional[float] = None,
                  on_solve=None) -> Optional[Dict[int, bool]]:
    """Refine ``model`` to the unique greedy-minimal input-bit assignment.

    ``bits`` is either a bit-name → CNF-variable mapping — minimized in
    the canonical order of :func:`_canonical_bit_order` — or an explicit
    variable sequence, minimized in the given order.  ``base`` is a fixed
    assumption prefix held throughout (the incremental verifier passes the
    candidate's hole bindings and the gated miter output); the greedy pass
    then walks the bits in order, keeping each bit it can prove zeroable
    under the already-fixed prefix.  The result is the unique satisfying
    assignment minimizing the ordered bit tuple — a property of the
    constraint set and the order, not of the search — so a warm
    incremental solver and a cold portfolio member canonicalize to the
    very same model.  ``on_solve`` observes every trial result (the
    candidate session uses it for conflict accounting).  Returns ``None``
    if the deadline expires mid-refinement.
    """
    solver.deadline = deadline
    ordered = _canonical_bit_order(bits) if isinstance(bits, dict) else list(bits)
    prefix: List[int] = list(base)
    for var in ordered:
        if not model.get(var, False):
            # Already 0: the current model witnesses this prefix.
            prefix.append(-var)
            continue
        trial = solver.solve(prefix + [-var])
        if on_solve is not None:
            on_solve(trial)
        if trial.is_sat:
            model = trial.model
            prefix.append(-var)
        elif trial.is_unsat:
            prefix.append(var)
        else:
            return None
    return model


@dataclass
class SmtResult:
    """Outcome of a word-level satisfiability query."""

    status: str  # "sat", "unsat", "unknown"
    model: Optional[Model] = None
    strategy: str = "none"  # which layer decided the query
    time_seconds: float = 0.0
    sat_conflicts: int = 0
    #: Packed random-probe assignments evaluated while deciding this query
    #: (layer 2's throughput telemetry; 0 when probing was skipped).
    probe_lanes: int = 0

    @property
    def is_sat(self) -> bool:
        return self.status == "sat"

    @property
    def is_unsat(self) -> bool:
        return self.status == "unsat"

    @property
    def is_unknown(self) -> bool:
        return self.status == "unknown"


class SmtSolver:
    """A configurable word-level solver instance."""

    def __init__(self, random_probes: int = 32, seed: int = 0,
                 portfolio: Optional[SatPortfolio] = None) -> None:
        self.random_probes = random_probes
        self.rng = random.Random(seed)
        self.portfolio = portfolio if portfolio is not None else SatPortfolio()

    # ------------------------------------------------------------------ #
    def check(self, constraints: Sequence[BVExpr],
              deadline: Optional[float] = None,
              canonical: bool = False,
              sat_layer=None) -> SmtResult:
        """Decide satisfiability with the layered strategy.

        ``canonical=True`` refines any SAT model found by the portfolio to
        the canonical (name-ordered lexicographically smallest) input
        assignment, making layer-3 models search-independent.
        ``sat_layer`` replaces the blast-and-race layer with a caller
        supplied ``(formula, widths, deadline) -> SmtResult`` — the seam
        the incremental verifier plugs its persistent session into, while
        layers 1–2 (normalisation, random probing) stay byte-for-byte
        shared between the portfolio and incremental paths (including the
        probing RNG stream, which both modes must consume identically).
        """
        start = time.monotonic()
        for constraint in constraints:
            if constraint.width != 1:
                raise ValueError("constraints must be 1-bit expressions")

        formula = bvand(*constraints) if len(constraints) > 1 else constraints[0]

        # Layer 1: normalisation.
        if formula.is_const():
            status = "sat" if formula.value else "unsat"
            model = Model({}, {}) if status == "sat" else None
            return SmtResult(status, model, "normalise", time.monotonic() - start)

        widths = var_widths(formula)

        # Layer 2: random probing for an easy SAT answer — packed 64 lanes
        # at a time (see repro.bv.bitsim).  The batch is drawn from the
        # same persistent RNG stream, in the same per-variable order, as
        # the historical one-probe-at-a-time loop; lanes are scanned in
        # order so the first satisfying lane is exactly the first
        # satisfying scalar probe.  On a hit the stream is rewound and
        # re-advanced to just past the winning probe — the position the
        # scalar loop (which stopped there) would have left it at — so
        # every downstream draw, and with it every CEGIS trajectory, stays
        # byte-for-byte identical across solver configurations and both
        # verifier modes.
        lanes_spent = 0
        if self.random_probes and widths:
            items = list(widths.items())
            evaluator = PackedEvaluator(formula)
            state = self.rng.getstate()
            while lanes_spent < self.random_probes:
                if deadline is not None and time.monotonic() > deadline:
                    return SmtResult("unknown", None, "timeout",
                                     time.monotonic() - start,
                                     probe_lanes=lanes_spent)
                chunk = min(PROBE_LANES, self.random_probes - lanes_spent)
                batch = [{name: self.rng.getrandbits(width)
                          for name, width in items} for _ in range(chunk)]
                lanes_spent += chunk
                hits = evaluator.sat_lanes(batch)
                if hits:
                    lane = first_sat_lane(hits)
                    self.rng.setstate(state)
                    for _ in range(lanes_spent - chunk + lane + 1):
                        for _name, width in items:
                            self.rng.getrandbits(width)
                    return SmtResult("sat", Model(batch[lane], widths),
                                     "simulate", time.monotonic() - start,
                                     probe_lanes=lanes_spent)
        elif self.random_probes and evaluate(formula, {}):
            # No free variables: every scalar probe evaluated the same
            # closed formula (consuming no randomness); one evaluation
            # decides them all.
            return SmtResult("sat", Model({}, widths), "simulate",
                             time.monotonic() - start)

        # Layer 3: hand to the pluggable SAT layer (an incremental session)
        # or bit-blast and race the portfolio.
        if sat_layer is not None:
            layered = sat_layer(formula, widths, deadline)
            layered.probe_lanes += lanes_spent
            return layered
        blaster = BitBlaster()
        bits = blaster.blast(formula)
        cnf, input_vars = aig_to_cnf(blaster.aig, bits)
        sat_result, winner = self.portfolio.solve(cnf, deadline=deadline)
        if sat_result.is_unknown:
            return SmtResult("unknown", None, "timeout",
                             time.monotonic() - start, sat_result.conflicts,
                             probe_lanes=lanes_spent)
        if sat_result.is_unsat:
            return SmtResult("unsat", None, f"sat:{winner}",
                             time.monotonic() - start, sat_result.conflicts,
                             probe_lanes=lanes_spent)

        model = sat_result.model
        if canonical:
            refiner = CDCLSolver(cnf, deadline=deadline)
            model = lex_min_model(refiner, input_vars, model, deadline=deadline)
            if model is None:
                # Deadline expired mid-refinement: report unknown rather
                # than the unrefined (search-dependent) model — the same
                # conservative choice IncrementalSmtSession.check makes.
                # Returning the raw model here would make near-deadline
                # counterexamples diverge between solver backends and
                # verifier modes, silently breaking the canonical-model
                # equality everything downstream relies on; a run this
                # close to its budget ends in "timeout" either way.
                return SmtResult("unknown", None, "timeout",
                                 time.monotonic() - start, sat_result.conflicts,
                                 probe_lanes=lanes_spent)

        values: Dict[str, int] = {name: 0 for name in widths}
        for bit_name, cnf_var in input_vars.items():
            if not model.get(cnf_var, False):
                continue
            var_name, _, index_part = bit_name.rpartition("[")
            bit_index = int(index_part[:-1])
            if var_name in values:
                values[var_name] |= 1 << bit_index
        return SmtResult("sat", Model(values, widths), f"sat:{winner}",
                         time.monotonic() - start, sat_result.conflicts,
                         probe_lanes=lanes_spent)


class WarmSolverHost:
    """Shared warm-solver plumbing for incremental sessions.

    Owns one lazily-built :class:`CDCLSolver` kept in sync with a growing
    :class:`~repro.bv.bitblast.IncrementalContext` CNF (``self.context``),
    plus the restart bookkeeping.  Both the candidate session
    (:class:`IncrementalSmtSession`) and the verifier
    (:class:`~repro.smt.equivalence.IncrementalVerifySession`) host their
    solver through this class, so the sync-cursor/restart semantics cannot
    drift between them.
    """

    def _init_solver_state(self, reduce_interval: Optional[int] = None,
                           max_lbd_keep: Optional[int] = None) -> None:
        self._solver: Optional[CDCLSolver] = None
        self._synced_clauses = 0
        self.restarts = 0
        #: Clause-DB reduction knobs forwarded to every warm solver this
        #: host builds; None defers to the CDCLSolver defaults.
        self._solver_options: Dict[str, int] = {}
        if reduce_interval is not None:
            self._solver_options["reduce_interval"] = reduce_interval
        if max_lbd_keep is not None:
            self._solver_options["max_lbd_keep"] = max_lbd_keep
        # Reduction and propagation telemetry accumulated from solvers
        # dropped by restart(), so session-lifetime counters survive
        # budget-aware cold restarts.
        self._deleted_before_restart = 0
        self._peak_before_restart = 0
        self._props_before_restart = 0
        self._visits_before_restart = 0
        self._solve_seconds_before_restart = 0.0

    def restart(self) -> None:
        """Drop the warm solver; the context (and its literals) survive.

        The next query rebuilds a cold solver from the full accumulated
        CNF.  Because every model the sessions return is canonical (a
        property of the constraint set, not of the search), restarting is
        purely a scheduling decision — CEGIS uses it when a warm solve
        burns its budget slice without answering.
        """
        if self._solver is not None:
            self._deleted_before_restart += self._solver.clauses_deleted
            self._peak_before_restart = max(self._peak_before_restart,
                                            self._solver.db_size_peak)
            self._props_before_restart += self._solver.propagations_total
            self._visits_before_restart += self._solver.watcher_visits
            self._solve_seconds_before_restart += self._solver.solve_seconds
            self._solver = None
            self._synced_clauses = 0
            self.restarts += 1

    @property
    def clauses_retained(self) -> int:
        """Learned clauses currently carried by the warm solver."""
        return self._solver.learned_alive if self._solver is not None else 0

    @property
    def clauses_deleted(self) -> int:
        """Learned clauses dropped by DB reduction over the session's life
        (including solvers already discarded by :meth:`restart`)."""
        current = self._solver.clauses_deleted if self._solver is not None else 0
        return self._deleted_before_restart + current

    @property
    def db_size_peak(self) -> int:
        """Largest learned database any of the session's solvers carried."""
        current = self._solver.db_size_peak if self._solver is not None else 0
        return max(self._peak_before_restart, current)

    @property
    def propagations(self) -> int:
        """Trail literals propagated over the session's life (all solvers)."""
        current = self._solver.propagations_total if self._solver is not None else 0
        return self._props_before_restart + current

    @property
    def watcher_visits(self) -> int:
        """Watcher entries examined over the session's life (all solvers)."""
        current = self._solver.watcher_visits if self._solver is not None else 0
        return self._visits_before_restart + current

    @property
    def solve_seconds(self) -> float:
        """Wall seconds spent inside ``CDCLSolver.solve`` this session."""
        current = self._solver.solve_seconds if self._solver is not None else 0.0
        return self._solve_seconds_before_restart + current

    @property
    def propagations_per_second(self) -> float:
        """Session propagation throughput (0.0 before the first solve)."""
        seconds = self.solve_seconds
        return self.propagations / seconds if seconds > 0 else 0.0

    @property
    def watcher_visits_per_propagation(self) -> float:
        """Mean watcher entries examined per propagated literal."""
        props = self.propagations
        return self.watcher_visits / props if props else 0.0

    def _sync_solver(self) -> CDCLSolver:
        """Feed clauses appended since the last check into the live solver."""
        if self._solver is None:
            self._solver = CDCLSolver(**self._solver_options)
        cnf = self.context.cnf
        self._solver.ensure_vars(cnf.num_vars)
        for clause in cnf.clauses[self._synced_clauses:]:
            self._solver.add_clause(clause)
        self._synced_clauses = len(cnf.clauses)
        return self._solver


class IncrementalSmtSession(WarmSolverHost):
    """An incremental word-level solving session: assert once, check often.

    Unlike :func:`check_sat`, constraints asserted here are *cumulative*:
    every :meth:`assert_constraints` call appends obligations to one
    persistent :class:`~repro.bv.bitblast.IncrementalContext` (stable AIG /
    CNF literals), and :meth:`check` reuses one :class:`CDCLSolver` whose
    learned clauses, activities and level-0 facts survive across calls.
    Because constraints only ever accumulate, everything the solver learned
    for an earlier query is still entailed by the current one.

    Satisfying models are *canonical*: after the (heuristic, warm) search
    finds any model, the session refines it to the lexicographically
    smallest assignment of the input variables with a sequence of
    assumption solves.  The lex-min assignment is unique — a property of
    the formula, not of the search — so a warm incremental session and a
    cold from-scratch one return identical models over the same asserted
    constraints.  That canonicity is what lets incremental and from-scratch
    CEGIS return the same hole values, and it makes :meth:`restart` (drop
    the warm solver, keep the context) behavior-preserving: only the
    time-to-answer changes, never the answer.

    ``reduce_interval`` / ``max_lbd_keep`` configure the warm solver's
    LBD-based clause-database reduction (None defers to the
    :class:`~repro.sat.solver.CDCLSolver` defaults); reduction bounds the
    learned database on long sessions and — like restarts — can only
    change time-to-answer.  Session-lifetime reduction telemetry is
    exposed as :attr:`clauses_deleted` / :attr:`db_size_peak`.
    """

    def __init__(self, reduce_interval: Optional[int] = None,
                 max_lbd_keep: Optional[int] = None) -> None:
        self.context = IncrementalContext()
        self._init_solver_state(reduce_interval, max_lbd_keep)
        self._widths: Dict[str, int] = {}
        self._root_unsat = False
        #: Session statistics (cumulative over the session's lifetime).
        self.checks = 0
        self.conflicts = 0
        self.asserted = 0

    # ------------------------------------------------------------------ #
    def assert_constraints(self, constraints: Sequence[BVExpr]) -> None:
        """Permanently add 1-bit constraints (a conjunction) to the session.

        The batch is blasted and cone-encoded first, then the output units
        are asserted together — the clause layout a one-shot
        :func:`~repro.bv.cnf.aig_to_cnf` would produce for the batch.
        """
        output_lits = []
        for constraint in constraints:
            if constraint.width != 1:
                raise ValueError("constraints must be 1-bit expressions")
            if constraint.is_const():
                if not constraint.value:
                    self._root_unsat = True
                continue
            for name, width in var_widths(constraint).items():
                existing = self._widths.get(name)
                if existing is not None and existing != width:
                    raise ValueError(
                        f"variable {name!r} used at widths {existing} and {width}")
                self._widths[name] = width
            output_lits.append(self.context.blast(constraint)[0])
            self.asserted += 1
        for lit in output_lits:
            self.context.encoder.encode([lit])
        for lit in output_lits:
            self.context.encoder.cnf.add_clause([lit_to_cnf(lit)])

    def stats(self) -> Dict[str, int]:
        return {"checks": self.checks, "restarts": self.restarts,
                "conflicts": self.conflicts, "asserted": self.asserted,
                "clauses_retained": self.clauses_retained,
                "clauses_deleted": self.clauses_deleted,
                "db_size_peak": self.db_size_peak,
                "propagations": self.propagations,
                "watcher_visits": self.watcher_visits,
                "cnf_clauses": self.context.cnf.num_clauses,
                "cnf_vars": self.context.cnf.num_vars}

    # ------------------------------------------------------------------ #
    def _lex_minimize(self, solver: CDCLSolver,
                      model: Dict[int, bool]) -> Optional[Dict[int, bool]]:
        """Refine a model to the lex-smallest input-variable assignment.

        The search heuristics (and any warm solver state) determine only
        which model is found *first*; this greedy pass — walk the input
        bits in CNF-variable (assertion) order, try to flip each 1 to 0
        under the already fixed prefix — converges to the unique
        lexicographically smallest satisfying input assignment in that
        order.  Tseitin variables are functionally forced by the inputs,
        so the whole model is canonical.  Returns None on a deadline
        expiry mid-refinement.

        Deliberately NOT the name-based order of
        :func:`_canonical_bit_order` that the verify side uses: candidate
        formulas are much cheaper to minimize in assertion order (the
        greedy prefix then follows constraint structure), and switching
        orders would change every candidate canonical model — silently
        invalidating cross-version result equality for persistent caches.
        The bit order is the AIG input order, which is determined by the
        order constraints were asserted — identical for an incremental
        session and a from-scratch one replaying the same assertion
        sequence (CEGIS replays examples and blocking constraints in one
        shared temporal order for exactly this reason, and only emits
        blocking constraints over hole bits some example has already
        introduced, so the input order never depends on the verifier
        mode).  Zero bits are free (the current model witnesses them);
        only bits currently 1 need a solver call, and the solver's
        assumption-prefix trail reuse makes consecutive calls re-propagate
        almost nothing.
        """

        def note(result: SatResult) -> None:
            self.conflicts += result.conflicts

        return lex_min_model(solver, sorted(self.context.input_vars().values()),
                             model, deadline=solver.deadline, on_solve=note)

    def check(self, deadline: Optional[float] = None) -> SmtResult:
        """Decide satisfiability of everything asserted so far."""
        start = time.monotonic()
        self.checks += 1
        if self._root_unsat:
            return SmtResult("unsat", None, "normalise", time.monotonic() - start)
        if deadline is not None and time.monotonic() > deadline:
            return SmtResult("unknown", None, "timeout", time.monotonic() - start)

        conflicts_before = self.conflicts
        solver = self._sync_solver()
        solver.deadline = deadline
        sat_result = solver.solve()
        self.conflicts += sat_result.conflicts
        if sat_result.is_unsat:
            return SmtResult("unsat", None, "sat:incremental",
                             time.monotonic() - start,
                             self.conflicts - conflicts_before)
        model = None
        if sat_result.is_sat:
            # _lex_minimize adds its assumption-solve conflicts to
            # self.conflicts, so the delta below covers the whole check.
            model = self._lex_minimize(solver, sat_result.model)
        elapsed = time.monotonic() - start
        query_conflicts = self.conflicts - conflicts_before
        if model is None:
            return SmtResult("unknown", None, "timeout", elapsed,
                             query_conflicts)

        values: Dict[str, int] = {name: 0 for name in self._widths}
        for bit_name, cnf_var in self.context.input_vars().items():
            if not model.get(cnf_var, False):
                continue
            var_name, _, index_part = bit_name.rpartition("[")
            bit_index = int(index_part[:-1])
            if var_name in values:
                values[var_name] |= 1 << bit_index
        return SmtResult("sat", Model(values, dict(self._widths)), "sat:incremental",
                         elapsed, query_conflicts)


_DEFAULT_SOLVER = SmtSolver()


def check_sat(constraints: Sequence[BVExpr] | BVExpr,
              deadline: Optional[float] = None,
              solver: Optional[SmtSolver] = None,
              canonical: bool = False,
              sat_layer=None) -> SmtResult:
    """Decide satisfiability of a constraint (or conjunction of constraints)."""
    if isinstance(constraints, BVExpr):
        constraints = [constraints]
    active = solver if solver is not None else _DEFAULT_SOLVER
    return active.check(list(constraints), deadline=deadline,
                        canonical=canonical, sat_layer=sat_layer)
