"""Satisfiability of word-level bitvector constraints.

``check_sat`` takes one or more 1-bit expressions (treated as a
conjunction), simplifies them, and decides satisfiability with a layered
strategy that mirrors the paper's solver portfolio:

1. *normalise* -- the smart-constructor rewriting may already reduce the
   conjunction to a constant;
2. *simulate*  -- a short burst of random concrete assignments looks for an
   easy satisfying assignment (the cheap way to answer SAT queries);
3. *bit-blast + SAT portfolio* -- the complete decision procedure.

Every entry point accepts a ``deadline`` (an absolute ``time.monotonic``
value); queries that exceed it report ``unknown``, which the synthesis
driver surfaces as the paper's "timeout" outcome.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.bv import bvand, bvvar
from repro.bv.ast import BVExpr
from repro.bv.bitblast import BitBlaster, IncrementalContext
from repro.bv.cnf import aig_to_cnf, lit_to_cnf
from repro.bv.eval import evaluate, var_widths
from repro.sat.portfolio import SatPortfolio
from repro.sat.solver import CDCLSolver
from repro.smt.model import Model

__all__ = ["SmtResult", "check_sat", "SmtSolver", "IncrementalSmtSession"]


@dataclass
class SmtResult:
    """Outcome of a word-level satisfiability query."""

    status: str  # "sat", "unsat", "unknown"
    model: Optional[Model] = None
    strategy: str = "none"  # which layer decided the query
    time_seconds: float = 0.0
    sat_conflicts: int = 0

    @property
    def is_sat(self) -> bool:
        return self.status == "sat"

    @property
    def is_unsat(self) -> bool:
        return self.status == "unsat"

    @property
    def is_unknown(self) -> bool:
        return self.status == "unknown"


class SmtSolver:
    """A configurable word-level solver instance."""

    def __init__(self, random_probes: int = 32, seed: int = 0,
                 portfolio: Optional[SatPortfolio] = None) -> None:
        self.random_probes = random_probes
        self.rng = random.Random(seed)
        self.portfolio = portfolio if portfolio is not None else SatPortfolio()

    # ------------------------------------------------------------------ #
    def check(self, constraints: Sequence[BVExpr],
              deadline: Optional[float] = None) -> SmtResult:
        start = time.monotonic()
        for constraint in constraints:
            if constraint.width != 1:
                raise ValueError("constraints must be 1-bit expressions")

        formula = bvand(*constraints) if len(constraints) > 1 else constraints[0]

        # Layer 1: normalisation.
        if formula.is_const():
            status = "sat" if formula.value else "unsat"
            model = Model({}, {}) if status == "sat" else None
            return SmtResult(status, model, "normalise", time.monotonic() - start)

        widths = var_widths(formula)

        # Layer 2: random probing for an easy SAT answer.
        for _ in range(self.random_probes):
            if deadline is not None and time.monotonic() > deadline:
                return SmtResult("unknown", None, "timeout", time.monotonic() - start)
            assignment = {name: self.rng.getrandbits(width) for name, width in widths.items()}
            if evaluate(formula, assignment):
                return SmtResult("sat", Model(assignment, widths), "simulate",
                                 time.monotonic() - start)

        # Layer 3: bit-blast and hand to the SAT portfolio.
        blaster = BitBlaster()
        bits = blaster.blast(formula)
        cnf, input_vars = aig_to_cnf(blaster.aig, bits)
        sat_result, winner = self.portfolio.solve(cnf, deadline=deadline)
        elapsed = time.monotonic() - start
        if sat_result.is_unknown:
            return SmtResult("unknown", None, "timeout", elapsed, sat_result.conflicts)
        if sat_result.is_unsat:
            return SmtResult("unsat", None, f"sat:{winner}", elapsed, sat_result.conflicts)

        values: Dict[str, int] = {name: 0 for name in widths}
        for bit_name, cnf_var in input_vars.items():
            if not sat_result.model.get(cnf_var, False):
                continue
            var_name, _, index_part = bit_name.rpartition("[")
            bit_index = int(index_part[:-1])
            if var_name in values:
                values[var_name] |= 1 << bit_index
        return SmtResult("sat", Model(values, widths), f"sat:{winner}", elapsed,
                         sat_result.conflicts)


class IncrementalSmtSession:
    """An incremental word-level solving session: assert once, check often.

    Unlike :func:`check_sat`, constraints asserted here are *cumulative*:
    every :meth:`assert_constraints` call appends obligations to one
    persistent :class:`~repro.bv.bitblast.IncrementalContext` (stable AIG /
    CNF literals), and :meth:`check` reuses one :class:`CDCLSolver` whose
    learned clauses, activities and level-0 facts survive across calls.
    Because constraints only ever accumulate, everything the solver learned
    for an earlier query is still entailed by the current one.

    Satisfying models are *canonical*: after the (heuristic, warm) search
    finds any model, the session refines it to the lexicographically
    smallest assignment of the input variables with a sequence of
    assumption solves.  The lex-min assignment is unique — a property of
    the formula, not of the search — so a warm incremental session and a
    cold from-scratch one return identical models over the same asserted
    constraints.  That canonicity is what lets incremental and from-scratch
    CEGIS return the same hole values, and it makes :meth:`restart` (drop
    the warm solver, keep the context) behavior-preserving: only the
    time-to-answer changes, never the answer.
    """

    def __init__(self) -> None:
        self.context = IncrementalContext()
        self._solver: Optional[CDCLSolver] = None
        self._synced_clauses = 0
        self._widths: Dict[str, int] = {}
        self._root_unsat = False
        #: Session statistics (cumulative over the session's lifetime).
        self.checks = 0
        self.restarts = 0
        self.conflicts = 0
        self.asserted = 0

    # ------------------------------------------------------------------ #
    def assert_constraints(self, constraints: Sequence[BVExpr]) -> None:
        """Permanently add 1-bit constraints (a conjunction) to the session.

        The batch is blasted and cone-encoded first, then the output units
        are asserted together — the clause layout a one-shot
        :func:`~repro.bv.cnf.aig_to_cnf` would produce for the batch.
        """
        output_lits = []
        for constraint in constraints:
            if constraint.width != 1:
                raise ValueError("constraints must be 1-bit expressions")
            if constraint.is_const():
                if not constraint.value:
                    self._root_unsat = True
                continue
            for name, width in var_widths(constraint).items():
                existing = self._widths.get(name)
                if existing is not None and existing != width:
                    raise ValueError(
                        f"variable {name!r} used at widths {existing} and {width}")
                self._widths[name] = width
            output_lits.append(self.context.blast(constraint)[0])
            self.asserted += 1
        for lit in output_lits:
            self.context.encoder.encode([lit])
        for lit in output_lits:
            self.context.encoder.cnf.add_clause([lit_to_cnf(lit)])

    def restart(self) -> None:
        """Drop the warm solver; the context (and its literals) survive.

        The next :meth:`check` rebuilds a cold solver from the full
        accumulated CNF.  With the stable configuration the answer is
        unchanged — restarting is purely a scheduling decision (CEGIS uses
        it when a warm solve burned a budget slice without answering).
        """
        if self._solver is not None:
            self._solver = None
            self._synced_clauses = 0
            self.restarts += 1

    @property
    def clauses_retained(self) -> int:
        """Learned clauses currently carried by the warm solver."""
        return self._solver.learned_count if self._solver is not None else 0

    def stats(self) -> Dict[str, int]:
        return {"checks": self.checks, "restarts": self.restarts,
                "conflicts": self.conflicts, "asserted": self.asserted,
                "clauses_retained": self.clauses_retained,
                "cnf_clauses": self.context.cnf.num_clauses,
                "cnf_vars": self.context.cnf.num_vars}

    # ------------------------------------------------------------------ #
    def _sync_solver(self) -> CDCLSolver:
        """Feed clauses appended since the last check into the live solver."""
        if self._solver is None:
            self._solver = CDCLSolver()
        cnf = self.context.cnf
        self._solver.ensure_vars(cnf.num_vars)
        for clause in cnf.clauses[self._synced_clauses:]:
            self._solver.add_clause(clause)
        self._synced_clauses = len(cnf.clauses)
        return self._solver

    def _lex_minimize(self, solver: CDCLSolver,
                      model: Dict[int, bool]) -> Optional[Dict[int, bool]]:
        """Refine a model to the lex-smallest input-variable assignment.

        The search heuristics (and any warm solver state) determine only
        which model is found *first*; this greedy pass — walk the input
        bits in index order, try to flip each 1 to 0 under the already
        fixed prefix — converges to the unique lexicographically smallest
        satisfying input assignment.  Tseitin variables are functionally
        forced by the inputs, so the whole model is canonical.  Returns
        None on a deadline expiry mid-refinement.

        The bit order is the AIG input order, which is determined by the
        order constraints were asserted — identical for an incremental
        session and a from-scratch one replaying the same assertions.
        Zero bits are free (the current model witnesses them); only bits
        currently 1 need a solver call, and the solver's assumption-prefix
        trail reuse makes consecutive calls re-propagate almost nothing.
        """
        prefix: List[int] = []
        for var in sorted(self.context.input_vars().values()):
            if not model.get(var, False):
                # Already 0: the current model witnesses this prefix.
                prefix.append(-var)
                continue
            trial = solver.solve(prefix + [-var])
            self.conflicts += trial.conflicts
            if trial.is_sat:
                model = trial.model
                prefix.append(-var)
            elif trial.is_unsat:
                prefix.append(var)
            else:
                return None
        return model

    def check(self, deadline: Optional[float] = None) -> SmtResult:
        """Decide satisfiability of everything asserted so far."""
        start = time.monotonic()
        self.checks += 1
        if self._root_unsat:
            return SmtResult("unsat", None, "normalise", time.monotonic() - start)
        if deadline is not None and time.monotonic() > deadline:
            return SmtResult("unknown", None, "timeout", time.monotonic() - start)

        conflicts_before = self.conflicts
        solver = self._sync_solver()
        solver.deadline = deadline
        sat_result = solver.solve()
        self.conflicts += sat_result.conflicts
        if sat_result.is_unsat:
            return SmtResult("unsat", None, "sat:incremental",
                             time.monotonic() - start,
                             self.conflicts - conflicts_before)
        model = None
        if sat_result.is_sat:
            # _lex_minimize adds its assumption-solve conflicts to
            # self.conflicts, so the delta below covers the whole check.
            model = self._lex_minimize(solver, sat_result.model)
        elapsed = time.monotonic() - start
        query_conflicts = self.conflicts - conflicts_before
        if model is None:
            return SmtResult("unknown", None, "timeout", elapsed,
                             query_conflicts)

        values: Dict[str, int] = {name: 0 for name in self._widths}
        for bit_name, cnf_var in self.context.input_vars().items():
            if not model.get(cnf_var, False):
                continue
            var_name, _, index_part = bit_name.rpartition("[")
            bit_index = int(index_part[:-1])
            if var_name in values:
                values[var_name] |= 1 << bit_index
        return SmtResult("sat", Model(values, dict(self._widths)), "sat:incremental",
                         elapsed, query_conflicts)


_DEFAULT_SOLVER = SmtSolver()


def check_sat(constraints: Sequence[BVExpr] | BVExpr,
              deadline: Optional[float] = None,
              solver: Optional[SmtSolver] = None) -> SmtResult:
    """Decide satisfiability of a constraint (or conjunction of constraints)."""
    if isinstance(constraints, BVExpr):
        constraints = [constraints]
    active = solver if solver is not None else _DEFAULT_SOLVER
    return active.check(list(constraints), deadline=deadline)
