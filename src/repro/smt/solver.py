"""Satisfiability of word-level bitvector constraints.

``check_sat`` takes one or more 1-bit expressions (treated as a
conjunction), simplifies them, and decides satisfiability with a layered
strategy that mirrors the paper's solver portfolio:

1. *normalise* -- the smart-constructor rewriting may already reduce the
   conjunction to a constant;
2. *simulate*  -- a short burst of random concrete assignments looks for an
   easy satisfying assignment (the cheap way to answer SAT queries);
3. *bit-blast + SAT portfolio* -- the complete decision procedure.

Every entry point accepts a ``deadline`` (an absolute ``time.monotonic``
value); queries that exceed it report ``unknown``, which the synthesis
driver surfaces as the paper's "timeout" outcome.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.bv import bvand, bvvar
from repro.bv.ast import BVExpr
from repro.bv.bitblast import BitBlaster
from repro.bv.cnf import aig_to_cnf
from repro.bv.eval import evaluate, var_widths
from repro.sat.portfolio import SatPortfolio
from repro.smt.model import Model

__all__ = ["SmtResult", "check_sat", "SmtSolver"]


@dataclass
class SmtResult:
    """Outcome of a word-level satisfiability query."""

    status: str  # "sat", "unsat", "unknown"
    model: Optional[Model] = None
    strategy: str = "none"  # which layer decided the query
    time_seconds: float = 0.0
    sat_conflicts: int = 0

    @property
    def is_sat(self) -> bool:
        return self.status == "sat"

    @property
    def is_unsat(self) -> bool:
        return self.status == "unsat"

    @property
    def is_unknown(self) -> bool:
        return self.status == "unknown"


class SmtSolver:
    """A configurable word-level solver instance."""

    def __init__(self, random_probes: int = 32, seed: int = 0,
                 portfolio: Optional[SatPortfolio] = None) -> None:
        self.random_probes = random_probes
        self.rng = random.Random(seed)
        self.portfolio = portfolio if portfolio is not None else SatPortfolio()

    # ------------------------------------------------------------------ #
    def check(self, constraints: Sequence[BVExpr],
              deadline: Optional[float] = None) -> SmtResult:
        start = time.monotonic()
        for constraint in constraints:
            if constraint.width != 1:
                raise ValueError("constraints must be 1-bit expressions")

        formula = bvand(*constraints) if len(constraints) > 1 else constraints[0]

        # Layer 1: normalisation.
        if formula.is_const():
            status = "sat" if formula.value else "unsat"
            model = Model({}, {}) if status == "sat" else None
            return SmtResult(status, model, "normalise", time.monotonic() - start)

        widths = var_widths(formula)

        # Layer 2: random probing for an easy SAT answer.
        for _ in range(self.random_probes):
            if deadline is not None and time.monotonic() > deadline:
                return SmtResult("unknown", None, "timeout", time.monotonic() - start)
            assignment = {name: self.rng.getrandbits(width) for name, width in widths.items()}
            if evaluate(formula, assignment):
                return SmtResult("sat", Model(assignment, widths), "simulate",
                                 time.monotonic() - start)

        # Layer 3: bit-blast and hand to the SAT portfolio.
        blaster = BitBlaster()
        bits = blaster.blast(formula)
        cnf, input_vars = aig_to_cnf(blaster.aig, bits)
        sat_result, winner = self.portfolio.solve(cnf, deadline=deadline)
        elapsed = time.monotonic() - start
        if sat_result.is_unknown:
            return SmtResult("unknown", None, "timeout", elapsed, sat_result.conflicts)
        if sat_result.is_unsat:
            return SmtResult("unsat", None, f"sat:{winner}", elapsed, sat_result.conflicts)

        values: Dict[str, int] = {name: 0 for name in widths}
        for bit_name, cnf_var in input_vars.items():
            if not sat_result.model.get(cnf_var, False):
                continue
            var_name, _, index_part = bit_name.rpartition("[")
            bit_index = int(index_part[:-1])
            if var_name in values:
                values[var_name] |= 1 << bit_index
        return SmtResult("sat", Model(values, widths), f"sat:{winner}", elapsed,
                         sat_result.conflicts)


_DEFAULT_SOLVER = SmtSolver()


def check_sat(constraints: Sequence[BVExpr] | BVExpr,
              deadline: Optional[float] = None,
              solver: Optional[SmtSolver] = None) -> SmtResult:
    """Decide satisfiability of a constraint (or conjunction of constraints)."""
    if isinstance(constraints, BVExpr):
        constraints = [constraints]
    active = solver if solver is not None else _DEFAULT_SOLVER
    return active.check(list(constraints), deadline=deadline)
