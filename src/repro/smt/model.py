"""Satisfying assignments for word-level queries."""

from __future__ import annotations

from typing import Dict, Iterator, Mapping

__all__ = ["Model"]


class Model:
    """A satisfying assignment: variable name -> unsigned integer value."""

    def __init__(self, values: Mapping[str, int], widths: Mapping[str, int]) -> None:
        self._values: Dict[str, int] = dict(values)
        self._widths: Dict[str, int] = dict(widths)

    def __getitem__(self, name: str) -> int:
        return self._values[name]

    def get(self, name: str, default: int = 0) -> int:
        return self._values.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def width(self, name: str) -> int:
        return self._widths[name]

    def as_dict(self) -> Dict[str, int]:
        return dict(self._values)

    def __repr__(self) -> str:
        pairs = ", ".join(f"{k}={v:#x}" for k, v in sorted(self._values.items()))
        return f"Model({pairs})"
