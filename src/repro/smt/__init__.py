"""Word-level QF_BV solving, equivalence checking and CEGIS synthesis.

This subpackage is the reproduction's stand-in for Rosette's solver-aided
queries: :mod:`repro.smt.solver` decides satisfiability of bitvector
constraints, :mod:`repro.smt.equivalence` decides equivalence of two
bitvector expressions (the verification side of synthesis), and
:mod:`repro.smt.cegis` implements the exists-forall synthesis query of
Section 3.3 by counterexample-guided inductive synthesis.
"""

from repro.smt.cegis import CegisResult, synthesize
from repro.smt.equivalence import EquivalenceResult, check_equivalence
from repro.smt.model import Model
from repro.smt.solver import IncrementalSmtSession, SmtResult, check_sat

__all__ = [
    "Model",
    "SmtResult",
    "check_sat",
    "IncrementalSmtSession",
    "EquivalenceResult",
    "check_equivalence",
    "CegisResult",
    "synthesize",
]
