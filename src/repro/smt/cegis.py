"""Counterexample-guided inductive synthesis (CEGIS).

The paper's synthesis query (Section 3.3) is an exists-forall problem:

    ∃ holes . ∀ inputs . sketch(inputs, holes) = design(inputs)

Rosette discharges this through its symbolic virtual machine and an SMT
solver; this reproduction uses the classic CEGIS loop instead, which only
ever issues quantifier-free queries to the underlying solver:

* the *candidate* step asks for hole values consistent with a finite set of
  concrete input examples (a query over hole variables only);
* the *verification* step checks the candidate against the specification on
  all inputs (an equivalence query over input variables only) and, on
  failure, adds the counterexample to the example set.

Both steps honour a deadline so the caller can reproduce the paper's
per-query synthesis timeouts.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bv import bv, bvand, bveq
from repro.bv.ast import BVExpr
from repro.bv.eval import var_widths
from repro.bv.simplify import substitute
from repro.engine.budget import Budget
from repro.smt.equivalence import check_equivalence
from repro.smt.solver import SmtSolver, check_sat

__all__ = ["CegisResult", "Obligation", "synthesize"]


@dataclass
class Obligation:
    """One equality the synthesized program must satisfy for all inputs."""

    spec: BVExpr
    sketch: BVExpr

    def __post_init__(self) -> None:
        if self.spec.width != self.sketch.width:
            raise ValueError(
                f"obligation width mismatch: spec {self.spec.width} vs sketch {self.sketch.width}"
            )


@dataclass
class CegisResult:
    """Outcome of a synthesis attempt."""

    status: str  # "sat", "unsat", "unknown"
    hole_values: Optional[Dict[str, int]] = None
    iterations: int = 0
    examples_used: int = 0
    time_seconds: float = 0.0
    candidate_strategy: str = "none"
    verify_strategy: str = "none"

    @property
    def succeeded(self) -> bool:
        return self.status == "sat"


def _collect_inputs(obligations: Sequence[Obligation],
                    hole_widths: Mapping[str, int]) -> Dict[str, int]:
    """Free variables of the obligations that are not holes (i.e. inputs)."""
    inputs: Dict[str, int] = {}
    for obligation in obligations:
        for expr in (obligation.spec, obligation.sketch):
            for name, width in var_widths(expr).items():
                if name in hole_widths:
                    continue
                existing = inputs.get(name)
                if existing is not None and existing != width:
                    raise ValueError(f"input {name!r} used at widths {existing} and {width}")
                inputs[name] = width
    return inputs


def _initial_examples(input_widths: Mapping[str, int], rng: random.Random,
                      count: int) -> List[Dict[str, int]]:
    examples = [
        {name: 0 for name in input_widths},
        {name: (1 << width) - 1 for name, width in input_widths.items()},
        {name: 1 for name in input_widths},
    ]
    for _ in range(count):
        examples.append({name: rng.getrandbits(width) for name, width in input_widths.items()})
    # Drop duplicates while preserving order.
    unique: List[Dict[str, int]] = []
    for example in examples:
        if example not in unique:
            unique.append(example)
    return unique


def synthesize(obligations: Sequence[Obligation] | Obligation,
               hole_widths: Mapping[str, int],
               hole_constraints: Sequence[BVExpr] = (),
               deadline: Optional[float] = None,
               max_iterations: int = 64,
               seed: int = 0,
               solver: Optional[SmtSolver] = None,
               initial_random_examples: int = 2,
               budget: Optional[Budget] = None) -> CegisResult:
    """Solve ``∃ holes . ∀ inputs . ⋀ spec_i = sketch_i`` by CEGIS.

    Args:
        obligations: equalities to enforce (one per checked timestep).
        hole_widths: the hole variables (name -> width) to solve for.
        hole_constraints: extra 1-bit constraints over hole variables (the
            architecture description's "additional constraints").
        deadline: absolute ``time.monotonic`` cutoff, or None (a plain
            convenience form of ``budget``).
        max_iterations: CEGIS round limit (a safety net; the hole space is
            finite so the loop terminates regardless).
        seed: RNG seed for the initial examples.
        solver: optional shared :class:`SmtSolver`.
        budget: the engine-level :class:`Budget`; wins over ``deadline``.
    """
    start = time.monotonic()
    if budget is not None:
        deadline = budget.start().deadline
    if isinstance(obligations, Obligation):
        obligations = [obligations]
    obligations = list(obligations)
    if not obligations:
        raise ValueError("at least one obligation is required")

    rng = random.Random(seed)
    input_widths = _collect_inputs(obligations, hole_widths)
    examples = _initial_examples(input_widths, rng, initial_random_examples)

    result = CegisResult(status="unknown")
    constraints_base = list(hole_constraints)

    for iteration in range(1, max_iterations + 1):
        result.iterations = iteration
        result.examples_used = len(examples)
        if deadline is not None and time.monotonic() > deadline:
            result.status = "unknown"
            break

        # ---------------- candidate step ---------------- #
        candidate_constraints: List[BVExpr] = list(constraints_base)
        for example in examples:
            bindings = {name: bv(value, input_widths[name]) for name, value in example.items()}
            for obligation in obligations:
                spec_value = substitute(obligation.spec, bindings)
                sketch_value = substitute(obligation.sketch, bindings)
                candidate_constraints.append(bveq(sketch_value, spec_value))
        candidate = check_sat(candidate_constraints, deadline=deadline, solver=solver)
        result.candidate_strategy = candidate.strategy
        if candidate.is_unsat:
            # No hole assignment satisfies even the finite example set, so no
            # assignment satisfies the full forall: the sketch cannot
            # implement the design.
            result.status = "unsat"
            break
        if candidate.is_unknown:
            result.status = "unknown"
            break

        hole_values = {name: candidate.model.get(name, 0) for name in hole_widths}
        hole_bindings = {name: bv(value, hole_widths[name])
                         for name, value in hole_values.items()}

        # ---------------- verification step ---------------- #
        verified = True
        for obligation in obligations:
            concrete_sketch = substitute(obligation.sketch, hole_bindings)
            equivalence = check_equivalence(concrete_sketch, obligation.spec,
                                            deadline=deadline, solver=solver)
            result.verify_strategy = equivalence.strategy
            if equivalence.is_equivalent:
                continue
            verified = False
            if equivalence.is_unknown:
                result.status = "unknown"
                result.time_seconds = time.monotonic() - start
                return result
            counterexample = {name: equivalence.counterexample.get(name, 0)
                              for name in input_widths}
            if counterexample in examples:
                # The candidate solver found a spurious model (should not
                # happen); avoid looping forever on the same example.
                raise RuntimeError("CEGIS made no progress: repeated counterexample")
            examples.append(counterexample)
            break

        if verified:
            result.status = "sat"
            result.hole_values = hole_values
            break

    result.time_seconds = time.monotonic() - start
    return result
