"""Counterexample-guided inductive synthesis (CEGIS).

The paper's synthesis query (Section 3.3) is an exists-forall problem:

    ∃ holes . ∀ inputs . sketch(inputs, holes) = design(inputs)

Rosette discharges this through its symbolic virtual machine and an SMT
solver; this reproduction uses the classic CEGIS loop instead, which only
ever issues quantifier-free queries to the underlying solver:

* the *candidate* step asks for hole values consistent with a finite set of
  concrete input examples (a query over hole variables only);
* the *verification* step checks the candidate against the specification on
  all inputs (an equivalence query over input variables only) and, on
  failure, adds the counterexample to the example set.

The candidate step runs on an :class:`~repro.smt.solver.IncrementalSmtSession`
in one of two modes:

* ``incremental=True`` threads **one persistent session** through the whole
  run: the AIG/CNF namespace stays alive (hole variables keep stable
  literals), each new counterexample appends only its own obligations'
  clauses, and the CDCL solver carries its learned clauses and level-0
  facts from iteration to iteration.  When a warm solve burns a slice of
  the remaining :class:`~repro.engine.budget.Budget` without answering, the
  session is restarted (cold solver, same context) — a budget-aware restart
  that can only change time-to-answer, never the answer.
* ``incremental=False`` (the default) rebuilds a fresh session every
  iteration — re-substituting, re-blasting and cold-starting, exactly the
  historical from-scratch behavior.

The verification step likewise runs in one of two modes:

* ``incremental_verify=True`` builds one
  :class:`~repro.smt.equivalence.IncrementalVerifySession` per run: the
  sketch cone and spec miters are blasted **once** (holes left free), and
  each candidate is checked by binding its hole values as assumptions over
  the stable hole literals, so iteration N's verify query reuses iteration
  1's CNF, learned clauses and branching activity.  On an equivalence-check
  *failure* the session's ``last_core`` names the subset of hole bits
  actually responsible, and a *blocking constraint* over that prefix is
  added to the candidate side — pruning every candidate sharing the prefix
  rather than only the one just refuted.  The blocking constraints are
  logically entailed by the counterexample's own example constraints, so
  they never change which candidates are reachable — only how fast the
  solver discards dead ones.
* ``incremental_verify=False`` (the default) keeps each query on the
  racing solver portfolio — the fallback and cross-check path.

Both candidate modes assert the same constraints in the same order, and the
session *canonicalizes* every satisfying model after the (heuristic, VSIDS)
search finds one: a greedy assumption-solve pass refines it to the
lexicographically smallest input assignment, which is a property of the
constraint set rather than of the search.  Verification counterexamples are
canonical too (``canonical=True`` on
:func:`~repro.smt.equivalence.check_equivalence`): the portfolio and the
incremental verifier share the structural/normalise/probing fast layers —
including the probing RNG stream — and both canonicalize SAT-layer models,
so the four mode combinations walk identical candidate/counterexample
trajectories and return identical ``CegisResult`` statuses, hole values and
iteration counts by construction.  (Skipping either canonicalization pass
would silently break this equality.)

Both steps honour a deadline so the caller can reproduce the paper's
per-query synthesis timeouts.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bv import bv, bvand, bveq, bvextract, bvne, bvor, bvvar
from repro.bv.ast import BVExpr
from repro.bv.bitsim import PROBE_LANES, PackedEvaluator, first_sat_lane
from repro.bv.eval import evaluate, var_widths
from repro.bv.simplify import substitute
from repro.engine.budget import Budget
from repro.smt.equivalence import IncrementalVerifySession, check_equivalence
from repro.smt.solver import IncrementalSmtSession, SmtSolver

__all__ = ["CegisResult", "Obligation", "synthesize"]

#: Minimum budget slice (seconds) a warm incremental solve gets before a
#: budget-aware restart is considered.
_MIN_RESTART_SLICE = 0.25

#: Fraction of the remaining budget a warm solve may burn before the
#: session is restarted and the query retried on a cold solver.
_RESTART_FRACTION = 0.5


@dataclass
class Obligation:
    """One equality the synthesized program must satisfy for all inputs."""

    spec: BVExpr
    sketch: BVExpr

    def __post_init__(self) -> None:
        if self.spec.width != self.sketch.width:
            raise ValueError(
                f"obligation width mismatch: spec {self.spec.width} vs sketch {self.sketch.width}"
            )


@dataclass
class CegisResult:
    """Outcome of a synthesis attempt."""

    status: str  # "sat", "unsat", "unknown"
    hole_values: Optional[Dict[str, int]] = None
    iterations: int = 0
    examples_used: int = 0
    time_seconds: float = 0.0
    candidate_strategy: str = "none"
    verify_strategy: str = "none"
    #: Whether the candidate step ran on one persistent solver session.
    incremental: bool = False
    #: Whether the verification step ran on one persistent miter session.
    incremental_verify: bool = False
    #: Why a run degraded to ``unknown`` (empty for clean outcomes).
    diagnostic: str = ""
    #: Budget-aware session restarts performed during the run (candidate
    #: and verify sessions combined).
    solver_restarts: int = 0
    #: SAT conflicts spent in candidate queries (all iterations).
    candidate_conflicts: int = 0
    #: Wall time spent in the candidate step (all iterations).
    candidate_time_seconds: float = 0.0
    #: Wall time spent in the verification step (all iterations, either
    #: verifier).
    verify_time_seconds: float = 0.0
    #: Learned clauses alive in the persistent candidate session when the
    #: run ended (always 0 in from-scratch mode — nothing survives an
    #: iteration).
    clauses_retained: int = 0
    #: Learned clauses alive in the persistent verify session at the end
    #: (always 0 when ``incremental_verify`` is off).
    verify_clauses_retained: int = 0
    #: Verification-failure unsat cores turned into candidate-space
    #: blocking constraints (0 when ``incremental_verify`` is off).
    cores_pruned: int = 0
    #: Learned clauses deleted by clause-DB reduction across every solver
    #: session the run built (persistent candidate/verify sessions and
    #: from-scratch throwaway candidate sessions alike).
    clauses_deleted: int = 0
    #: Largest learned database any of the run's solvers carried (the
    #: memory high-water mark reduction bounds).
    db_size_peak: int = 0
    #: Trail literals unit-propagated across every warm solver session the
    #: run built (persistent candidate/verify sessions and from-scratch
    #: throwaway candidate sessions alike) — the numerator of the
    #: propagation-throughput metric.
    propagations: int = 0
    #: Watcher entries examined by those propagations (the denominator of
    #: the blocker-literal hit-rate metric).
    watcher_visits: int = 0
    #: Wall seconds those sessions spent inside ``CDCLSolver.solve``.
    solver_solve_seconds: float = 0.0
    #: Packed random-probe assignments evaluated by the bit-parallel
    #: simulator (candidate-step hole batches and verification miter
    #: pre-filtering combined).
    probe_lanes_evaluated: int = 0
    #: Probe batches that found a satisfying lane — each candidate-step
    #: hit is a session solve the SAT layer never had to run.
    probe_hits: int = 0
    #: Verification counterexamples discovered by the packed
    #: random-simulation pre-filter, i.e. without blasting the miter.
    prefilter_cex_found: int = 0

    @property
    def succeeded(self) -> bool:
        return self.status == "sat"

    @property
    def propagations_per_second(self) -> float:
        """Propagation throughput over the run's SAT-solving seconds."""
        if self.solver_solve_seconds <= 0:
            return 0.0
        return self.propagations / self.solver_solve_seconds

    @property
    def watcher_visits_per_propagation(self) -> float:
        """Mean watcher entries examined per propagated literal."""
        if not self.propagations:
            return 0.0
        return self.watcher_visits / self.propagations


def _collect_inputs(obligations: Sequence[Obligation],
                    hole_widths: Mapping[str, int]) -> Dict[str, int]:
    """Free variables of the obligations that are not holes (i.e. inputs)."""
    inputs: Dict[str, int] = {}
    for obligation in obligations:
        for expr in (obligation.spec, obligation.sketch):
            for name, width in var_widths(expr).items():
                if name in hole_widths:
                    continue
                existing = inputs.get(name)
                if existing is not None and existing != width:
                    raise ValueError(f"input {name!r} used at widths {existing} and {width}")
                inputs[name] = width
    return inputs


def _initial_examples(input_widths: Mapping[str, int], rng: random.Random,
                      count: int) -> List[Dict[str, int]]:
    examples = [
        {name: 0 for name in input_widths},
        {name: (1 << width) - 1 for name, width in input_widths.items()},
        {name: 1 for name in input_widths},
    ]
    for _ in range(count):
        examples.append({name: rng.getrandbits(width) for name, width in input_widths.items()})
    # Drop duplicates while preserving order.
    unique: List[Dict[str, int]] = []
    for example in examples:
        if example not in unique:
            unique.append(example)
    return unique


def _example_constraints(obligations: Sequence[Obligation],
                         input_widths: Mapping[str, int],
                         example: Mapping[str, int]) -> List[BVExpr]:
    """The candidate obligations for one concrete input example."""
    bindings = {name: bv(value, input_widths[name]) for name, value in example.items()}
    constraints: List[BVExpr] = []
    for obligation in obligations:
        spec_value = substitute(obligation.spec, bindings)
        sketch_value = substitute(obligation.sketch, bindings)
        constraints.append(bveq(sketch_value, spec_value))
    return constraints


def _blocking_constraint(prefix: Sequence[Tuple[str, int, int]],
                         hole_widths: Mapping[str, int]) -> BVExpr:
    """A 1-bit constraint excluding every hole assignment extending ``prefix``.

    ``prefix`` is the ``(hole, bit, value)`` core of a verification
    failure; the constraint demands at least one of those bits differ.  An
    empty prefix means *every* candidate fails on the counterexample, so
    the constraint is constant false (the candidate space is empty) —
    which the example constraint entailing it would also have proven.
    """
    disequalities = [
        bvne(bvextract(bit, bit, bvvar(name, hole_widths[name])), bv(value, 1))
        for name, bit, value in prefix
    ]
    if not disequalities:
        return bv(0, 1)
    if len(disequalities) == 1:
        return disequalities[0]
    return bvor(*disequalities)


def _budget_slice_deadline(budget: Optional[Budget],
                           deadline: Optional[float]) -> Optional[float]:
    """The warm solver's slice of the remaining budget (restart scheduling)."""
    if budget is None or deadline is None:
        return deadline
    remaining = budget.remaining()
    if remaining is None or remaining <= 0:
        return deadline
    return min(deadline,
               time.monotonic() + max(_MIN_RESTART_SLICE,
                                      _RESTART_FRACTION * remaining))


def _solve_candidate(candidate_constraints: Sequence[BVExpr],
                     sat_constraints: Optional[List[BVExpr]],
                     iteration: int, seed: int, random_probes: int,
                     deadline: Optional[float],
                     session: Optional[IncrementalSmtSession],
                     budget: Optional[Budget],
                     result: "CegisResult",
                     reduce_interval: Optional[int] = None,
                     max_lbd_keep: Optional[int] = None) -> Tuple[Optional[Mapping[str, int]], str, str]:
    """Decide the candidate query; returns ``(model, status, strategy)``.

    The layering mirrors :class:`~repro.smt.solver.SmtSolver` — normalise,
    random probing, then SAT — but the SAT layer runs on an incremental
    session instead of a portfolio race, and the probing RNG is re-seeded
    per iteration so incremental and from-scratch runs draw identical
    probes.  ``session=None`` is from-scratch mode: a throwaway session is
    built (re-blasting everything, asserting ``sat_constraints`` — the
    shared temporal order including blocking constraints) only if probing
    fails.

    Blocking constraints (core-driven pruning) join only the SAT layer:
    they are entailed by the example constraints already in
    ``candidate_constraints``, so evaluating probes without them gives the
    same verdicts while keeping the probe RNG stream — which draws one
    value per *formula variable* — independent of which hole bits the
    verification cores happened to mention.
    """
    formula = bvand(*candidate_constraints) \
        if len(candidate_constraints) > 1 else candidate_constraints[0]

    if formula.is_const():
        if formula.value:
            return {}, "sat", "normalise"
        return None, "unsat", "normalise"

    widths = var_widths(formula)
    # All-zeros first: it is both the cheapest probe and, when it
    # satisfies, exactly the lex-smallest model the SAT layer would have
    # canonicalized to — so taking it keeps the two modes aligned for free.
    zeros = {name: 0 for name in widths}
    if evaluate(formula, zeros):
        return zeros, "sat", "simulate"
    # Random probing, SAT-sweep style: the accumulated counterexample
    # obligations are one conjunction, and each packed batch evaluates 64
    # hole assignments against all of them per word-op — a formula-free
    # variable draws nothing, so probing is pointless once zeros failed.
    # The per-iteration RNG is drawn whole (it is discarded afterwards, so
    # unlike SmtSolver.check no stream-position replay is needed) and
    # lanes are scanned in order: the first satisfying lane is the first
    # satisfying probe the historical scalar loop would have returned.
    if random_probes and widths:
        probe_rng = random.Random((seed & 0xFFFFFFFF) * 1_000_003 + iteration)
        items = list(widths.items())
        evaluator = PackedEvaluator(formula)
        drawn = 0
        while drawn < random_probes:
            if deadline is not None and time.monotonic() > deadline:
                return None, "unknown", "timeout"
            chunk = min(PROBE_LANES, random_probes - drawn)
            batch = [{name: probe_rng.getrandbits(width)
                      for name, width in items} for _ in range(chunk)]
            drawn += chunk
            result.probe_lanes_evaluated += chunk
            hits = evaluator.sat_lanes(batch)
            if hits:
                result.probe_hits += 1
                return batch[first_sat_lane(hits)], "sat", "simulate"

    incremental = session is not None
    if not incremental:
        # Throwaway sessions honour the same reduction knobs as persistent
        # ones, so aggressive settings exercise every mode combination.
        session = IncrementalSmtSession(reduce_interval=reduce_interval,
                                        max_lbd_keep=max_lbd_keep)
        session.assert_constraints(sat_constraints)

    check_deadline = deadline
    if incremental:
        # Budget-aware restart scheduling: give the warm solver a slice of
        # the remaining budget; if it burns the slice without answering,
        # fall back to a cold solver (same context, same canonical answer)
        # with whatever budget is left.
        check_deadline = _budget_slice_deadline(budget, deadline)

    smt_result = session.check(deadline=check_deadline)
    if (smt_result.is_unknown and incremental and check_deadline != deadline
            and time.monotonic() < deadline):
        # The session counts its own restarts; synthesize() copies the
        # total into the result at the end of the run.
        session.restart()
        smt_result = session.check(deadline=deadline)

    result.candidate_conflicts += smt_result.sat_conflicts
    if not incremental:
        # The throwaway session dies here; fold its clause-DB and
        # propagation telemetry in now (the persistent sessions are folded
        # once, at the end of the run), so from-scratch candidate work is
        # counted too.
        result.clauses_deleted += session.clauses_deleted
        result.db_size_peak = max(result.db_size_peak, session.db_size_peak)
        result.propagations += session.propagations
        result.watcher_visits += session.watcher_visits
        result.solver_solve_seconds += session.solve_seconds
    strategy = "sat:incremental" if incremental else "sat:fresh"
    if smt_result.is_unknown:
        return None, "unknown", "timeout"
    if smt_result.is_unsat:
        return None, "unsat", strategy
    return smt_result.model, "sat", strategy


def _verify_sat_layer(verify_session: IncrementalVerifySession, index: int,
                      hole_values: Mapping[str, int],
                      budget: Optional[Budget]):
    """The incremental verifier as a pluggable SAT layer for one obligation.

    Wraps the assumption-gated session query in the same budget-slice
    restart policy as the candidate step: the warm solver gets a slice of
    the remaining budget; burning it without an answer triggers a cold
    restart (answer-preserving — counterexamples are canonical) with the
    full deadline.
    """
    def layer(formula, widths, deadline):
        check_deadline = _budget_slice_deadline(budget, deadline)
        smt_result = verify_session.check_obligation(index, hole_values,
                                                     deadline=check_deadline)
        if (smt_result.is_unknown and check_deadline != deadline
                and deadline is not None and time.monotonic() < deadline):
            verify_session.restart()
            smt_result = verify_session.check_obligation(index, hole_values,
                                                         deadline=deadline)
        return smt_result
    return layer


def synthesize(obligations: Sequence[Obligation] | Obligation,
               hole_widths: Mapping[str, int],
               hole_constraints: Sequence[BVExpr] = (),
               deadline: Optional[float] = None,
               max_iterations: int = 64,
               seed: int = 0,
               solver: Optional[SmtSolver] = None,
               initial_random_examples: int = 2,
               budget: Optional[Budget] = None,
               incremental: bool = False,
               incremental_verify: bool = False,
               random_probes: int = 32,
               reduce_interval: Optional[int] = None,
               max_lbd_keep: Optional[int] = None) -> CegisResult:
    """Solve ``∃ holes . ∀ inputs . ⋀ spec_i = sketch_i`` by CEGIS.

    Args:
        obligations: equalities to enforce (one per checked timestep).
        hole_widths: the hole variables (name -> width) to solve for.
        hole_constraints: extra 1-bit constraints over hole variables (the
            architecture description's "additional constraints").
        deadline: absolute ``time.monotonic`` cutoff, or None (a plain
            convenience form of ``budget``).
        max_iterations: CEGIS round limit (a safety net; the hole space is
            finite so the loop terminates regardless).
        seed: RNG seed for the initial examples and candidate probing.
        solver: optional shared :class:`SmtSolver` (the verification side).
        budget: the engine-level :class:`Budget`; wins over ``deadline``.
        incremental: thread one persistent solver session through the
            candidate step (clause reuse across iterations) instead of
            rebuilding per iteration.  Statuses and hole values are
            identical either way; only the time-to-answer changes.
        incremental_verify: check candidates on one persistent
            assumption-gated miter session (sketch/spec blasted once, hole
            values bound as assumptions, verification-failure cores turned
            into candidate-pruning blocking constraints) instead of
            re-blasting and racing the portfolio per query.  Statuses,
            hole values, counterexample sequences and iteration counts are
            identical either way by construction.
        random_probes: candidate-step random probe attempts per iteration.
        reduce_interval: learned clauses between clause-DB reductions in
            the CEGIS solver sessions (None defers to the
            :class:`~repro.sat.solver.CDCLSolver` default; 0 disables
            reduction).  Reduction bounds solver memory on long runs and
            never changes statuses, hole values or iteration counts — the
            differential-fuzz suite runs aggressive settings across all
            four mode combinations to hold it to that.
        max_lbd_keep: glue threshold — learned clauses with LBD at or
            below this survive every reduction (None defers to the solver
            default).
    """
    start = time.monotonic()
    if budget is not None:
        deadline = budget.start().deadline
    if isinstance(obligations, Obligation):
        obligations = [obligations]
    obligations = list(obligations)
    if not obligations:
        raise ValueError("at least one obligation is required")

    rng = random.Random(seed)
    input_widths = _collect_inputs(obligations, hole_widths)
    examples = _initial_examples(input_widths, rng, initial_random_examples)

    result = CegisResult(status="unknown", incremental=incremental,
                         incremental_verify=incremental_verify)
    constraints_base = list(hole_constraints)

    session: Optional[IncrementalSmtSession] = None
    asserted: List[BVExpr] = []
    if incremental:
        session = IncrementalSmtSession(reduce_interval=reduce_interval,
                                        max_lbd_keep=max_lbd_keep)
        session.assert_constraints(constraints_base)
        asserted.extend(constraints_base)

    verify_session: Optional[IncrementalVerifySession] = None
    #: Which holes the candidate constraints mention so far.  Blocking
    #: constraints are only emitted over holes in this set: a core can
    #: name a hole bit that substitution folded out of every example so
    #: far, and blasting it early (something the portfolio-verified run
    #: never does) would skew the candidate AIG's input order — and with
    #: it the canonical model — between the two verifier modes.
    seen_holes: set = set()

    def _note_holes(constraints: Sequence[BVExpr]) -> None:
        for constraint in constraints:
            seen_holes.update(name for name in var_widths(constraint)
                              if name in hole_widths)

    #: The shared temporal order of candidate constraints: ``("example",
    #: input_assignment, prebuilt_constraints_or_None)`` and ``("blocking",
    #: expr, None)`` events as they were discovered.  Both candidate modes
    #: assert constraints in exactly this sequence (a blocking constraint
    #: right after the counterexample that produced it), so they build
    #: identical AIG namespaces and therefore identical canonical models.
    #: In incremental-verify mode each example's constraints are built once
    #: at discovery (``seen_holes`` needs them) and carried here so the
    #: incremental candidate step does not substitute them a second time.
    event_log: List[Tuple[str, object, Optional[List[BVExpr]]]] = []
    if incremental_verify:
        # Blast the sketch cone and spec miters exactly once per run; every
        # iteration's verify query is an assumption solve against this.
        verify_session = IncrementalVerifySession(obligations, hole_widths,
                                                  input_widths,
                                                  reduce_interval=reduce_interval,
                                                  max_lbd_keep=max_lbd_keep)
        _note_holes(constraints_base)
        for example in examples:
            constraints = _example_constraints(obligations, input_widths,
                                               example)
            _note_holes(constraints)
            event_log.append(("example", example, constraints))
    else:
        event_log.extend(("example", example, None) for example in examples)
    asserted_events = 0

    for iteration in range(1, max_iterations + 1):
        result.iterations = iteration
        result.examples_used = len(examples)
        if deadline is not None and time.monotonic() > deadline:
            result.status = "unknown"
            break

        # ---------------- candidate step ---------------- #
        candidate_start = time.monotonic()
        if incremental:
            # Only the events gained since the last round are substituted
            # and asserted; everything older is already in the context.
            for kind, payload, prebuilt in event_log[asserted_events:]:
                if kind == "example":
                    constraints = prebuilt if prebuilt is not None else \
                        _example_constraints(obligations, input_widths, payload)
                    session.assert_constraints(constraints)
                    asserted.extend(constraints)
                else:
                    session.assert_constraints([payload])
            asserted_events = len(event_log)
            candidate_constraints: Sequence[BVExpr] = asserted
            sat_constraints: Optional[List[BVExpr]] = None
        else:
            # From-scratch: re-substitute the sketch for *all* accumulated
            # examples, as the historical implementation did.  The probing
            # layers see only the example constraints; the throwaway SAT
            # session additionally gets the blocking constraints, replayed
            # in the shared temporal order.
            candidate_constraints = list(constraints_base)
            sat_constraints = list(constraints_base)
            for kind, payload, _prebuilt in event_log:
                if kind == "example":
                    constraints = _example_constraints(obligations,
                                                       input_widths, payload)
                    candidate_constraints.extend(constraints)
                    sat_constraints.extend(constraints)
                else:
                    sat_constraints.append(payload)

        model, status, strategy = _solve_candidate(
            candidate_constraints, sat_constraints, iteration, seed,
            random_probes, deadline, session, budget, result,
            reduce_interval, max_lbd_keep)
        result.candidate_strategy = strategy
        result.candidate_time_seconds += time.monotonic() - candidate_start
        if status == "unsat":
            # No hole assignment satisfies even the finite example set, so no
            # assignment satisfies the full forall: the sketch cannot
            # implement the design.
            result.status = "unsat"
            break
        if status == "unknown":
            result.status = "unknown"
            break

        hole_values = {name: model.get(name, 0) for name in hole_widths}
        hole_bindings = {name: bv(value, hole_widths[name])
                         for name, value in hole_values.items()}

        # ---------------- verification step ---------------- #
        verified = True
        abort = False
        verify_start = time.monotonic()
        for index, obligation in enumerate(obligations):
            concrete_sketch = substitute(obligation.sketch, hole_bindings)
            sat_layer = None
            if verify_session is not None:
                sat_layer = _verify_sat_layer(verify_session, index,
                                              hole_values, budget)
            equivalence = check_equivalence(concrete_sketch, obligation.spec,
                                            deadline=deadline, solver=solver,
                                            canonical=True,
                                            sat_layer=sat_layer)
            result.verify_strategy = equivalence.strategy
            result.probe_lanes_evaluated += equivalence.probe_lanes
            if equivalence.is_different and equivalence.strategy == "simulate":
                # The packed random-simulation pre-filter found the
                # counterexample before anything was blasted.
                result.probe_hits += 1
                result.prefilter_cex_found += 1
            if equivalence.is_equivalent:
                continue
            verified = False
            if equivalence.is_unknown:
                result.status = "unknown"
                abort = True
                break
            counterexample = {name: equivalence.counterexample.get(name, 0)
                              for name in input_widths}
            if counterexample in examples:
                # The candidate solver produced a spurious model (a solver
                # bug).  Degrade to "unknown" with a diagnostic instead of
                # crashing: one poisoned query must not take down a whole
                # sweep worker.
                result.status = "unknown"
                result.diagnostic = (
                    f"no progress at iteration {iteration}: verification "
                    f"repeated counterexample {counterexample!r} for a "
                    "candidate the solver claimed consistent")
                abort = True
                break
            examples.append(counterexample)
            if verify_session is None:
                event_log.append(("example", counterexample, None))
            else:
                # Core-driven pruning: ask the warm session *which* hole
                # bits doomed this candidate on the counterexample, and
                # block the whole prefix — entailed by the example
                # constraint just queued, so the trajectory is unchanged.
                # Emit only over holes the candidate constraints (now
                # including the new counterexample's) already introduce:
                # see the ``seen_holes`` comment above.
                new_constraints = _example_constraints(obligations,
                                                       input_widths,
                                                       counterexample)
                _note_holes(new_constraints)
                event_log.append(("example", counterexample, new_constraints))
                prefix = verify_session.failure_core(index, hole_values,
                                                     counterexample,
                                                     deadline=deadline)
                if prefix is not None and \
                        all(name in seen_holes for name, _, _ in prefix):
                    event_log.append(
                        ("blocking",
                         _blocking_constraint(prefix, hole_widths), None))
                    result.cores_pruned += 1
            break
        result.verify_time_seconds += time.monotonic() - verify_start

        if abort:
            break
        if verified:
            result.status = "sat"
            result.hole_values = hole_values
            break

    if session is not None:
        result.solver_restarts += session.restarts
        result.clauses_retained = session.clauses_retained
        result.clauses_deleted += session.clauses_deleted
        result.db_size_peak = max(result.db_size_peak, session.db_size_peak)
        result.propagations += session.propagations
        result.watcher_visits += session.watcher_visits
        result.solver_solve_seconds += session.solve_seconds
    if verify_session is not None:
        result.solver_restarts += verify_session.restarts
        result.verify_clauses_retained = verify_session.clauses_retained
        result.clauses_deleted += verify_session.clauses_deleted
        result.db_size_peak = max(result.db_size_peak,
                                  verify_session.db_size_peak)
        result.propagations += verify_session.propagations
        result.watcher_visits += verify_session.watcher_visits
        result.solver_solve_seconds += verify_session.solve_seconds
    result.time_seconds = time.monotonic() - start
    return result
