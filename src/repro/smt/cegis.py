"""Counterexample-guided inductive synthesis (CEGIS).

The paper's synthesis query (Section 3.3) is an exists-forall problem:

    ∃ holes . ∀ inputs . sketch(inputs, holes) = design(inputs)

Rosette discharges this through its symbolic virtual machine and an SMT
solver; this reproduction uses the classic CEGIS loop instead, which only
ever issues quantifier-free queries to the underlying solver:

* the *candidate* step asks for hole values consistent with a finite set of
  concrete input examples (a query over hole variables only);
* the *verification* step checks the candidate against the specification on
  all inputs (an equivalence query over input variables only) and, on
  failure, adds the counterexample to the example set.

The candidate step runs on an :class:`~repro.smt.solver.IncrementalSmtSession`
in one of two modes:

* ``incremental=True`` threads **one persistent session** through the whole
  run: the AIG/CNF namespace stays alive (hole variables keep stable
  literals), each new counterexample appends only its own obligations'
  clauses, and the CDCL solver carries its learned clauses and level-0
  facts from iteration to iteration.  When a warm solve burns a slice of
  the remaining :class:`~repro.engine.budget.Budget` without answering, the
  session is restarted (cold solver, same context) — a budget-aware restart
  that can only change time-to-answer, never the answer.
* ``incremental=False`` (the default) rebuilds a fresh session every
  iteration — re-substituting, re-blasting and cold-starting, exactly the
  historical from-scratch behavior.

Both modes assert the same constraints in the same order, and the session
*canonicalizes* every satisfying model after the (heuristic, VSIDS) search
finds one: a greedy assumption-solve pass refines it to the
lexicographically smallest input assignment, which is a property of the
constraint set rather than of the search.  That canonical model is
independent of warm-vs-cold solver state, so the two modes walk identical
candidate/counterexample trajectories and return identical ``CegisResult``
statuses and hole values.  (Skipping the canonicalization pass in
:class:`~repro.smt.solver.IncrementalSmtSession` would silently break this
equality.)  The verification step stays on the racing solver portfolio
(:func:`~repro.smt.equivalence.check_equivalence`).

Both steps honour a deadline so the caller can reproduce the paper's
per-query synthesis timeouts.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bv import bv, bvand, bveq
from repro.bv.ast import BVExpr
from repro.bv.eval import evaluate, var_widths
from repro.bv.simplify import substitute
from repro.engine.budget import Budget
from repro.smt.equivalence import check_equivalence
from repro.smt.solver import IncrementalSmtSession, SmtSolver

__all__ = ["CegisResult", "Obligation", "synthesize"]

#: Minimum budget slice (seconds) a warm incremental solve gets before a
#: budget-aware restart is considered.
_MIN_RESTART_SLICE = 0.25

#: Fraction of the remaining budget a warm solve may burn before the
#: session is restarted and the query retried on a cold solver.
_RESTART_FRACTION = 0.5


@dataclass
class Obligation:
    """One equality the synthesized program must satisfy for all inputs."""

    spec: BVExpr
    sketch: BVExpr

    def __post_init__(self) -> None:
        if self.spec.width != self.sketch.width:
            raise ValueError(
                f"obligation width mismatch: spec {self.spec.width} vs sketch {self.sketch.width}"
            )


@dataclass
class CegisResult:
    """Outcome of a synthesis attempt."""

    status: str  # "sat", "unsat", "unknown"
    hole_values: Optional[Dict[str, int]] = None
    iterations: int = 0
    examples_used: int = 0
    time_seconds: float = 0.0
    candidate_strategy: str = "none"
    verify_strategy: str = "none"
    #: Whether the candidate step ran on one persistent solver session.
    incremental: bool = False
    #: Why a run degraded to ``unknown`` (empty for clean outcomes).
    diagnostic: str = ""
    #: Budget-aware session restarts performed during the run.
    solver_restarts: int = 0
    #: SAT conflicts spent in candidate queries (all iterations).
    candidate_conflicts: int = 0
    #: Wall time spent in the candidate step (all iterations).
    candidate_time_seconds: float = 0.0
    #: Learned clauses alive in the persistent session when the run ended
    #: (always 0 in from-scratch mode — nothing survives an iteration).
    clauses_retained: int = 0

    @property
    def succeeded(self) -> bool:
        return self.status == "sat"


def _collect_inputs(obligations: Sequence[Obligation],
                    hole_widths: Mapping[str, int]) -> Dict[str, int]:
    """Free variables of the obligations that are not holes (i.e. inputs)."""
    inputs: Dict[str, int] = {}
    for obligation in obligations:
        for expr in (obligation.spec, obligation.sketch):
            for name, width in var_widths(expr).items():
                if name in hole_widths:
                    continue
                existing = inputs.get(name)
                if existing is not None and existing != width:
                    raise ValueError(f"input {name!r} used at widths {existing} and {width}")
                inputs[name] = width
    return inputs


def _initial_examples(input_widths: Mapping[str, int], rng: random.Random,
                      count: int) -> List[Dict[str, int]]:
    examples = [
        {name: 0 for name in input_widths},
        {name: (1 << width) - 1 for name, width in input_widths.items()},
        {name: 1 for name in input_widths},
    ]
    for _ in range(count):
        examples.append({name: rng.getrandbits(width) for name, width in input_widths.items()})
    # Drop duplicates while preserving order.
    unique: List[Dict[str, int]] = []
    for example in examples:
        if example not in unique:
            unique.append(example)
    return unique


def _example_constraints(obligations: Sequence[Obligation],
                         input_widths: Mapping[str, int],
                         example: Mapping[str, int]) -> List[BVExpr]:
    """The candidate obligations for one concrete input example."""
    bindings = {name: bv(value, input_widths[name]) for name, value in example.items()}
    constraints: List[BVExpr] = []
    for obligation in obligations:
        spec_value = substitute(obligation.spec, bindings)
        sketch_value = substitute(obligation.sketch, bindings)
        constraints.append(bveq(sketch_value, spec_value))
    return constraints


def _solve_candidate(candidate_constraints: Sequence[BVExpr],
                     iteration: int, seed: int, random_probes: int,
                     deadline: Optional[float],
                     session: Optional[IncrementalSmtSession],
                     budget: Optional[Budget],
                     result: "CegisResult") -> Tuple[Optional[Mapping[str, int]], str, str]:
    """Decide the candidate query; returns ``(model, status, strategy)``.

    The layering mirrors :class:`~repro.smt.solver.SmtSolver` — normalise,
    random probing, then SAT — but the SAT layer runs on an incremental
    session instead of a portfolio race, and the probing RNG is re-seeded
    per iteration so incremental and from-scratch runs draw identical
    probes.  ``session=None`` is from-scratch mode: a throwaway session is
    built (re-blasting everything) only if probing fails.
    """
    formula = bvand(*candidate_constraints) \
        if len(candidate_constraints) > 1 else candidate_constraints[0]

    if formula.is_const():
        if formula.value:
            return {}, "sat", "normalise"
        return None, "unsat", "normalise"

    widths = var_widths(formula)
    # All-zeros first: it is both the cheapest probe and, when it
    # satisfies, exactly the lex-smallest model the SAT layer would have
    # canonicalized to — so taking it keeps the two modes aligned for free.
    zeros = {name: 0 for name in widths}
    if evaluate(formula, zeros):
        return zeros, "sat", "simulate"
    probe_rng = random.Random((seed & 0xFFFFFFFF) * 1_000_003 + iteration)
    for _ in range(random_probes):
        if deadline is not None and time.monotonic() > deadline:
            return None, "unknown", "timeout"
        assignment = {name: probe_rng.getrandbits(width) for name, width in widths.items()}
        if evaluate(formula, assignment):
            return assignment, "sat", "simulate"

    incremental = session is not None
    if not incremental:
        session = IncrementalSmtSession()
        session.assert_constraints(candidate_constraints)

    check_deadline = deadline
    if incremental and budget is not None and deadline is not None:
        # Budget-aware restart scheduling: give the warm solver a slice of
        # the remaining budget; if it burns the slice without answering,
        # fall back to a cold solver (same context, same canonical answer)
        # with whatever budget is left.
        remaining = budget.remaining()
        if remaining is not None and remaining > 0:
            check_deadline = min(
                deadline,
                time.monotonic() + max(_MIN_RESTART_SLICE,
                                       _RESTART_FRACTION * remaining))

    smt_result = session.check(deadline=check_deadline)
    if (smt_result.is_unknown and incremental and check_deadline != deadline
            and time.monotonic() < deadline):
        # The session counts its own restarts; synthesize() copies the
        # total into the result at the end of the run.
        session.restart()
        smt_result = session.check(deadline=deadline)

    result.candidate_conflicts += smt_result.sat_conflicts
    strategy = "sat:incremental" if incremental else "sat:fresh"
    if smt_result.is_unknown:
        return None, "unknown", "timeout"
    if smt_result.is_unsat:
        return None, "unsat", strategy
    return smt_result.model, "sat", strategy


def synthesize(obligations: Sequence[Obligation] | Obligation,
               hole_widths: Mapping[str, int],
               hole_constraints: Sequence[BVExpr] = (),
               deadline: Optional[float] = None,
               max_iterations: int = 64,
               seed: int = 0,
               solver: Optional[SmtSolver] = None,
               initial_random_examples: int = 2,
               budget: Optional[Budget] = None,
               incremental: bool = False,
               random_probes: int = 32) -> CegisResult:
    """Solve ``∃ holes . ∀ inputs . ⋀ spec_i = sketch_i`` by CEGIS.

    Args:
        obligations: equalities to enforce (one per checked timestep).
        hole_widths: the hole variables (name -> width) to solve for.
        hole_constraints: extra 1-bit constraints over hole variables (the
            architecture description's "additional constraints").
        deadline: absolute ``time.monotonic`` cutoff, or None (a plain
            convenience form of ``budget``).
        max_iterations: CEGIS round limit (a safety net; the hole space is
            finite so the loop terminates regardless).
        seed: RNG seed for the initial examples and candidate probing.
        solver: optional shared :class:`SmtSolver` (the verification side).
        budget: the engine-level :class:`Budget`; wins over ``deadline``.
        incremental: thread one persistent solver session through the run
            (clause reuse across iterations) instead of rebuilding per
            iteration.  Statuses and hole values are identical either way;
            only the time-to-answer changes.
        random_probes: candidate-step random probe attempts per iteration.
    """
    start = time.monotonic()
    if budget is not None:
        deadline = budget.start().deadline
    if isinstance(obligations, Obligation):
        obligations = [obligations]
    obligations = list(obligations)
    if not obligations:
        raise ValueError("at least one obligation is required")

    rng = random.Random(seed)
    input_widths = _collect_inputs(obligations, hole_widths)
    examples = _initial_examples(input_widths, rng, initial_random_examples)

    result = CegisResult(status="unknown", incremental=incremental)
    constraints_base = list(hole_constraints)

    session: Optional[IncrementalSmtSession] = None
    asserted: List[BVExpr] = []
    substituted_examples = 0
    if incremental:
        session = IncrementalSmtSession()
        session.assert_constraints(constraints_base)
        asserted.extend(constraints_base)

    for iteration in range(1, max_iterations + 1):
        result.iterations = iteration
        result.examples_used = len(examples)
        if deadline is not None and time.monotonic() > deadline:
            result.status = "unknown"
            break

        # ---------------- candidate step ---------------- #
        candidate_start = time.monotonic()
        if incremental:
            # Only the examples gained since the last round are substituted
            # and asserted; everything older is already in the context.
            new_constraints: List[BVExpr] = []
            for example in examples[substituted_examples:]:
                new_constraints.extend(
                    _example_constraints(obligations, input_widths, example))
            substituted_examples = len(examples)
            session.assert_constraints(new_constraints)
            asserted.extend(new_constraints)
            candidate_constraints: Sequence[BVExpr] = asserted
        else:
            # From-scratch: re-substitute the sketch for *all* accumulated
            # examples, as the historical implementation did.
            candidate_constraints = list(constraints_base)
            for example in examples:
                candidate_constraints.extend(
                    _example_constraints(obligations, input_widths, example))

        model, status, strategy = _solve_candidate(
            candidate_constraints, iteration, seed, random_probes,
            deadline, session, budget, result)
        result.candidate_strategy = strategy
        result.candidate_time_seconds += time.monotonic() - candidate_start
        if status == "unsat":
            # No hole assignment satisfies even the finite example set, so no
            # assignment satisfies the full forall: the sketch cannot
            # implement the design.
            result.status = "unsat"
            break
        if status == "unknown":
            result.status = "unknown"
            break

        hole_values = {name: model.get(name, 0) for name in hole_widths}
        hole_bindings = {name: bv(value, hole_widths[name])
                         for name, value in hole_values.items()}

        # ---------------- verification step ---------------- #
        verified = True
        abort = False
        for obligation in obligations:
            concrete_sketch = substitute(obligation.sketch, hole_bindings)
            equivalence = check_equivalence(concrete_sketch, obligation.spec,
                                            deadline=deadline, solver=solver)
            result.verify_strategy = equivalence.strategy
            if equivalence.is_equivalent:
                continue
            verified = False
            if equivalence.is_unknown:
                result.status = "unknown"
                abort = True
                break
            counterexample = {name: equivalence.counterexample.get(name, 0)
                              for name in input_widths}
            if counterexample in examples:
                # The candidate solver produced a spurious model (a solver
                # bug).  Degrade to "unknown" with a diagnostic instead of
                # crashing: one poisoned query must not take down a whole
                # sweep worker.
                result.status = "unknown"
                result.diagnostic = (
                    f"no progress at iteration {iteration}: verification "
                    f"repeated counterexample {counterexample!r} for a "
                    "candidate the solver claimed consistent")
                abort = True
                break
            examples.append(counterexample)
            break

        if abort:
            break
        if verified:
            result.status = "sat"
            result.hole_values = hole_values
            break

    if session is not None:
        result.solver_restarts = session.restarts
        result.clauses_retained = session.clauses_retained
    result.time_seconds = time.monotonic() - start
    return result
