"""The ``lakeroad`` command-line interface (Section 2.2).

Usage mirrors the paper::

    lakeroad --template dsp --arch-desc xilinx-ultrascale-plus add_mul_and.v

The CLI is a thin shell over :class:`repro.engine.MappingSession`, which
owns the budget policy, the racing solver portfolio and the synthesis
cache.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.arch import available_architectures
from repro.core.templates import available_templates
from repro.engine.session import MappingSession

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lakeroad",
        description="FPGA technology mapping using sketch-guided program synthesis "
                    "(reproduction of the ASPLOS 2024 Lakeroad paper).")
    parser.add_argument("verilog", help="behavioral Verilog file to map")
    parser.add_argument("--template", default="dsp", choices=available_templates(),
                        help="sketch template to use (default: dsp)")
    parser.add_argument("--arch-desc", default="xilinx-ultrascale-plus",
                        help="architecture description name or path "
                             f"(shipped: {', '.join(available_architectures())})")
    parser.add_argument("--module", default=None, help="module name if the file has several")
    parser.add_argument("--timeout", type=float, default=None,
                        help="synthesis timeout in seconds (default: per-architecture)")
    parser.add_argument("--extra-cycles", type=int, default=1,
                        help="extra clock cycles of bounded model checking (default: 1)")
    parser.add_argument("--output", "-o", default=None,
                        help="write the structural Verilog here (default: stdout)")
    parser.add_argument("--no-validate", action="store_true",
                        help="skip post-synthesis simulation validation")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the session's synthesis cache")
    parser.add_argument("--stats", action="store_true",
                        help="print cache and solver-portfolio statistics")
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    source_path = Path(args.verilog)
    if not source_path.exists():
        parser.error(f"no such file: {args.verilog}")
    source = source_path.read_text()

    session = MappingSession(enable_cache=not args.no_cache)
    result = session.map_verilog(
        source,
        template=args.template,
        arch=args.arch_desc,
        module_name=args.module,
        timeout_seconds=args.timeout,
        extra_cycles=args.extra_cycles,
        validate=not args.no_validate,
    )

    print(f"status: {result.status} ({result.time_seconds:.2f}s)", file=sys.stderr)
    if args.stats:
        print(f"cache: {session.cache_stats()}", file=sys.stderr)
        print(f"portfolio wins: {session.portfolio_wins()}", file=sys.stderr)
    if result.status == "success":
        if result.resources is not None:
            print(f"resources: {result.resources}", file=sys.stderr)
        if result.validated is not None:
            print(f"simulation validation: {'passed' if result.validated else 'FAILED'}",
                  file=sys.stderr)
        if args.output:
            Path(args.output).write_text(result.verilog or "")
        else:
            print(result.verilog or "")
        return 0
    if result.status == "unsat":
        print("UNSAT: the sketch cannot implement this design on the target primitive",
              file=sys.stderr)
        return 2
    print("timeout: synthesis did not finish within the budget", file=sys.stderr)
    return 3


if __name__ == "__main__":
    sys.exit(main())
