"""The ``lakeroad`` command-line interface (Section 2.2).

Usage mirrors the paper::

    lakeroad --template dsp --arch-desc xilinx-ultrascale-plus add_mul_and.v

The CLI is a thin shell over :class:`repro.engine.MappingSession`, which
owns the budget policy, the racing solver portfolio and the synthesis
cache.  A second subcommand drives the evaluation harness::

    lakeroad sweep --arch intel-cyclone10lp --workers 4 --cache-dir .lr-cache

sharding the workload enumeration across worker processes with a shared
persistent synthesis cache (see :mod:`repro.engine.parallel`).  For
backward compatibility a bare Verilog file is treated as the ``map``
subcommand.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.arch import available_architectures
from repro.core.templates import available_templates
from repro.engine.session import MappingSession

__all__ = ["main", "build_parser", "build_sweep_parser", "build_bench_parser",
           "build_serve_parser", "build_request_parser"]

_PORTFOLIO_KINDS = ("thread", "process", "sequential")


def build_parser() -> argparse.ArgumentParser:
    """The ``map`` (default) subcommand parser: map one Verilog file."""
    parser = argparse.ArgumentParser(
        prog="lakeroad",
        description="FPGA technology mapping using sketch-guided program synthesis "
                    "(reproduction of the ASPLOS 2024 Lakeroad paper). "
                    "Run 'lakeroad sweep --help' for the parallel evaluation sweep.")
    parser.add_argument("verilog", help="behavioral Verilog file to map")
    parser.add_argument("--template", default="dsp", choices=available_templates(),
                        help="sketch template to use (default: dsp)")
    parser.add_argument("--arch-desc", default="xilinx-ultrascale-plus",
                        help="architecture description name or path "
                             f"(shipped: {', '.join(available_architectures())})")
    parser.add_argument("--module", default=None, help="module name if the file has several")
    parser.add_argument("--timeout", type=float, default=None,
                        help="synthesis timeout in seconds (default: per-architecture)")
    parser.add_argument("--extra-cycles", type=int, default=1,
                        help="extra clock cycles of bounded model checking (default: 1)")
    parser.add_argument("--output", "-o", default=None,
                        help="write the structural Verilog here (default: stdout)")
    parser.add_argument("--no-validate", action="store_true",
                        help="skip post-synthesis simulation validation")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the session's synthesis cache")
    parser.add_argument("--cache-dir", default=None,
                        help="persist the synthesis cache here (shared across runs)")
    parser.add_argument("--portfolio", default="thread", choices=_PORTFOLIO_KINDS,
                        help="SAT racing style (default: thread)")
    parser.add_argument("--incremental", action="store_true",
                        help="thread one persistent CDCL context through each "
                             "design's CEGIS run (clause reuse across "
                             "iterations; identical results, less re-solving)")
    parser.add_argument("--incremental-verify", action="store_true",
                        help="verify candidates on one persistent "
                             "assumption-gated miter session (sketch blasted "
                             "once, hole values bound as assumptions, failure "
                             "cores pruning the candidate space; identical "
                             "results to the portfolio verifier)")
    parser.add_argument("--probes", type=int, default=32, dest="probes",
                        help="random-probe budget for the bit-parallel fast "
                             "layers (64 assignments per packed batch; "
                             "0 disables probing; default: 32)")
    parser.add_argument("--stats", action="store_true",
                        help="print cache and solver-portfolio statistics")
    return parser


def build_sweep_parser() -> argparse.ArgumentParser:
    """The ``sweep`` subcommand parser: a sharded evaluation sweep."""
    from repro.workloads.generator import ARCHITECTURE_WORKLOADS

    architectures = sorted(ARCHITECTURE_WORKLOADS)
    parser = argparse.ArgumentParser(
        prog="lakeroad sweep",
        description="Run the Lakeroad mapper over sampled microbenchmarks, "
                    "sharded across worker processes with an optional "
                    "persistent synthesis cache.")
    parser.add_argument("--arch", action="append", dest="architectures",
                        choices=architectures, default=None,
                        help="architecture to sweep (repeatable; default: all "
                             f"of {', '.join(architectures)})")
    parser.add_argument("--count", type=int, default=8,
                        help="stratified sample size per architecture (default: 8)")
    parser.add_argument("--max-width", type=int, default=8,
                        help="cap benchmark bitwidths (default: 8)")
    parser.add_argument("--seed", type=int, default=0,
                        help="sampling seed (default: 0)")
    parser.add_argument("--full", action="store_true",
                        help="run the complete enumeration instead of a sample")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes to shard across (default: 1)")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent synthesis cache directory shared by "
                             "workers and later runs (default: in-memory only)")
    parser.add_argument("--portfolio", default="thread", choices=_PORTFOLIO_KINDS,
                        help="SAT racing style inside each worker (default: thread)")
    parser.add_argument("--incremental", action="store_true",
                        help="incremental CEGIS inside each worker: one "
                             "persistent solver context per design, learned "
                             "clauses reused across iterations")
    parser.add_argument("--incremental-verify", action="store_true",
                        help="incremental verification inside each worker: "
                             "one persistent assumption-gated miter session "
                             "per design, verification-failure cores pruning "
                             "the candidate space")
    parser.add_argument("--probes", type=int, default=32, dest="probes",
                        help="random-probe budget for the bit-parallel fast "
                             "layers inside each worker (default: 32)")
    parser.add_argument("--template", default="dsp", choices=available_templates(),
                        help="sketch template to use (default: dsp)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-query timeout override in seconds "
                             "(default: laptop-scale per-architecture budgets)")
    parser.add_argument("--validate", action="store_true",
                        help="simulation-validate every mapped design")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable synthesis caching entirely")
    parser.add_argument("--jsonl", default=None,
                        help="dump the raw MappingRecords to this JSON-lines file")
    parser.add_argument("--stats-json", default=None,
                        help="write a machine-readable sweep summary here")
    distributed = parser.add_argument_group(
        "distributed mode",
        "serve the sweep to TCP worker nodes (--coordinator) or be one "
        "(--worker); see EXPERIMENTS.md for topology and tuning")
    distributed.add_argument("--coordinator", metavar="HOST:PORT", default=None,
                             help="serve shards to remote workers on this "
                                  "address (port 0 picks a free port)")
    distributed.add_argument("--worker", metavar="HOST:PORT", default=None,
                             help="pull shards from the coordinator at this "
                                  "address instead of generating a grid")
    distributed.add_argument("--token", default=None,
                             help="shared secret for the worker handshake "
                                  "(coordinator generates and prints one "
                                  "when omitted)")
    distributed.add_argument("--worker-name", default=None,
                             help="name this worker reports (default: "
                                  "hostname-pid)")
    distributed.add_argument("--shard-size", type=int, default=4,
                             help="benchmarks per shard the coordinator "
                                  "hands out (default: 4)")
    distributed.add_argument("--lease-timeout", type=float, default=30.0,
                             help="seconds without a heartbeat before a "
                                  "shard is reassigned (default: 30)")
    distributed.add_argument("--retry-budget", type=int, default=3,
                             help="reassignments per shard before the sweep "
                                  "fails loudly (default: 3)")
    distributed.add_argument("--artifact-dir", default=None,
                             help="directory for per-shard JSONL artifacts; "
                                  "a restarted coordinator resumes completed "
                                  "shards from here")
    distributed.add_argument("--reconnect-attempts", type=int, default=5,
                             help="worker reconnect budget (exponential "
                                  "backoff) before giving up (default: 5)")
    return parser


def build_bench_parser() -> argparse.ArgumentParser:
    """The ``bench`` subcommand parser: a performance snapshot."""
    from repro.workloads.generator import ARCHITECTURE_WORKLOADS

    architectures = sorted(ARCHITECTURE_WORKLOADS)
    parser = argparse.ArgumentParser(
        prog="lakeroad bench",
        description="Measure probe throughput (scalar vs packed) and an "
                    "end-to-end cold+warm mapping sweep, and write the "
                    "snapshot to BENCH_<rev>.json.")
    parser.add_argument("--arch", action="append", dest="architectures",
                        choices=architectures, default=None,
                        help="architecture to bench (repeatable; default: all "
                             f"of {', '.join(architectures)})")
    parser.add_argument("--count", type=int, default=4,
                        help="stratified sample size per architecture (default: 4)")
    parser.add_argument("--max-width", type=int, default=8,
                        help="cap benchmark bitwidths (default: 8)")
    parser.add_argument("--seed", type=int, default=0,
                        help="sampling seed (default: 0)")
    parser.add_argument("--template", default="dsp", choices=available_templates(),
                        help="sketch template to use (default: dsp)")
    parser.add_argument("--probes", type=int, default=32,
                        help="random-probe budget for the packed fast layers "
                             "(default: 32)")
    parser.add_argument("--throughput-assignments", type=int, default=4096,
                        help="assignments for the scalar-vs-packed throughput "
                             "measurement (default: 4096)")
    parser.add_argument("--output-dir", default=".",
                        help="directory for BENCH_<rev>.json (default: .)")
    parser.add_argument("--no-serve", action="store_true",
                        help="skip the serve-throughput section")
    parser.add_argument("--serve-requests", type=int, default=32,
                        help="warm-burst request count for the serve section "
                             "(default: 32)")
    parser.add_argument("--serve-workers", type=int, default=2,
                        help="service worker processes for the serve section "
                             "(default: 2)")
    parser.add_argument("--serve-cold-requests", type=int, default=4,
                        help="subprocess cold-start runs for the serve "
                             "baseline (default: 4)")
    parser.add_argument("--no-qos", action="store_true",
                        help="skip the service-QoS mixed-load section")
    parser.add_argument("--no-distributed", action="store_true",
                        help="skip the distributed-sweep section")
    parser.add_argument("--distributed-workers", type=int, default=2,
                        help="loopback worker processes for the distributed "
                             "section (default: 2)")
    parser.add_argument("--diff", nargs=2, metavar=("OLD.json", "NEW.json"),
                        default=None,
                        help="compare two BENCH_<rev>.json snapshots instead "
                             "of running the bench; exits nonzero on a "
                             "regression beyond the per-metric thresholds")
    parser.add_argument("--threshold", action="append", default=None,
                        metavar="METRIC=FRACTION",
                        help="override a diff threshold, e.g. "
                             "serve.speedup_vs_cold=0.2 (repeatable; run "
                             "--diff with an unknown metric to list them)")
    return parser


def build_serve_parser() -> argparse.ArgumentParser:
    """The ``serve`` subcommand parser: the warm solver-worker pool."""
    from repro.engine.service import DEFAULT_SOCKET

    parser = argparse.ArgumentParser(
        prog="lakeroad serve",
        description="Run the long-lived mapping service: a pool of worker "
                    "processes with warm sessions behind a deduplicating, "
                    "caching, affinity-routing front door on a unix socket. "
                    "Query it with 'lakeroad request'; stop it with "
                    "SIGINT/SIGTERM (in-flight requests drain first).")
    parser.add_argument("--socket", default=DEFAULT_SOCKET,
                        help=f"unix socket path (default: {DEFAULT_SOCKET})")
    parser.add_argument("--workers", type=int, default=2,
                        help="solver worker processes at startup (default: 2)")
    parser.add_argument("--min-workers", type=int, default=None,
                        help="elastic pool floor: idle workers above this "
                             "are retired after a quiet period (default: "
                             "--workers, i.e. no resizing)")
    parser.add_argument("--max-workers", type=int, default=None,
                        help="elastic pool ceiling: sustained backlog grows "
                             "the pool up to this (default: --workers, i.e. "
                             "no resizing)")
    parser.add_argument("--max-pending", type=int, default=None,
                        help="global cap on admitted-but-unfinished map "
                             "requests; beyond it clients get a structured "
                             "'overloaded' rejection with a retry hint "
                             "(default: 256)")
    parser.add_argument("--client-queue", type=int, default=None,
                        help="per-client cap on admitted-but-unfinished map "
                             "requests (default: 64)")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent synthesis cache shared by the "
                             "workers and the front door (default: in-memory)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable synthesis caching (dedup still applies)")
    parser.add_argument("--portfolio", default="thread", choices=_PORTFOLIO_KINDS,
                        help="SAT racing style inside each worker (default: thread)")
    parser.add_argument("--incremental", action="store_true",
                        help="incremental CEGIS inside each worker session")
    parser.add_argument("--incremental-verify", action="store_true",
                        help="incremental verification inside each worker session")
    parser.add_argument("--probes", type=int, default=32, dest="probes",
                        help="random-probe budget inside each worker (default: 32)")
    return parser


def build_request_parser() -> argparse.ArgumentParser:
    """The ``request`` subcommand parser: query a running service."""
    from repro.engine.service import DEFAULT_SOCKET

    parser = argparse.ArgumentParser(
        prog="lakeroad request",
        description="Send one map request to a running 'lakeroad serve' "
                    "and print the MappingRecord as JSON. Exit codes mirror "
                    "'lakeroad map': 0 success, 2 unsat, 3 timeout; 6 means "
                    "the client-side --deadline expired first.")
    parser.add_argument("verilog", help="behavioral Verilog file to map")
    parser.add_argument("--socket", default=DEFAULT_SOCKET,
                        help=f"unix socket path (default: {DEFAULT_SOCKET})")
    parser.add_argument("--template", default="dsp", choices=available_templates(),
                        help="sketch template to use (default: dsp)")
    parser.add_argument("--arch-desc", default="xilinx-ultrascale-plus",
                        help="architecture description name "
                             f"(shipped: {', '.join(available_architectures())})")
    parser.add_argument("--module", default=None,
                        help="module name if the file has several")
    parser.add_argument("--timeout", type=float, default=None,
                        help="synthesis timeout in seconds (default: "
                             "per-architecture)")
    parser.add_argument("--extra-cycles", type=int, default=1,
                        help="extra clock cycles of bounded model checking "
                             "(default: 1)")
    parser.add_argument("--validate", action="store_true",
                        help="simulation-validate the mapped design")
    parser.add_argument("--deadline", type=float, default=600.0,
                        help="client-side wall-clock limit in seconds; a "
                             "request still unanswered when it expires "
                             "exits with code 6 instead of blocking on a "
                             "saturated server (default: 600)")
    parser.add_argument("--retries", type=int, default=3,
                        help="bounded retries when the server answers with "
                             "a structured 'overloaded' rejection, sleeping "
                             "its retry_after_ms hint between attempts "
                             "(default: 3)")
    parser.add_argument("--stats", action="store_true",
                        help="also print the service's front-door statistics")
    return parser


def build_cache_parser() -> argparse.ArgumentParser:
    """The ``cache`` subcommand parser: persistent-cache management."""
    parser = argparse.ArgumentParser(
        prog="lakeroad cache",
        description="Inspect and manage a persistent synthesis cache "
                    "directory (see --cache-dir on map/sweep).")
    parser.add_argument("action", choices=("stats", "prune", "clear"),
                        help="stats: entry count, on-disk size and lifetime "
                             "hit rate; prune: "
                             "LRU-trim by --max-entries/--max-age-days; "
                             "clear: drop every entry")
    parser.add_argument("--cache-dir", required=True,
                        help="the synthesis cache directory to operate on")
    parser.add_argument("--max-entries", type=int, default=None,
                        help="prune: keep at most this many entries "
                             "(least recently used go first)")
    parser.add_argument("--max-age-days", type=float, default=None,
                        help="prune: drop entries unused for this many days")
    return parser


def main(argv=None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "sweep":
        return _main_sweep(argv[1:])
    if argv and argv[0] == "cache":
        return _main_cache(argv[1:])
    if argv and argv[0] == "bench":
        return _main_bench(argv[1:])
    if argv and argv[0] == "serve":
        return _main_serve(argv[1:])
    if argv and argv[0] == "request":
        return _main_request(argv[1:])
    if argv and argv[0] == "map":
        argv = argv[1:]
    return _main_map(argv)


# --------------------------------------------------------------------------- #
# lakeroad map (the historical default)
# --------------------------------------------------------------------------- #
def _main_map(argv) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.no_cache and args.cache_dir:
        parser.error("--no-cache and --cache-dir are contradictory: a "
                     "disabled cache never persists anything")
    source_path = Path(args.verilog)
    if not source_path.exists():
        parser.error(f"no such file: {args.verilog}")
    source = source_path.read_text()

    if args.probes < 0:
        parser.error("--probes must be non-negative")
    session = MappingSession(enable_cache=not args.no_cache,
                             cache_dir=args.cache_dir,
                             portfolio=args.portfolio,
                             incremental=args.incremental,
                             incremental_verify=args.incremental_verify,
                             random_probes=args.probes)
    result = session.map_verilog(
        source,
        template=args.template,
        arch=args.arch_desc,
        module_name=args.module,
        timeout_seconds=args.timeout,
        extra_cycles=args.extra_cycles,
        validate=not args.no_validate,
    )

    print(f"status: {result.status} ({result.time_seconds:.2f}s)", file=sys.stderr)
    if args.stats:
        print(f"cache: {session.cache_stats()}", file=sys.stderr)
        print(f"portfolio wins: {session.portfolio_wins()}", file=sys.stderr)
        if result.synthesis is not None and result.synthesis.incremental:
            synthesis = result.synthesis
            print(f"incremental: {synthesis.clauses_retained} learned clauses "
                  f"retained, {synthesis.candidate_conflicts} candidate "
                  f"conflicts, {synthesis.solver_restarts} budget restart(s) "
                  f"over {synthesis.cegis_iterations} CEGIS iteration(s)",
                  file=sys.stderr)
        if result.synthesis is not None and result.synthesis.incremental_verify:
            synthesis = result.synthesis
            print(f"incremental verify: {synthesis.verify_clauses_retained} "
                  f"learned clauses retained, {synthesis.cores_pruned} "
                  f"pruning core(s), {synthesis.verify_time_seconds:.2f}s "
                  "in verification", file=sys.stderr)
        if result.synthesis is not None and (result.synthesis.incremental
                                             or result.synthesis.incremental_verify):
            synthesis = result.synthesis
            print(f"clause DB: peak {synthesis.db_size_peak} learned "
                  f"clause(s), {synthesis.clauses_deleted} deleted by "
                  "reduction", file=sys.stderr)
        if result.synthesis is not None:
            synthesis = result.synthesis
            print(f"probes: {synthesis.probe_lanes_evaluated} packed lane(s) "
                  f"evaluated, {synthesis.probe_hits} batch hit(s), "
                  f"{synthesis.prefilter_cex_found} pre-filter "
                  "counterexample(s)", file=sys.stderr)
            if synthesis.propagations:
                pps = synthesis.propagations / synthesis.solver_solve_seconds \
                    if synthesis.solver_solve_seconds > 0 else 0.0
                vpp = synthesis.watcher_visits / synthesis.propagations
                print(f"propagation: {synthesis.propagations} literal(s) in "
                      f"{synthesis.solver_solve_seconds:.2f}s solver time "
                      f"({pps:,.0f}/s, {vpp:.2f} watcher visit(s) per "
                      "propagation)", file=sys.stderr)
    if result.status == "success":
        if result.resources is not None:
            print(f"resources: {result.resources}", file=sys.stderr)
        if result.validated is not None:
            print(f"simulation validation: {'passed' if result.validated else 'FAILED'}",
                  file=sys.stderr)
        if args.output:
            Path(args.output).write_text(result.verilog or "")
        else:
            print(result.verilog or "")
        return 0
    if result.status == "unsat":
        print("UNSAT: the sketch cannot implement this design on the target primitive",
              file=sys.stderr)
        return 2
    print("timeout: synthesis did not finish within the budget", file=sys.stderr)
    return 3


# --------------------------------------------------------------------------- #
# lakeroad sweep
# --------------------------------------------------------------------------- #
def _install_sigterm_as_interrupt():
    """Route SIGTERM through KeyboardInterrupt so `kill` gets the same
    graceful drain as Ctrl-C.  Returns the previous handler (restore it when
    done); a no-op outside the main thread or on platforms without SIGTERM."""
    import signal as signal_mod
    import threading

    if threading.current_thread() is not threading.main_thread():
        return None

    def _raise_interrupt(signum, frame):
        raise KeyboardInterrupt

    try:
        return signal_mod.signal(signal_mod.SIGTERM, _raise_interrupt)
    except (OSError, ValueError):  # pragma: no cover - exotic platforms
        return None


def _restore_sigterm(previous) -> None:
    import signal as signal_mod

    if previous is None:
        return
    try:
        signal_mod.signal(signal_mod.SIGTERM, previous)
    except (OSError, ValueError):  # pragma: no cover
        pass


def _main_sweep(argv) -> int:
    from repro.engine.parallel import SessionSpec, SweepInterrupted, run_sweep
    from repro.harness.runner import ExperimentConfig, records_to_jsonl
    from repro.workloads.generator import (
        ARCHITECTURE_WORKLOADS,
        enumerate_workloads,
        sample_workloads,
    )

    parser = build_sweep_parser()
    args = parser.parse_args(argv)
    if args.coordinator and args.worker:
        parser.error("--coordinator and --worker are mutually exclusive: a "
                     "node is one or the other")
    if args.worker:
        return _sweep_worker(args, parser)
    if args.no_cache and args.cache_dir:
        parser.error("--no-cache and --cache-dir are contradictory: a "
                     "disabled cache never persists anything")
    architectures = args.architectures or sorted(ARCHITECTURE_WORKLOADS)

    benchmarks = []
    for architecture in architectures:
        if args.full:
            benchmarks.extend(enumerate_workloads(architecture))
        else:
            benchmarks.extend(sample_workloads(architecture, args.count,
                                               seed=args.seed,
                                               max_width=args.max_width))
    if not benchmarks:
        parser.error("the requested sample is empty (raise --count/--max-width; "
                     "the narrowest enumerated benchmarks are 8 bits wide)")

    if args.probes < 0:
        parser.error("--probes must be non-negative")
    config = ExperimentConfig(validate=args.validate, template=args.template,
                              workers=args.workers, cache_dir=args.cache_dir,
                              portfolio=args.portfolio,
                              incremental=args.incremental,
                              incremental_verify=args.incremental_verify,
                              random_probes=args.probes)
    if args.timeout is not None:
        config.timeout_seconds = {arch: args.timeout for arch in architectures}
    spec = SessionSpec(portfolio=args.portfolio, cache_dir=args.cache_dir,
                       enable_cache=not args.no_cache,
                       incremental=args.incremental,
                       incremental_verify=args.incremental_verify,
                       random_probes=args.probes)

    interrupted = False
    if args.coordinator:
        from repro.engine.distributed import SweepCoordinator, parse_address

        try:
            host, port = parse_address(args.coordinator)
        except ValueError as exc:
            parser.error(str(exc))
        coordinator = SweepCoordinator(
            benchmarks, config, spec, host=host, port=port, token=args.token,
            shard_size=args.shard_size, lease_timeout=args.lease_timeout,
            retry_budget=args.retry_budget, artifact_dir=args.artifact_dir)
        try:
            host, port = coordinator.start()
        except RuntimeError as exc:
            print(str(exc), file=sys.stderr)
            return 1
        telemetry = coordinator.telemetry()
        resumed = telemetry["shards_resumed"]
        print(f"coordinator: serving {telemetry['shards']} shard(s) "
              f"({len(benchmarks)} benchmark(s)) on {host}:{port}"
              + (f", {resumed} resumed from {args.artifact_dir}"
                 if resumed else ""), file=sys.stderr)
        print(f"worker command: lakeroad sweep --worker {host}:{port} "
              f"--token {coordinator.token}", file=sys.stderr)
        previous_handler = _install_sigterm_as_interrupt()
        try:
            while True:
                try:
                    result = coordinator.wait(timeout=0.5)
                    break
                except TimeoutError:
                    continue
        except KeyboardInterrupt:
            done = coordinator.telemetry()["shards_completed"]
            print(f"coordinator interrupted after {done}/"
                  f"{telemetry['shards']} shard(s)"
                  + (f" — completed shards stay in {args.artifact_dir} "
                     "for a resumed run" if args.artifact_dir else ""),
                  file=sys.stderr)
            coordinator.close(linger=0.0)
            return 130
        except RuntimeError as exc:
            print(f"distributed sweep failed: {exc}", file=sys.stderr)
            coordinator.close(linger=0.0)
            return 1
        finally:
            _restore_sigterm(previous_handler)
        coordinator.close()
    else:
        previous_handler = _install_sigterm_as_interrupt()
        try:
            result = run_sweep(benchmarks, config, workers=args.workers,
                               session_spec=spec)
        except SweepInterrupted as stop:
            # Drained shutdown: workers finished their in-flight benchmark
            # and flushed their caches; report what completed and exit 130
            # (the conventional interrupted-by-signal code).
            interrupted = True
            result = stop.result
            print(f"sweep interrupted — drained {len(result.records)}/"
                  f"{len(benchmarks)} completed record(s)", file=sys.stderr)
        finally:
            _restore_sigterm(previous_handler)

    outcomes = result.outcome_counts()
    print(f"swept {len(result.records)} benchmarks over "
          f"{', '.join(architectures)} with {result.workers} worker(s)",
          file=sys.stderr)
    print(f"outcomes: {outcomes}", file=sys.stderr)
    print(f"record cache hits: {result.record_cache_hits}/{len(result.records)} "
          f"({result.hit_rate:.0%})", file=sys.stderr)
    print(f"cache: {result.cache_stats}", file=sys.stderr)
    print(f"portfolio wins: {result.portfolio_wins}", file=sys.stderr)
    if args.incremental:
        print(f"incremental: {result.clauses_retained} learned clauses "
              f"retained, {result.solver_restarts} budget restart(s)",
              file=sys.stderr)
    if args.incremental_verify:
        print(f"incremental verify: {result.verify_clauses_retained} learned "
              f"clauses retained, {result.cores_pruned} pruning core(s)",
              file=sys.stderr)
    if args.incremental or args.incremental_verify:
        print(f"clause DB: peak {result.db_size_peak} learned clause(s), "
              f"{result.clauses_deleted} deleted by reduction",
              file=sys.stderr)
    print(f"probes: {result.probe_lanes_evaluated} packed lane(s) evaluated, "
          f"{result.probe_hits} batch hit(s), {result.prefilter_cex_found} "
          "pre-filter counterexample(s)", file=sys.stderr)
    if result.propagations:
        print(f"propagation: {result.propagations} literal(s) in "
              f"{result.solver_solve_seconds:.2f}s solver time "
              f"({result.propagations_per_second:,.0f}/s, "
              f"{result.watcher_visits_per_propagation:.2f} watcher visit(s) "
              "per propagation)", file=sys.stderr)
    distributed_telemetry = getattr(result, "telemetry", None)
    if distributed_telemetry:
        print(f"distributed: {distributed_telemetry['shards_completed']}/"
              f"{distributed_telemetry['shards']} shard(s) over "
              f"{len(distributed_telemetry['workers'])} worker(s), "
              f"{distributed_telemetry['shards_stolen']} stolen, "
              f"{distributed_telemetry['shards_retried']} retried, "
              f"{distributed_telemetry['duplicate_results']} duplicate(s), "
              f"straggler p95 "
              f"{distributed_telemetry['straggler_p95_seconds']:.2f}s",
              file=sys.stderr)

    if args.jsonl:
        records_to_jsonl(result.records, args.jsonl)
        print(f"records written to {args.jsonl}", file=sys.stderr)
    if args.stats_json:
        summary = {
            "total": len(result.records),
            "interrupted": interrupted,
            "workers": result.workers,
            "architectures": architectures,
            "outcomes": outcomes,
            "record_cache_hits": result.record_cache_hits,
            "hit_rate": result.hit_rate,
            "cache": result.cache_stats,
            "portfolio_wins": result.portfolio_wins,
            "incremental": args.incremental,
            "clauses_retained": result.clauses_retained,
            "solver_restarts": result.solver_restarts,
            "incremental_verify": args.incremental_verify,
            "verify_clauses_retained": result.verify_clauses_retained,
            "cores_pruned": result.cores_pruned,
            "clauses_deleted": result.clauses_deleted,
            "db_size_peak": result.db_size_peak,
            "propagations": result.propagations,
            "watcher_visits": result.watcher_visits,
            "solver_solve_seconds": result.solver_solve_seconds,
            "propagations_per_second": result.propagations_per_second,
            "watcher_visits_per_propagation":
                result.watcher_visits_per_propagation,
            "random_probes": args.probes,
            "probe_lanes_evaluated": result.probe_lanes_evaluated,
            "probe_hits": result.probe_hits,
            "prefilter_cex_found": result.prefilter_cex_found,
        }
        if distributed_telemetry:
            summary["distributed"] = distributed_telemetry
        Path(args.stats_json).write_text(json.dumps(summary, indent=2) + "\n")
    # The sweep succeeded as a harness run even if some designs were
    # unmappable; only an empty record set is an error (caught above).
    return 130 if interrupted else 0


#: Distinct exit codes for the networked subcommands: 4 means "the peer is
#: unreachable" (vs 1, a request that reached a server and failed there),
#: 5 means "the coordinator rejected this worker's handshake" and 6 means
#: "the client-side deadline expired before the (reachable) server
#: answered" — a saturated server, not a missing one.
EXIT_UNREACHABLE = 4
EXIT_REJECTED = 5
EXIT_DEADLINE = 6


def _sweep_worker(args, parser) -> int:
    """``lakeroad sweep --worker HOST:PORT``: one worker node."""
    from repro.engine.distributed import (
        CoordinatorUnreachable,
        WorkerRejected,
        parse_address,
        run_worker,
    )

    if not args.token:
        parser.error("--worker requires --token (the coordinator prints it "
                     "on startup)")
    try:
        address = parse_address(args.worker)
    except ValueError as exc:
        parser.error(str(exc))
    extra = {}
    if args.cache_dir:
        # Override the coordinator's spec path — worker machines need not
        # share the coordinator's filesystem layout.
        extra["cache_dir"] = args.cache_dir
    try:
        stats = run_worker(address, args.token,
                           worker_name=args.worker_name,
                           artifact_dir=args.artifact_dir,
                           reconnect_attempts=args.reconnect_attempts,
                           **extra)
    except CoordinatorUnreachable as exc:
        print(f"cannot reach a sweep coordinator at {args.worker}: {exc}",
              file=sys.stderr)
        print("is `lakeroad sweep --coordinator` running there, and the "
              "port reachable from this machine?", file=sys.stderr)
        return EXIT_UNREACHABLE
    except WorkerRejected as exc:
        print(f"coordinator at {args.worker} rejected this worker: {exc}",
              file=sys.stderr)
        print("check --token against the value the coordinator printed",
              file=sys.stderr)
        return EXIT_REJECTED
    except RuntimeError as exc:
        print(f"worker failed: {exc}", file=sys.stderr)
        return 1
    print(f"worker done: contributed {stats['shards']} shard(s) / "
          f"{stats['records']} record(s); {stats['abandoned']} abandoned, "
          f"{stats['duplicates']} duplicate(s), "
          f"{stats['reconnects']} reconnect(s)", file=sys.stderr)
    return 0


# --------------------------------------------------------------------------- #
# lakeroad bench
# --------------------------------------------------------------------------- #
def _main_bench_diff(args, parser) -> int:
    from repro.harness.bench import DEFAULT_DIFF_THRESHOLDS, diff_snapshots

    thresholds = dict(DEFAULT_DIFF_THRESHOLDS)
    for override in args.threshold or ():
        metric, _, fraction = override.partition("=")
        if metric not in thresholds:
            parser.error(f"unknown diff metric {metric!r}; known metrics: "
                         f"{', '.join(sorted(thresholds))}")
        try:
            allowed = float(fraction)
        except ValueError:
            parser.error(f"--threshold needs METRIC=FRACTION, got {override!r}")
        thresholds[metric] = (thresholds[metric][0], allowed)

    old_path, new_path = args.diff
    try:
        old = json.loads(Path(old_path).read_text())
        new = json.loads(Path(new_path).read_text())
    except (OSError, ValueError) as exc:
        parser.error(f"cannot read snapshot: {exc}")

    results = diff_snapshots(old, new, thresholds)
    regressions = [entry for entry in results if entry["regressed"]]
    for entry in results:
        marker = "REGRESSED" if entry["regressed"] else "ok"
        print(f"{entry['metric']}: {entry['old']:.4g} -> {entry['new']:.4g} "
              f"({entry['change']:+.1%}, {entry['direction']} is better, "
              f"allowed {entry['allowed']:.0%}) {marker}")
    print(f"{len(results)} metric(s) compared, "
          f"{len(regressions)} regression(s)", file=sys.stderr)
    return 1 if regressions else 0


def _main_bench(argv) -> int:
    from repro.harness.bench import run_bench, write_snapshot

    parser = build_bench_parser()
    args = parser.parse_args(argv)
    if args.diff is not None:
        return _main_bench_diff(args, parser)
    if args.probes < 0:
        parser.error("--probes must be non-negative")

    snapshot = run_bench(architectures=args.architectures,
                         count=args.count, seed=args.seed,
                         max_width=args.max_width, template=args.template,
                         random_probes=args.probes,
                         throughput_assignments=args.throughput_assignments,
                         serve=not args.no_serve,
                         serve_requests=args.serve_requests,
                         serve_workers=args.serve_workers,
                         serve_cold_requests=args.serve_cold_requests,
                         qos=not args.no_qos,
                         distributed=not args.no_distributed,
                         distributed_workers=args.distributed_workers)
    path = write_snapshot(snapshot, args.output_dir)

    totals = snapshot["totals"]
    throughput = snapshot["probe_throughput"]
    print(f"revision: {snapshot['revision']}", file=sys.stderr)
    print(f"solved: {totals['solved']}/{totals['benchmarks']} "
          f"({totals['solved_rate']:.0%}) in {totals['cold_seconds']:.2f}s cold, "
          f"{totals['warm_seconds']:.2f}s warm "
          f"({totals['warm_cache_hit_rate']:.0%} cache hits)", file=sys.stderr)
    print(f"phases: {snapshot['phases']['candidate_seconds']:.2f}s candidate, "
          f"{snapshot['phases']['verify_seconds']:.2f}s verify", file=sys.stderr)
    print(f"probes: {snapshot['probes']['probe_lanes_evaluated']} lane(s), "
          f"{snapshot['probes']['probe_hits']} batch hit(s), "
          f"{snapshot['probes']['prefilter_cex_found']} pre-filter cex",
          file=sys.stderr)
    print(f"probe throughput: "
          f"{throughput['packed_assignments_per_second']:,.0f}/s packed vs "
          f"{throughput['scalar_assignments_per_second']:,.0f}/s scalar "
          f"({throughput['speedup']:.1f}x)", file=sys.stderr)
    serve = snapshot.get("serve")
    if serve is not None:
        warm = serve["serve_warm"]
        print(f"serve: {warm['requests_per_second']:,.0f} req/s warm vs "
              f"{serve['cold_process']['requests_per_second']:.2f} req/s "
              f"cold-start ({serve['speedup_vs_cold']:.1f}x), "
              f"p50 {warm['p50_latency_seconds'] * 1e3:.1f}ms / "
              f"p95 {warm['p95_latency_seconds'] * 1e3:.1f}ms, "
              f"{serve['warm_hit_rate']:.0%} warm hits", file=sys.stderr)
    qos = snapshot.get("qos")
    if qos is not None:
        steady = qos["steady_contended"]
        flooder = qos["flooder"]
        print(f"qos: steady p50 {steady['p50_latency_seconds'] * 1e3:.1f}ms / "
              f"p95 {steady['p95_latency_seconds'] * 1e3:.1f}ms under flood "
              f"({qos['fairness_ratio']:.1f}x uncontended), flooder "
              f"{flooder['rejection_rate']:.0%} rejected, "
              f"pool peak {qos['pool_peak']:.0f} "
              f"({qos['scale_ups']:.0f} up / {qos['scale_downs']:.0f} down)",
              file=sys.stderr)
    distributed = snapshot.get("distributed")
    if distributed is not None:
        equal = "records equal" if distributed["records_equal"] >= 1.0 \
            else "RECORDS DIFFER"
        print(f"distributed: {distributed['benchmarks']} benchmark(s) over "
              f"{distributed['workers']} worker(s) in "
              f"{distributed['distributed_seconds']:.2f}s vs "
              f"{distributed['serial_seconds']:.2f}s serial "
              f"({distributed['speedup_vs_serial']:.1f}x), {equal}",
              file=sys.stderr)
    print(str(path))
    return 0


# --------------------------------------------------------------------------- #
# lakeroad serve / request
# --------------------------------------------------------------------------- #
def _main_serve(argv) -> int:
    from repro.engine.parallel import SessionSpec
    from repro.engine.service import SolverService, run_server

    parser = build_serve_parser()
    args = parser.parse_args(argv)
    if args.no_cache and args.cache_dir:
        parser.error("--no-cache and --cache-dir are contradictory: a "
                     "disabled cache never persists anything")
    if args.probes < 0:
        parser.error("--probes must be non-negative")
    if args.workers < 1:
        parser.error("--workers must be at least 1")
    min_workers = args.workers if args.min_workers is None else args.min_workers
    max_workers = args.workers if args.max_workers is None else args.max_workers
    if not (1 <= min_workers <= args.workers <= max_workers):
        parser.error("worker bounds must satisfy 1 <= --min-workers <= "
                     "--workers <= --max-workers")
    if args.max_pending is not None and args.max_pending < 1:
        parser.error("--max-pending must be at least 1")
    if args.client_queue is not None and args.client_queue < 1:
        parser.error("--client-queue must be at least 1")

    spec = SessionSpec(portfolio=args.portfolio, cache_dir=args.cache_dir,
                       enable_cache=not args.no_cache,
                       incremental=args.incremental,
                       incremental_verify=args.incremental_verify,
                       random_probes=args.probes)
    qos = {}
    if args.max_pending is not None:
        qos["max_pending"] = args.max_pending
    if args.client_queue is not None:
        qos["client_queue"] = args.client_queue
    service = SolverService(spec, workers=args.workers,
                            min_workers=min_workers,
                            max_workers=max_workers, **qos)
    pool_note = f"{args.workers} warm worker(s)" \
        if min_workers == max_workers \
        else (f"{args.workers} warm worker(s), elastic "
              f"[{min_workers}, {max_workers}]")
    print(f"lakeroad serve: {pool_note} on {args.socket} "
          "(SIGINT/SIGTERM drains and exits)", file=sys.stderr)
    try:
        run_server(service, args.socket)
    finally:
        service.close()
        stats = service.stats()
        print(f"served {stats['requests']} request(s): "
              f"{stats['coalesced']} coalesced, "
              f"{stats['front_memory_hits'] + stats['front_disk_hits']} "
              f"front-door hit(s), {stats['worker_cache_hits']} worker "
              f"cache hit(s), {stats['worker_restarts']} worker restart(s) "
              f"({stats['warm_hit_rate']:.0%} warm); "
              f"{stats['rejections']} rejection(s), "
              f"{stats['scale_ups']} scale-up(s), "
              f"{stats['scale_downs']} scale-down(s), "
              f"peak pool {stats['pool_peak']}", file=sys.stderr)
    return 0


def _main_request(argv) -> int:
    from concurrent.futures import TimeoutError as FutureTimeoutError

    from repro.engine.service import ServiceClient

    parser = build_request_parser()
    args = parser.parse_args(argv)
    source_path = Path(args.verilog)
    if not source_path.exists():
        parser.error(f"no such file: {args.verilog}")

    payload = {
        "op": "map",
        "verilog": source_path.read_text(),
        "template": args.template,
        "arch": args.arch_desc,
        "extra_cycles": args.extra_cycles,
        "validate": args.validate,
    }
    if args.module:
        payload["module"] = args.module
    if args.timeout is not None:
        payload["timeout"] = args.timeout

    if args.deadline <= 0:
        parser.error("--deadline must be positive")
    if args.retries < 0:
        parser.error("--retries must be non-negative")
    try:
        with ServiceClient(args.socket, connect_timeout=5.0) as client:
            response = client.request(payload, timeout=args.deadline,
                                      retry_overloaded=args.retries)
            stats = client.stats() if args.stats else None
    except FutureTimeoutError:
        # The server accepted the connection but did not answer in time —
        # it is saturated or solving something hard, not unreachable.
        print(f"request to {args.socket} exceeded the client deadline "
              f"({args.deadline:g}s); the server is reachable but "
              "saturated (raise --deadline, or retry later)",
              file=sys.stderr)
        return EXIT_DEADLINE
    except (OSError, ConnectionError) as exc:
        print(f"cannot reach a lakeroad serve on {args.socket}: {exc}",
              file=sys.stderr)
        print("is `lakeroad serve` running with the same --socket path?",
              file=sys.stderr)
        return EXIT_UNREACHABLE

    if not response.get("ok"):
        if response.get("error") == "overloaded":
            print(f"request rejected after {args.retries} retry(ies): the "
                  "server is over its pending cap "
                  f"(retry_after_ms={response.get('retry_after_ms')})",
                  file=sys.stderr)
            return 1
        print(f"request failed: {response.get('error')}", file=sys.stderr)
        return 1
    record = response["record"]
    print(json.dumps(record, indent=2))
    if stats is not None:
        print(f"service: {json.dumps(stats)}", file=sys.stderr)
    outcome = record.get("outcome")
    if outcome == "success":
        return 0
    if outcome == "unsat":
        return 2
    return 3


# --------------------------------------------------------------------------- #
# lakeroad cache
# --------------------------------------------------------------------------- #
def _main_cache(argv) -> int:
    from repro.engine.diskcache import (
        DB_NAME,
        SCHEMA_VERSION,
        DiskSynthesisCache,
        peek_entry_count,
        peek_schema_version,
    )

    parser = build_cache_parser()
    args = parser.parse_args(argv)
    directory = Path(args.cache_dir)
    if not (directory / DB_NAME).exists():
        print(f"no synthesis cache database under {directory}", file=sys.stderr)
        return 1
    if args.action == "prune" and args.max_entries is None \
            and args.max_age_days is None:
        parser.error("prune needs --max-entries and/or --max-age-days")
    stored_version = peek_schema_version(directory)
    if stored_version != SCHEMA_VERSION and args.action != "clear":
        # Opening the cache for stats/prune would run the schema migration,
        # which drops every (unreadable-by-this-version) entry — far too
        # destructive for an inspection command.
        print(f"cache database has schema version {stored_version}, this "
              f"version reads {SCHEMA_VERSION}; its entries are unusable "
              "here.  Run 'lakeroad cache clear' to reset it.",
              file=sys.stderr)
        return 1
    # Count before constructing: on an old-schema database the constructor
    # itself drops the entries table, and clear must still report honestly
    # how many entries the reset discarded.
    cleared = peek_entry_count(directory) or 0

    cache = DiskSynthesisCache(directory)
    try:
        if args.action == "stats":
            entries = len(cache)
            size = cache.size_bytes()
            print(f"entries: {entries}")
            print(f"size: {size} bytes ({size / 1e6:.2f} MB)")
            lifetime = cache.lifetime_stats()
            hits = lifetime["lifetime_hits"]
            misses = lifetime["lifetime_misses"]
            total = hits + misses
            rate = f" ({hits / total:.0%} hit rate)" if total else ""
            print(f"lifetime: {hits} hits, {misses} misses{rate}")
            return 0
        if args.action == "prune":
            max_age = args.max_age_days * 86400.0 \
                if args.max_age_days is not None else None
            removed = cache.prune(max_entries=args.max_entries,
                                  max_age_seconds=max_age)
            print(f"pruned {removed} entries; {len(cache)} remain "
                  f"({cache.size_bytes() / 1e6:.2f} MB on disk)")
            return 0
        cache.clear()
        print(f"cleared {cleared} entries")
        return 0
    finally:
        cache.close()


if __name__ == "__main__":
    sys.exit(main())
